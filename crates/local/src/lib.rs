//! A deterministic synchronous message-passing simulator for the LOCAL /
//! CONGEST models of distributed computing.
//!
//! The paper's model (Section 1.1): each vertex of an `n`-vertex graph hosts
//! a processor with a distinct identifier from `{1, ..., n}`; computation
//! proceeds in synchronous rounds; in every round each vertex may send one
//! message to each neighbor; running time is the number of rounds. This crate
//! simulates exactly that, and additionally accounts for message *sizes* in
//! bits, because the paper distinguishes algorithms using `O(log n)`-bit
//! messages from those needing `O(Δ log n)` bits (Section 5).
//!
//! The delivery hot path is zero-allocation: messages land in preallocated
//! per-directed-edge slots of the host graph's CSR (see [`Network`] and the
//! `network` module docs), payloads too long for a slot's inline buffer
//! live in the pooled [`spill`] arena (recycled chunks, byte-accurate
//! accounting), halted nodes drop off an active worklist, and
//! rounds can be stepped in parallel deterministically
//! ([`Network::run_profiled_threaded`], feature `parallel`, enabled by
//! default). The pre-refactor engine survives as
//! [`Network::run_profiled_naive`] — a differential-testing oracle and the
//! baseline the perf benches measure speedups against. All engines honor
//! the same determinism contract: bit-identical outputs, [`RunStats`] and
//! [`RoundLoad`] profiles.
//!
//! # Writing a protocol
//!
//! A protocol is a per-node state machine implementing [`Protocol`]. The
//! simulator instantiates one state per vertex, calls [`Protocol::start`]
//! once, then repeatedly delivers messages and calls [`Protocol::round`]
//! until every node has halted.
//!
//! ```
//! use deco_graph::generators;
//! use deco_local::{Action, Network, NodeCtx, Protocol};
//!
//! /// Every vertex learns the maximum identifier among its neighbors.
//! struct MaxOfNeighbors {
//!     best: u64,
//! }
//!
//! impl Protocol for MaxOfNeighbors {
//!     type Msg = u64;
//!     type Output = u64;
//!
//!     fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
//!         ctx.broadcast(ctx.ident)
//!     }
//!
//!     fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
//!         self.best = inbox.iter().map(|&(_, id)| id).max().unwrap_or(0);
//!         Action::halt()
//!     }
//!
//!     fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
//!         self.best
//!     }
//! }
//!
//! let g = generators::star(4);
//! let run = Network::new(&g).run(|_ctx| MaxOfNeighbors { best: 0 });
//! assert_eq!(run.stats.rounds, 1);
//! assert_eq!(run.outputs[0], 4); // the center saw idents 2, 3, 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod naive;
mod network;
mod stats;
mod transport;

pub mod line_sim;
pub mod spill;

pub use message::{bits_for_range, bits_for_value, Bitset, Message};
pub use network::{
    encode_round_trace, Action, Delivery, DeliveryChoice, Engine, Network, NodeCtx, Protocol,
    RoundLoad, RoundTrace, Run, RunError, SharedConfig, TracedRun,
};
pub use stats::{RunStats, StatsDiff};
pub use transport::{Fate, FaultyTransport, InProcess, Transport};
