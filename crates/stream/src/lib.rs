//! `deco-stream` — incremental recoloring for mutating graphs.
//!
//! The rest of the workspace colors a graph once and exits. This crate
//! keeps a legal edge coloring **alive while the graph changes**: edges
//! arrive and leave in batches (TDMA links flapping, job-shop tasks
//! finishing), and after every committed batch the coloring is repaired by
//! re-running the paper's machinery on the *repair region only* — the
//! uncolored/conflicting edges — instead of the whole graph. The paper's
//! locality (an edge insertion only perturbs a bounded neighborhood of the
//! line graph; Lemma 5.1 bounds its independence by 2 everywhere, so the
//! pipeline works on any region) is what makes this sound.
//!
//! Three layers:
//!
//! * [`deco_graph::MutableGraph`] + [`deco_graph::trace`] (in the graph
//!   crate) — batched mutation with atomic **delta-CSR** commits (the
//!   snapshot is patched, not rebuilt, and stays bit-identical to a
//!   rebuild), and the replayable plain-text trace format / seeded churn
//!   generator;
//! * [`Recolorer`] — the engine: carry colors across a commit by stable
//!   edge slot (the commit's `edge_origin` map), extract the repair region
//!   from the delta alone, schedule it with the Theorem 5.5 pipeline on
//!   the edge-induced sub-network, finalize with `O(Δ)`-bit
//!   forbidden-color masks, fall back to from-scratch when the region is
//!   too dense ([`RecolorConfig::with_rebuild_commits`] keeps the PR 3
//!   rebuild path as the differential oracle);
//! * [`replay_trace`] / [`replay_trace_on`] and the `deco-stream` binary —
//!   replay a trace file, reporting per-commit repair sizes, rounds and
//!   wall time.
//!
//! Engines are configured per instance through [`RecolorConfig`] (the old
//! per-engine `with_*` builders survive one PR as deprecated forwarding
//! shims) and driven representation-agnostically through the object-safe
//! [`RegionRecolor`] facade, which both [`Recolorer`] and [`SegRecolorer`]
//! implement — the surface `deco-serve` hosts thousands of tenants behind.
//!
//! Determinism: same trace + parameters ⇒ bit-identical colorings and
//! [`CommitReport`]s at any `DECO_THREADS` / `DECO_DELIVERY` setting (see
//! the [`RegionRecolor`] contract).
//!
//! Fault tolerance: [`RecolorConfig::with_transport`] runs the repair
//! sub-networks over a pluggable [`Transport`] (e.g. the deterministic
//! seed-driven [`FaultyTransport`]); under a lossy transport the engine
//! switches to a loss-tolerant repair protocol wrapped in a verified retry
//! loop with exponential round-cap backoff, degrading to a fault-free
//! from-scratch recolor after a bounded number of failed attempts — every
//! commit still terminates with a verified-legal coloring, never a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod facade;
mod host;
mod recolor;
mod replay;
mod seg_recolor;

pub use config::RecolorConfig;
pub use facade::RegionRecolor;
pub use host::RegionHost;
pub use recolor::{repair_phase, CommitReport, Recolorer, RepairStrategy};
pub use replay::{
    queue_op, replay_trace, replay_trace_on, replay_trace_probed, ReplayError, ReplayOutcome,
    ReplayRun,
};
pub use seg_recolor::SegRecolorer;

// The configuration vocabulary ([`RecolorConfig::with_transport`] /
// [`RecolorConfig::with_delivery`]), re-exported so engine users need no
// direct `deco_local` dependency.
pub use deco_local::{Delivery, Fate, FaultyTransport, InProcess, RunError, Transport};
