//! A mutable overlay over the immutable CSR [`Graph`].
//!
//! Every algorithm in this workspace runs on the immutable [`Graph`], whose
//! CSR layout is what makes the simulator's slot delivery zero-allocation.
//! Streaming workloads mutate the topology, so [`MutableGraph`] keeps the
//! graph as an *edge set plus a batch of pending mutations*: mutations are
//! queued with [`MutableGraph::insert_edge`], [`MutableGraph::delete_edge`],
//! [`MutableGraph::add_vertex`] and [`MutableGraph::set_ident`], and
//! [`MutableGraph::commit`] applies the whole batch atomically, rebuilding a
//! fresh CSR snapshot in place (`O(n + m)`, the same cost as one
//! [`Graph::from_edges`]).
//!
//! Commits are **atomic**: if any queued operation is invalid (range,
//! self-loop, duplicate insert, missing delete, identifier clash), the
//! committed state is left untouched and the whole batch is discarded, so a
//! failed commit never leaves a half-applied topology behind. The returned
//! [`CommitDelta`] lists the *net* effect — an edge deleted and re-inserted
//! within one batch appears in neither list, which is exactly what the
//! incremental recoloring engine wants (its color is still valid).

use crate::{Graph, GraphError, Vertex};
use std::collections::HashSet;

/// One queued mutation (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u32, u32),
    Delete(u32, u32),
    AddVertex,
    SetIdent(u32, u64),
}

/// The net effect of one committed mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitDelta {
    /// Edges present after the commit that were absent before, as
    /// normalized `(u, v)` pairs with `u < v`, sorted.
    pub inserted: Vec<(Vertex, Vertex)>,
    /// Edges absent after the commit that were present before, normalized
    /// and sorted.
    pub deleted: Vec<(Vertex, Vertex)>,
    /// Vertices added by the batch.
    pub added_vertices: usize,
}

/// A graph under batched mutation. See the module docs.
///
/// # Example
///
/// ```
/// use deco_graph::MutableGraph;
///
/// let mut mg = MutableGraph::new(3);
/// mg.insert_edge(0, 1)?;
/// mg.insert_edge(1, 2)?;
/// let delta = mg.commit()?;
/// assert_eq!(delta.inserted.len(), 2);
/// assert_eq!(mg.graph().m(), 2);
///
/// mg.delete_edge(0, 1)?;
/// let v = mg.add_vertex();
/// mg.insert_edge(2, v)?;
/// let delta = mg.commit()?;
/// assert_eq!(delta.deleted, vec![(0, 1)]);
/// assert_eq!(delta.inserted, vec![(2, 3)]);
/// assert_eq!(mg.graph().n(), 4);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MutableGraph {
    /// The committed snapshot.
    snapshot: Graph,
    /// Queued, not-yet-committed operations, in queue order.
    pending: Vec<Op>,
    /// Vertices added by pending ops (so queued inserts can address them).
    pending_vertices: usize,
}

impl MutableGraph {
    /// An edgeless mutable graph with `n` vertices.
    pub fn new(n: usize) -> MutableGraph {
        MutableGraph::from_graph(Graph::empty(n))
    }

    /// Wraps an existing graph as the committed state.
    pub fn from_graph(snapshot: Graph) -> MutableGraph {
        MutableGraph { snapshot, pending: Vec::new(), pending_vertices: 0 }
    }

    /// The current committed snapshot (pending operations excluded).
    pub fn graph(&self) -> &Graph {
        &self.snapshot
    }

    /// Number of vertices the next commit will have (committed + pending).
    pub fn next_n(&self) -> usize {
        self.snapshot.n() + self.pending_vertices
    }

    /// Number of queued, uncommitted operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Queues insertion of the undirected edge `(u, v)`.
    ///
    /// Endpoints may be vertices added earlier in the same batch. Whether
    /// the edge already exists is checked at [`MutableGraph::commit`] time
    /// (the batch may delete it first).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range for the
    /// post-batch vertex count or the edge is a self-loop.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Insert(u, v));
        Ok(())
    }

    /// Queues deletion of the undirected edge `(u, v)`.
    ///
    /// Existence is checked at [`MutableGraph::commit`] time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range for the
    /// post-batch vertex count or the edge is a self-loop.
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Delete(u, v));
        Ok(())
    }

    /// Queues addition of one vertex and returns its index (valid from the
    /// next commit on, but usable as an endpoint within this batch).
    ///
    /// The new vertex receives identifier `index + 1` (the default scheme);
    /// override with [`MutableGraph::set_ident`] if the committed graph uses
    /// custom identifiers.
    pub fn add_vertex(&mut self) -> Vertex {
        self.pending.push(Op::AddVertex);
        self.pending_vertices += 1;
        self.next_n() - 1
    }

    /// Queues an identifier override for `v` (applied after vertex
    /// additions of the same batch, in queue order). Distinctness is
    /// validated at commit time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `v` is out of range for the post-batch
    /// vertex count.
    pub fn set_ident(&mut self, v: Vertex, ident: u64) -> Result<(), GraphError> {
        if v >= self.next_n() {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.next_n() });
        }
        self.pending.push(Op::SetIdent(v as u32, ident));
        Ok(())
    }

    /// Discards all queued operations, keeping the committed state.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
        self.pending_vertices = 0;
    }

    fn check_pair(&self, u: Vertex, v: Vertex) -> Result<(u32, u32), GraphError> {
        let n = self.next_n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok(if u < v { (u as u32, v as u32) } else { (v as u32, u as u32) })
    }

    /// Applies the queued batch atomically, rebuilds the CSR snapshot and
    /// returns the net delta.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for the first invalid operation (inserting an
    /// edge that exists, deleting one that does not, identifier clashes).
    /// On error the committed state is unchanged and the batch is
    /// discarded.
    pub fn commit(&mut self) -> Result<CommitDelta, GraphError> {
        let old = &self.snapshot;
        let added_vertices = self.pending_vertices;
        let n_new = old.n() + added_vertices;
        let mut set: HashSet<(u32, u32)> = old.edges().map(|(u, v)| (u as u32, v as u32)).collect();
        let mut idents: Vec<u64> = old.idents().to_vec();
        idents.extend((old.n() as u64 + 1)..=(n_new as u64));
        // Applying in queue order makes delete-then-reinsert legal and
        // last-override-wins for identifiers.
        let outcome: Result<(), GraphError> = self.pending.iter().try_for_each(|&op| match op {
            Op::Insert(u, v) => {
                if set.insert((u, v)) {
                    Ok(())
                } else {
                    Err(GraphError::DuplicateEdge { u: u as usize, v: v as usize })
                }
            }
            Op::Delete(u, v) => {
                if set.remove(&(u, v)) {
                    Ok(())
                } else {
                    Err(GraphError::MissingEdge { u: u as usize, v: v as usize })
                }
            }
            Op::AddVertex => Ok(()),
            Op::SetIdent(v, ident) => {
                idents[v as usize] = ident;
                Ok(())
            }
        });
        if let Err(e) = outcome {
            self.discard_pending();
            return Err(e);
        }
        let mut edges: Vec<(usize, usize)> =
            set.into_iter().map(|(u, v)| (u as usize, v as usize)).collect();
        edges.sort_unstable();
        let graph = match Graph::from_edges(n_new, &edges).and_then(|g| g.with_idents(idents)) {
            Ok(g) => g,
            Err(e) => {
                self.discard_pending();
                return Err(e);
            }
        };
        // Net delta via sorted merge of old and new edge lists.
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        {
            let mut old_it = old.edges().peekable();
            let mut new_it = graph.edges().peekable();
            loop {
                match (old_it.peek().copied(), new_it.peek().copied()) {
                    (Some(a), Some(b)) if a == b => {
                        old_it.next();
                        new_it.next();
                    }
                    (Some(a), Some(b)) if a < b => {
                        deleted.push(a);
                        old_it.next();
                    }
                    (Some(_), Some(b)) => {
                        inserted.push(b);
                        new_it.next();
                    }
                    (Some(a), None) => {
                        deleted.push(a);
                        old_it.next();
                    }
                    (None, Some(b)) => {
                        inserted.push(b);
                        new_it.next();
                    }
                    (None, None) => break,
                }
            }
        }
        self.snapshot = graph;
        self.discard_pending();
        Ok(CommitDelta { inserted, deleted, added_vertices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_atomic_on_error() {
        let mut mg = MutableGraph::new(4);
        mg.insert_edge(0, 1).unwrap();
        mg.commit().unwrap();
        mg.insert_edge(2, 3).unwrap();
        mg.insert_edge(1, 0).unwrap(); // duplicate of committed edge
        assert_eq!(mg.commit(), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
        // The valid part of the failed batch was discarded too.
        assert_eq!(mg.graph().m(), 1);
        assert_eq!(mg.pending_ops(), 0);
    }

    #[test]
    fn delete_then_reinsert_is_a_net_noop() {
        let mut mg = MutableGraph::new(3);
        mg.insert_edge(0, 1).unwrap();
        mg.insert_edge(1, 2).unwrap();
        mg.commit().unwrap();
        mg.delete_edge(0, 1).unwrap();
        mg.insert_edge(0, 1).unwrap();
        let delta = mg.commit().unwrap();
        assert!(delta.inserted.is_empty());
        assert!(delta.deleted.is_empty());
        assert_eq!(mg.graph().m(), 2);
    }

    #[test]
    fn missing_delete_rejected() {
        let mut mg = MutableGraph::new(3);
        mg.delete_edge(0, 2).unwrap();
        assert_eq!(mg.commit(), Err(GraphError::MissingEdge { u: 0, v: 2 }));
    }

    #[test]
    fn added_vertices_usable_within_batch() {
        let mut mg = MutableGraph::new(2);
        mg.insert_edge(0, 1).unwrap();
        let a = mg.add_vertex();
        let b = mg.add_vertex();
        assert_eq!((a, b), (2, 3));
        mg.insert_edge(a, b).unwrap();
        mg.insert_edge(1, a).unwrap();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.added_vertices, 2);
        assert_eq!(delta.inserted, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(mg.graph().n(), 4);
        assert_eq!(mg.graph().ident(3), 4); // default scheme
    }

    #[test]
    fn ident_overrides_validated_at_commit() {
        let mut mg = MutableGraph::new(3);
        mg.set_ident(0, 10).unwrap();
        mg.set_ident(1, 10).unwrap();
        assert!(matches!(mg.commit(), Err(GraphError::DuplicateIdent { ident: 10 })));
        mg.set_ident(0, 10).unwrap();
        mg.set_ident(0, 7).unwrap(); // last override wins
        mg.commit().unwrap();
        assert_eq!(mg.graph().ident(0), 7);
    }

    #[test]
    fn range_checks_respect_pending_vertices() {
        let mut mg = MutableGraph::new(1);
        assert!(mg.insert_edge(0, 1).is_err());
        let v = mg.add_vertex();
        mg.insert_edge(0, v).unwrap();
        assert!(mg.set_ident(2, 5).is_err());
        mg.commit().unwrap();
        assert_eq!((mg.graph().n(), mg.graph().m()), (2, 1));
    }

    #[test]
    fn self_loops_rejected_immediately() {
        let mut mg = MutableGraph::new(2);
        assert_eq!(mg.insert_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
        assert_eq!(mg.delete_edge(0, 0), Err(GraphError::SelfLoop { vertex: 0 }));
    }

    #[test]
    fn from_graph_preserves_idents() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap().with_idents(vec![5, 6, 7]).unwrap();
        let mut mg = MutableGraph::from_graph(g);
        mg.add_vertex();
        mg.commit().unwrap();
        assert_eq!(mg.graph().idents(), &[5, 6, 7, 4]);
    }
}
