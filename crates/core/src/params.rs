//! Parameter selection for Procedure Legal-Color (Algorithm 2).
//!
//! The paper invokes Legal-Color with several parameter regimes:
//!
//! * **Theorem 4.5** (`O(Δ)` colors, `O(Δ^ε + log* n)` time):
//!   `b = ⌈Δ^{ε/6}⌉`, `p = ⌈Δ^{ε/3}⌉`, `λ = ⌈Δ^ε⌉`;
//! * **Theorem 4.6** (`O(Δ^{1+η})` colors, `O(log Δ · log* n)` time):
//!   constants `λ = (3c+1)^{6t}`, `b = (3c+1)^{2t}`, `p = (3c+1)^t`.
//!
//! Both regimes require `p > 4c` and `2c < λ` for the recursion to contract
//! (equation (1)); at simulation scales the Theorem 4.6 constants are
//! astronomically large (e.g. `λ = 7⁶` for `c = 2, t = 1`), so the presets
//! here clamp to the smallest constants that still contract, and the faithful
//! formulas remain available for asymptotic experiments. The recursion-depth
//! and color-count *shapes* are unchanged by the clamping; see DESIGN.md.

use std::error::Error;
use std::fmt;

/// Parameters `(b, p, λ)` of Procedure Legal-Color. `Λ` starts at Δ and is
/// recomputed by the recursion itself (Algorithm 2, line 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegalParams {
    /// Tradeoff parameter `b >= 1`: larger `b` lowers the defect (and hence
    /// the color count) at the cost of `O((b·p)²)`-factor slower levels.
    pub b: u64,
    /// Partition width `p`: each level splits every class into `p`
    /// subclasses. Must exceed `4c` for the degree bound to contract.
    pub p: u64,
    /// Recursion threshold `λ > 2c`: classes with degree bound `Λ <= λ` are
    /// colored directly with `Λ+1` colors.
    pub lambda: u64,
}

/// Error from [`LegalParams::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamError {
    /// `b < 1` or `p < 2`.
    Degenerate {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// The recursion would not shrink the degree bound: requires `p > 4c`
    /// in the paper's analysis.
    NoContraction {
        /// The degree bound at which contraction fails.
        lambda: u64,
        /// The (non-)contracted next bound.
        next: u64,
    },
    /// `λ` must exceed `2c` and be at least `b·p` so every recursive level
    /// satisfies `b·p <= Λ`.
    ThresholdTooSmall {
        /// The offending threshold.
        lambda: u64,
        /// The minimum acceptable threshold.
        min: u64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Degenerate { what } => write!(f, "degenerate parameters: {what}"),
            ParamError::NoContraction { lambda, next } => {
                write!(f, "recursion does not contract at Λ = {lambda} (next Λ' = {next})")
            }
            ParamError::ThresholdTooSmall { lambda, min } => {
                write!(f, "threshold λ = {lambda} below minimum {min}")
            }
        }
    }
}

impl Error for ParamError {}

/// Algorithm 2 line 6: the defect bound of the ψ-partition, which becomes
/// the degree bound `Λ'` of the next level:
/// `Λ' = ⌊(Λ/(b·p) + Λ/p)·c + c⌋ = ⌊c·Λ·(b+1)/(b·p)⌋ + c`.
pub fn next_lambda(c: u64, b: u64, p: u64, lambda: u64) -> u64 {
    c * lambda * (b + 1) / (b * p) + c
}

impl LegalParams {
    /// Explicit parameters.
    pub fn new(b: u64, p: u64, lambda: u64) -> LegalParams {
        LegalParams { b, p, lambda }
    }

    /// The faithful Theorem 4.5 parameters for maximum degree `delta` and an
    /// arbitrarily small `eps > 0`, clamped up to the smallest contracting
    /// values for bounded-NI constant `c`.
    pub fn theorem_4_5(delta: u64, c: u64, eps: f64) -> LegalParams {
        let d = delta.max(2) as f64;
        let b = d.powf(eps / 6.0).ceil() as u64;
        let p = (d.powf(eps / 3.0).ceil() as u64).max(4 * c + 1);
        let lambda = (d.powf(eps).ceil() as u64).max(2 * c + 1).max(b * p);
        LegalParams { b: b.max(1), p, lambda }
    }

    /// The faithful Theorem 4.6 parameters: `p = (3c+1)^t`,
    /// `b = (3c+1)^{2t}`, `λ = (3c+1)^{6t}` for an integer `t > 2` — the
    /// number of colors is `O(Δ^{1 + 1/(t-1)})`.
    ///
    /// Beware: these constants are enormous; at simulatable scales the
    /// recursion never fires and the run degenerates to the bottom-level
    /// `(Δ+1)`-coloring. Use [`LegalParams::log_depth`] for experiments.
    pub fn theorem_4_6(c: u64, t: u32) -> LegalParams {
        let base = 3 * c + 1;
        LegalParams { b: base.pow(2 * t), p: base.pow(t), lambda: base.pow(6 * t) }
    }

    /// The Theorem 4.8(3) regime — `Δ^{1+o(1)}` colors in
    /// `O((log Δ)^{1+ε}) + ½log* n` time — sets `λ = ⌈log^η Δ⌉`,
    /// `b = λ^{1/3}`, `p = λ^{1/6}`, clamped up to the smallest contracting
    /// values: at simulatable Δ the un-clamped `p = (log^η Δ)^{1/6} < 2` is
    /// degenerate (see DESIGN.md), so the clamp dominates and the preset
    /// behaves like [`LegalParams::log_depth`] with a larger threshold.
    pub fn theorem_4_8_3(delta: u64, c: u64, eta: f64) -> LegalParams {
        let logd = (delta.max(2) as f64).log2();
        let lam = logd.powf(eta);
        let b = (lam.powf(1.0 / 3.0).ceil() as u64).max(1);
        let p = (lam.powf(1.0 / 6.0).ceil() as u64).max(4 * c + 1);
        let lambda = (lam.ceil() as u64).max(2 * c + 1).max(b * p);
        LegalParams { b, p, lambda }
    }

    /// A practical constant-parameter preset with Theorem 4.6's *shape*
    /// (recursion depth `O(log Δ)`, so `O(log Δ) + log* n` time for the edge
    /// variant): the smallest contracting constants,
    /// `p = 4c+1, λ = 2·b·p`, with `b` controlling the colors-vs-rounds
    /// tradeoff exactly as in the paper (each level multiplies the palette
    /// by `p` and divides the degree bound by `≈ b·p/(c(b+1))`).
    pub fn log_depth(c: u64, b: u64) -> LegalParams {
        let p = 4 * c + 1;
        LegalParams { b: b.max(1), p, lambda: (2 * b.max(1) * p).max(2 * c + 1) }
    }

    /// Checks that the parameters are usable for neighborhood independence
    /// `c`: the recursion must contract strictly at every `Λ > λ`, and the
    /// threshold must be large enough that every level satisfies
    /// `b·p <= Λ` and the bottom palette stays `Λ+1 > 2c`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] describing the violated constraint.
    pub fn validate(&self, c: u64) -> Result<(), ParamError> {
        if self.b < 1 {
            return Err(ParamError::Degenerate { what: "b must be >= 1" });
        }
        if self.p < 2 {
            return Err(ParamError::Degenerate { what: "p must be >= 2" });
        }
        let min_lambda = (2 * c + 1).max(self.b * self.p);
        if self.lambda < min_lambda {
            return Err(ParamError::ThresholdTooSmall { lambda: self.lambda, min: min_lambda });
        }
        // Contraction is hardest just above the threshold; Λ' is affine
        // increasing in Λ with slope c(b+1)/(bp) — if it contracts at λ+1
        // and the slope is < 1, it contracts everywhere above.
        let at = self.lambda + 1;
        let next = next_lambda(c, self.b, self.p, at);
        if next >= at || c * (self.b + 1) >= self.b * self.p {
            return Err(ParamError::NoContraction { lambda: at, next });
        }
        Ok(())
    }

    /// The recursion depth for an initial degree bound `delta`: the number
    /// of Defective-Color levels before the bound drops to `λ` or below.
    pub fn depth(&self, c: u64, delta: u64) -> u32 {
        let mut lam = delta;
        let mut depth = 0;
        while lam > self.lambda {
            let next = next_lambda(c, self.b, self.p, lam);
            if next >= lam {
                break;
            }
            lam = next;
            depth += 1;
        }
        depth
    }

    /// The final degree bound `Λ̂ <= λ` the recursion bottoms out at.
    pub fn bottom_lambda(&self, c: u64, delta: u64) -> u64 {
        let mut lam = delta;
        while lam > self.lambda {
            let next = next_lambda(c, self.b, self.p, lam);
            if next >= lam {
                break;
            }
            lam = next;
        }
        lam
    }

    /// The color bound `ϑ⁽⁰⁾ = (Λ̂+1)·p^r` of Lemma 4.4.
    pub fn color_bound(&self, c: u64, delta: u64) -> u64 {
        let r = self.depth(c, delta);
        (self.bottom_lambda(c, delta) + 1).saturating_mul(self.p.saturating_pow(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_lambda_matches_real_arithmetic() {
        // ⌊(Λ/(bp) + Λ/p)·c⌋ + c with real division.
        let (c, b, p, lam) = (2u64, 2u64, 9u64, 100u64);
        let real =
            ((lam as f64 / (b * p) as f64 + lam as f64 / p as f64) * c as f64).floor() as u64 + c;
        assert_eq!(next_lambda(c, b, p, lam), real);
    }

    #[test]
    fn theorem_4_5_clamps() {
        let p = LegalParams::theorem_4_5(64, 2, 0.5);
        assert!(p.p >= 9);
        assert!(p.lambda >= p.b * p.p);
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn theorem_4_6_is_faithful_but_huge() {
        let p = LegalParams::theorem_4_6(2, 1);
        assert_eq!(p.p, 7);
        assert_eq!(p.b, 49);
        assert_eq!(p.lambda, 7u64.pow(6));
        assert!(p.validate(2).is_ok());
        // Degenerates at small Δ: depth 0.
        assert_eq!(p.depth(2, 1000), 0);
    }

    #[test]
    fn log_depth_contracts_logarithmically() {
        for c in 1..=4u64 {
            for b in 1..=3u64 {
                let p = LegalParams::log_depth(c, b);
                p.validate(c).unwrap();
                // Depth grows like log Δ: doubling Δ adds O(1) levels.
                let d1 = p.depth(c, 1 << 8);
                let d2 = p.depth(c, 1 << 16);
                assert!(d2 >= d1);
                assert!(d2 <= d1 + 16, "depth not logarithmic: {d1} -> {d2}");
                assert!(d2 >= 1);
            }
        }
    }

    #[test]
    fn theorem_4_8_3_clamps_and_validates() {
        for delta in [16u64, 256, 1 << 20] {
            let p = LegalParams::theorem_4_8_3(delta, 2, 1.5);
            p.validate(2).unwrap();
            assert!(p.p >= 9);
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(matches!(
            LegalParams::new(1, 1, 100).validate(2),
            Err(ParamError::Degenerate { .. })
        ));
        assert!(matches!(
            LegalParams::new(1, 9, 3).validate(2),
            Err(ParamError::ThresholdTooSmall { .. })
        ));
        // p = 4 gives slope c(b+1)/(bp) = 1: no contraction for c = 2.
        assert!(matches!(
            LegalParams::new(1, 4, 50).validate(2),
            Err(ParamError::NoContraction { .. })
        ));
        // p = 5 contracts arithmetically (slope 4/5 < 1) even though the
        // paper's analysis asks for p > 4c; validation is arithmetic.
        assert!(LegalParams::new(1, 5, 50).validate(2).is_ok());
        assert!(LegalParams::new(0, 5, 50).validate(2).is_err());
    }

    #[test]
    fn color_bound_scales_near_linear_for_large_b() {
        let c = 2;
        let small_b = LegalParams::log_depth(c, 1);
        let big_b = LegalParams::log_depth(c, 4);
        let delta = 1 << 12;
        // Larger b gives fewer colors (better contraction per level).
        assert!(big_b.color_bound(c, delta) <= small_b.color_bound(c, delta));
    }

    #[test]
    fn param_error_display() {
        let e = LegalParams::new(1, 4, 50).validate(2).unwrap_err();
        assert!(e.to_string().contains("contract"));
    }
}
