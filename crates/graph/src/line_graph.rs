//! Line graphs of ordinary graphs.
//!
//! The line graph `L(G)` has a vertex for every edge of `G`, and two vertices
//! of `L(G)` are adjacent iff the corresponding edges of `G` share an
//! endpoint. Lemma 5.1 of the paper shows `I(L(G)) <= 2`, which is what makes
//! the bounded-neighborhood-independence machinery apply to edge coloring of
//! *general* graphs.

use crate::{Graph, Vertex};

/// The line graph of `g`.
///
/// Vertex `i` of the result corresponds to edge `i` of `g` (the normalized,
/// lexicographically sorted edge list), so an edge coloring of `g` and a
/// vertex coloring of `line_graph(g)` are the same vector. Following
/// Lemma 5.2, the identifier of line-graph vertex `i` is derived from the
/// ordered identifier pair of the endpoints of edge `i`: identifiers are
/// assigned by lexicographic rank of `(ident(u), ident(v))` with
/// `ident(u) < ident(v)`, which yields distinct identifiers in `{1, ..., m}`.
///
/// # Example
///
/// ```
/// use deco_graph::{line_graph::line_graph, Graph};
///
/// // A path on 4 vertices has 3 edges forming a path in the line graph.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// let l = line_graph(&g);
/// assert_eq!(l.n(), 3);
/// assert_eq!(l.m(), 2);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
pub fn line_graph(g: &Graph) -> Graph {
    let m = g.m();
    let mut b = Graph::builder(m);
    for v in 0..g.n() {
        let incident: Vec<usize> = g.incident(v).map(|(_, e)| e).collect();
        for (a, &e) in incident.iter().enumerate() {
            for &f in &incident[a + 1..] {
                // Two distinct edges sharing v. An edge pair can share both
                // endpoints only in a multigraph, which `Graph` forbids, but
                // a triangle's edges meet pairwise at distinct vertices, so
                // deduplicate defensively.
                // INVARIANT: line-graph vertex indices come from enumerate() over the edge list, so they are in range.
                b.add_edge_dedup(e, f).expect("edge indices in range");
            }
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    let l = b.build().expect("deduplicated construction");
    // Identifier of line vertex e = rank of (ident(u), ident(v)) ordered pairs.
    let mut keyed: Vec<((u64, u64), usize)> = (0..m)
        .map(|e| {
            let (u, v) = g.endpoints(e);
            let (a, b) = (g.ident(u), g.ident(v));
            (if a < b { (a, b) } else { (b, a) }, e)
        })
        .collect();
    keyed.sort_unstable();
    let mut idents = vec![0u64; m];
    for (rank, &(_, e)) in keyed.iter().enumerate() {
        idents[e] = rank as u64 + 1;
    }
    // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
    l.with_idents(idents).expect("lexicographic ranks are distinct")
}

/// Maximum degree of the line graph of `g` without building it:
/// `deg_L(e) = deg(u) + deg(v) - 2` for `e = (u, v)`, so
/// `Δ(L(G)) <= 2Δ(G) - 2` (Section 5).
pub fn line_graph_max_degree(g: &Graph) -> usize {
    g.edges().map(|(u, v): (Vertex, Vertex)| g.degree(u) + g.degree(v) - 2).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties::neighborhood_independence;

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let l = line_graph(&g);
        assert_eq!(l.n(), 3);
        assert_eq!(l.m(), 3);
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        let g = generators::star(6);
        let l = line_graph(&g);
        assert_eq!(l.n(), 5);
        assert_eq!(l.m(), 5 * 4 / 2);
    }

    #[test]
    fn lemma_5_1_bounded_independence() {
        for g in [
            generators::complete(6),
            generators::star(9),
            generators::cycle(11),
            generators::grid(4, 5),
        ] {
            let l = line_graph(&g);
            assert!(neighborhood_independence(&l) <= 2, "Lemma 5.1 violated");
        }
    }

    #[test]
    fn degree_bound_matches() {
        let g = generators::grid(5, 5);
        let l = line_graph(&g);
        assert_eq!(l.max_degree(), line_graph_max_degree(&g));
        assert!(l.max_degree() <= 2 * g.max_degree() - 2);
    }

    #[test]
    fn idents_are_a_permutation() {
        let g = generators::grid(3, 4);
        let l = line_graph(&g);
        let mut ids: Vec<u64> = l.idents().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (1..=g.m() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        let l = line_graph(&g);
        assert_eq!(l.n(), 0);
        assert_eq!(line_graph_max_degree(&g), 0);
    }
}
