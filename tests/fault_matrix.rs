//! PR 6 acceptance: the fault matrix.
//!
//! Sweeps transport-fault kinds × seeds over a churn scenario on the
//! streaming recolorer and asserts, for every cell:
//!
//! * **termination with a verified-legal coloring** — every commit ends
//!   proper and within the snapshot's palette bound, within the bounded
//!   retry/fallback budget, and never panics;
//! * **determinism** — the whole history (colors, reports, fault counters)
//!   is a pure function of the transport seed. A pinned hash over the full
//!   matrix makes this hold *across processes*: CI replays this file under
//!   `DECO_THREADS` ∈ {1, 8}, so thread-count or delivery divergence breaks
//!   the pin (faulty runs force the sequential scan engine; the fault-free
//!   from-scratch builds exercise the thread matrix for real);
//! * **oracle agreement** — the delta-CSR and rebuild commit paths stay
//!   bit-identical under faults, exactly as on a perfect transport.

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::generators;
use deco_stream::{CommitReport, FaultyTransport, RecolorConfig, Recolorer, RepairStrategy};
use std::sync::Arc;

/// One faulty-transport cell of the matrix.
fn transports(seed: u64) -> Vec<(&'static str, FaultyTransport)> {
    vec![
        ("drop", FaultyTransport::new(seed).with_drop(150_000)),
        ("delay", FaultyTransport::new(seed).with_delay(120_000, 3)),
        ("reorder", FaultyTransport::new(seed).with_reorder(100_000)),
        (
            "mixed",
            FaultyTransport::new(seed).with_drop(80_000).with_delay(80_000, 2).with_reorder(60_000),
        ),
    ]
}

/// Drives one matrix cell: initial build plus four flap epochs (delete a
/// window of edges, commit, reinsert them, commit), validating after every
/// commit. Returns the full report history and the final colors.
fn run_cell(seed: u64, transport: FaultyTransport) -> (Vec<CommitReport>, Vec<u64>) {
    let g = generators::random_bounded_degree(220, 6, seed);
    let mut r = Recolorer::from_graph_with(
        g,
        edge_log_depth(1),
        MessageMode::Long,
        RecolorConfig::default().with_transport(Arc::new(transport)),
    )
    .unwrap();
    let mut reports = vec![r.commit().unwrap()];
    for step in 0..4 {
        let edges: Vec<_> = r.graph().edges().skip(step * 13).take(3).collect();
        for &(u, v) in &edges {
            r.delete_edge(u, v).unwrap();
        }
        reports.push(r.commit().unwrap());
        for &(u, v) in &edges {
            r.insert_edge(u, v).unwrap();
        }
        reports.push(r.commit().unwrap());
        let coloring = r.coloring();
        assert!(coloring.is_proper(r.graph()), "seed {seed}: improper after step {step}");
        let bound = r.color_bound();
        assert!(
            coloring.colors().iter().all(|&c| c < bound),
            "seed {seed}: color above bound {bound} after step {step}"
        );
    }
    (reports, r.coloring().into_colors())
}

/// FNV-1a over a cell's colors and fault counters (the deterministic
/// fingerprint the matrix pin is built from).
fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x1000_0000_01b3);
    }
}

#[test]
fn every_cell_terminates_legal_within_budget_and_deterministically() {
    for seed in [2u64, 5, 11] {
        for (kind, transport) in transports(seed) {
            let (reports, colors) = run_cell(seed, transport.clone());
            // Bounded self-stabilization budget: at most the default five
            // retries and one fallback per commit, and incremental commits
            // must actually dominate at these fault rates.
            for rep in &reports {
                assert!(rep.retries <= 5, "{kind}/{seed}: retries {}", rep.retries);
                assert!(rep.fallbacks <= 1, "{kind}/{seed}: fallbacks {}", rep.fallbacks);
            }
            let incremental =
                reports.iter().filter(|r| r.strategy == RepairStrategy::Incremental).count();
            assert!(incremental >= 4, "{kind}/{seed}: only {incremental} incremental commits");
            // Determinism: the exact same history on a second run.
            let again = run_cell(seed, transport);
            assert_eq!(reports, again.0, "{kind}/{seed}: reports diverge across runs");
            assert_eq!(colors, again.1, "{kind}/{seed}: colors diverge across runs");
        }
    }
}

/// Cross-process pin of the whole matrix (one seed per kind, to keep the
/// sweep cheap): colors plus retry/fallback/round/message counters, hashed.
/// CI replays this under `DECO_THREADS` ∈ {1, 8}; the constant must hold
/// everywhere.
#[test]
fn pinned_fault_matrix_fingerprint() {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, transport) in transports(5) {
        let (reports, colors) = run_cell(5, transport);
        for rep in &reports {
            fnv(&mut h, u64::from(rep.retries));
            fnv(&mut h, u64::from(rep.fallbacks));
            fnv(&mut h, rep.stats.rounds as u64);
            fnv(&mut h, rep.stats.messages as u64);
            fnv(&mut h, rep.stats.transport_dropped as u64);
        }
        fnv(&mut h, colors.len() as u64);
        for &c in &colors {
            fnv(&mut h, c);
        }
    }
    assert_eq!(h, PINNED_MATRIX_FINGERPRINT);
}

const PINNED_MATRIX_FINGERPRINT: u64 = 7_913_824_958_085_202_501;

#[test]
fn delta_and_rebuild_paths_agree_under_faults() {
    // The PR 4 differential contract survives the fault era: the delta-CSR
    // and rebuild commit paths produce bit-identical reports and colors
    // when both run over the same faulty transport.
    let transport =
        || Arc::new(FaultyTransport::new(9).with_drop(100_000).with_delay(100_000, 2)) as Arc<_>;
    let g = generators::random_bounded_degree(180, 6, 33);
    let params = edge_log_depth(1);
    let mut fast = Recolorer::from_graph_with(
        g.clone(),
        params,
        MessageMode::Long,
        RecolorConfig::default().with_transport(transport()),
    )
    .unwrap();
    let mut slow = Recolorer::from_graph_with(
        g,
        params,
        MessageMode::Long,
        RecolorConfig::default().with_transport(transport()).with_rebuild_commits(true),
    )
    .unwrap();
    assert_eq!(fast.commit().unwrap(), slow.commit().unwrap());
    for step in 0..4 {
        let edges: Vec<_> = fast.graph().edges().skip(step * 11).take(3).collect();
        for r in [&mut fast, &mut slow] {
            for &(u, v) in &edges {
                r.delete_edge(u, v).unwrap();
            }
            r.commit().unwrap();
            for &(u, v) in &edges {
                r.insert_edge(u, v).unwrap();
            }
        }
        let a = fast.commit().unwrap();
        let b = slow.commit().unwrap();
        assert_eq!(a, b, "step {step}: reports diverge");
        assert_eq!(fast.coloring(), slow.coloring(), "step {step}: colors diverge");
        assert!(fast.coloring().is_proper(fast.graph()));
    }
}
