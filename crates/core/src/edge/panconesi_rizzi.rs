//! The Panconesi–Rizzi `(2Δ-1)`-edge-coloring \[24\] in `O(Δ) + log* n`
//! rounds.
//!
//! 1. **Decompose** the edges into at most `Δ` rooted pseudo-forests: every
//!    vertex sorts its neighbors with smaller identifier; its `f`-th such
//!    edge joins forest `f` (each vertex has at most one parent edge per
//!    forest).
//! 2. **3-color** the vertices of every forest in parallel with
//!    Cole–Vishkin ([`crate::cole_vishkin`], `O(log* n)` rounds).
//! 3. **Assign**: for each forest `f` and color class `j`, every parent
//!    whose forest-`f` color is `j` colors *all its child edges* in forest
//!    `f`, avoiding the colors already used at either endpoint — children
//!    first report their used sets, then the parent replies with
//!    assignments, 2 rounds per `(f, j)` step, `6Δ` rounds total. Two
//!    simultaneous assigners never touch incident edges because adjacent
//!    forest vertices have different Cole–Vishkin colors.
//!
//! Every edge needs to avoid at most `2Δ - 2` previously colored incident
//! edges, so the palette `{0, ..., 2Δ-2}` always has a free color.
//!
//! The implementation is group-aware: the edge variant of Procedure
//! Legal-Color (Theorem 5.5) runs it on all classes of its final edge
//! partition **in parallel**, each class on its own `(2Λ̂-1)`-color palette —
//! this is the bottom level of the recursion (Algorithm 2, line 2).

use crate::cole_vishkin::cv_three_color;
use crate::msg::FieldMsg;
use crate::pipeline::{merge_edge_replicas, Pipeline};
use deco_graph::coloring::EdgeColoring;
use deco_graph::{EdgeIdx, Graph, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};
use std::collections::BTreeMap;

const TAG_CV: u64 = 0;
const TAG_REQUEST: u64 = 1;
const TAG_ASSIGN: u64 = 2;

#[derive(Debug, Clone)]
struct AEdge {
    nbr: Vertex,
    eid: EdgeIdx,
    branch: u64,
    forest: u64,
    fid: u64,
    i_am_parent: bool,
    parent_cv: Option<u64>,
    color: Option<u64>,
}

#[derive(Debug)]
struct PrAssign {
    my_cv: BTreeMap<u64, u64>,
    aedges: Vec<AEdge>,
    /// Child-edge indices sorted by `(forest, parent CV color)` — the order
    /// the `(f, j)` steps consume them in. Built once when all parent colors
    /// are known; `child_cursor` then advances monotonically, so a request
    /// round touches only its own step's edges instead of scanning every
    /// incident edge (the `O(deg)` sweep that made the long tail of the
    /// assignment phase protocol-bound).
    child_order: Vec<u32>,
    child_cursor: usize,
    w_cap: u64,
    palette: u64,
    /// Halt at each node's own last relevant `(f, j)` step instead of the
    /// worst-case `2 + 6W` schedule (see [`deco_local::Network::early_halt`];
    /// results are bit-identical either way, only round counts move).
    early_halt: bool,
    /// The last round this node can receive anything relevant — computed in
    /// round 2, once every incident edge's `(forest, CV color)` step is
    /// known. 0 until then.
    halt_after: usize,
    /// Reusable buffers: the per-request forbidden set, the request list
    /// (inbox indices) and the request-message fields. Steady sizes after
    /// the first use, so answering and issuing requests allocates nothing
    /// beyond the messages' own spill spans.
    forbidden_scratch: Vec<u64>,
    request_scratch: Vec<u32>,
    fields_scratch: Vec<u64>,
}

impl PrAssign {
    fn edge_by_nbr(&mut self, nbr: Vertex) -> &mut AEdge {
        // INVARIANT: the transport delivers only along host edges, so the sender is always incident.
        self.aedges.iter_mut().find(|e| e.nbr == nbr).expect("message from non-incident sender")
    }

    fn process_inbox(&mut self, inbox: &[(Vertex, FieldMsg)]) -> Vec<(Vertex, FieldMsg)> {
        // Requests are collected and answered after recording CV colors and
        // assignments.
        let mut requests = std::mem::take(&mut self.request_scratch);
        requests.clear();
        for (i, (sender, m)) in inbox.iter().enumerate() {
            match m.field(0) {
                TAG_CV => {
                    self.edge_by_nbr(*sender).parent_cv = Some(m.field(1));
                }
                TAG_ASSIGN => {
                    let e = self.edge_by_nbr(*sender);
                    debug_assert!(!e.i_am_parent);
                    e.color = Some(m.field(1));
                }
                TAG_REQUEST => {
                    requests.push(i as u32);
                }
                // INVARIANT: peers in this protocol emit only the tags matched above; an unknown tag is a wire bug worth aborting on.
                tag => unreachable!("unknown tag {tag}"),
            }
        }
        if requests.is_empty() {
            self.request_scratch = requests;
            return Vec::new();
        }
        // Deterministic order: by child vertex index (senders are distinct).
        requests.sort_by_key(|&i| inbox[i as usize].0);
        let mut replies = Vec::with_capacity(requests.len());
        let mut forbidden = std::mem::take(&mut self.forbidden_scratch);
        for &i in &requests {
            let (sender, msg) = &inbox[i as usize];
            let branch = {
                let e = self.edge_by_nbr(*sender);
                debug_assert!(e.i_am_parent, "request arrived at the child endpoint");
                e.branch
            };
            // Colors already used on the branch at this endpoint — including
            // the ones assigned to earlier requests of this very round, which
            // were recorded in `aedges` as they were answered — plus the
            // child's used set from the request payload.
            forbidden.clear();
            forbidden
                .extend(self.aedges.iter().filter(|e| e.branch == branch).filter_map(|e| e.color));
            forbidden.extend_from_slice(&msg.fields()[1..]);
            let color = (0..self.palette)
                .find(|c| !forbidden.contains(c))
                // INVARIANT: each endpoint blocks at most W-1 colors, so a (2W-1)-palette retains a free one.
                .expect("palette 2W-1 always has a free color");
            let e = self.edge_by_nbr(*sender);
            e.color = Some(color);
            replies.push((*sender, FieldMsg::new(&[(TAG_ASSIGN, 3), (color, self.palette)])));
        }
        self.forbidden_scratch = forbidden;
        self.request_scratch = requests;
        replies
    }

    /// The round after which nothing relevant can reach this node: for a
    /// child edge of step `s = 3f + j` the assignment arrives in round
    /// `4 + 2s` (request out in `2 + 2s`, reply back one round later); for
    /// a parent edge the last request arrives in round `3 + 2s`, and the
    /// reply rides on the halt action of that same round. Each node knows
    /// every incident edge's step locally — `f` is the edge's φ-rank in the
    /// forest decomposition and `j` the parent's CV color (own for parent
    /// edges, announced in round 1 for child edges) — so the node halts the
    /// round its last step completes instead of idling to the global
    /// `2 + 6W` bound.
    fn last_relevant_round(&self) -> usize {
        let mut last = 0usize;
        for e in &self.aedges {
            let (j, due) = if e.i_am_parent {
                // INVARIANT: my_cv is filled for every forest this node parents before coloring begins.
                (*self.my_cv.get(&e.fid).expect("parent has a CV color per forest"), 3)
            } else {
                // INVARIANT: round 1 delivers the parent's CV color before any later round reads it.
                (e.parent_cv.expect("parent CV color arrives in round 1"), 4)
            };
            last = last.max(due + 2 * (3 * e.forest + j) as usize);
        }
        last
    }
}

impl Protocol for PrAssign {
    type Msg = FieldMsg;
    type Output = Vec<(EdgeIdx, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Parents announce their forest color over each child edge.
        let mut out = Vec::new();
        for e in &self.aedges {
            if e.i_am_parent {
                // INVARIANT: my_cv is filled for every forest this node parents before coloring begins.
                let cv = *self.my_cv.get(&e.fid).expect("parent has a CV color per forest");
                out.push((e.nbr, FieldMsg::new(&[(TAG_CV, 3), (cv, 3)])));
            }
        }
        out
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        let mut out = self.process_inbox(inbox);
        let steps = 3 * self.w_cap as usize;
        if !self.early_halt && ctx.round >= 2 + 2 * steps {
            debug_assert!(self.aedges.iter().all(|e| e.color.is_some()));
            return Action::Halt(out);
        }
        if ctx.round >= 2 && ctx.round % 2 == 0 {
            if ctx.round == 2 {
                // All parent CV colors arrived in round 1; lay the child
                // edges out in step order. The stable sort keeps same-step
                // edges in incident (neighbor-sorted) order.
                let mut order: Vec<u32> = (0..self.aedges.len() as u32)
                    .filter(|&i| !self.aedges[i as usize].i_am_parent)
                    .collect();
                order.sort_by_key(|&i| {
                    let e = &self.aedges[i as usize];
                    // INVARIANT: round 1 delivers the parent's CV color before any later round reads it.
                    (e.forest, e.parent_cv.expect("parent CV color arrives in round 1"))
                });
                self.child_order = order;
                if self.early_halt {
                    self.halt_after = self.last_relevant_round();
                }
            }
            // Request round for step s = (round - 2) / 2: consume exactly
            // this step's children (each child edge is requested once, at
            // its own step, so the cursor only ever moves forward).
            let s = (ctx.round - 2) / 2;
            let step_key = ((s / 3) as u64, (s % 3) as u64);
            let mut fields = std::mem::take(&mut self.fields_scratch);
            while let Some(&i) = self.child_order.get(self.child_cursor) {
                let e = &self.aedges[i as usize];
                // INVARIANT: parent_cv was populated in round 1, before the ordering phase runs.
                let key = (e.forest, e.parent_cv.expect("set before ordering"));
                if key > step_key {
                    break; // a later step's edge; this step is done
                }
                self.child_cursor += 1;
                if key < step_key || e.color.is_some() {
                    continue; // defensive: never happens for a valid CV coloring
                }
                let (branch, nbr) = (e.branch, e.nbr);
                fields.clear();
                fields.push(TAG_REQUEST);
                fields.extend(
                    self.aedges.iter().filter(|e| e.branch == branch).filter_map(|e| e.color),
                );
                // Wire format: a used-color bitmap of `palette` bits.
                out.push((nbr, FieldMsg::with_bits(&fields, 2 + self.palette as usize)));
            }
            self.fields_scratch = fields;
        }
        if self.aedges.is_empty() {
            return Action::halt();
        }
        if self.early_halt && ctx.round >= 2 && ctx.round >= self.halt_after {
            // Everything this node can still receive is in; everything it
            // owes (this round's replies) rides on the halt action.
            debug_assert!(self.aedges.iter().all(|e| e.color.is_some()));
            return Action::Halt(out);
        }
        Action::Continue(out)
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
        // INVARIANT: the run loop halts only once every element is decided, so the Option is always Some.
        self.aedges.into_iter().map(|e| (e.eid, e.color.expect("all edges colored"))).collect()
    }
}

/// Per-edge `(fid = branch·w_cap + f, parent)` spec plus `(branch, f)`
/// parts, as produced by [`forest_spec`].
type ForestSpec = (Vec<(u64, Vertex)>, Vec<(u64, u64)>);

/// The pseudo-forest decomposition: edge `e` joins forest
/// `(branch, f)` where `f` is `e`'s rank among the child endpoint's
/// same-branch edges toward smaller identifiers. Returns
/// `(fid = branch·w_cap + f, parent)` per edge, plus `(branch, f)` parts.
fn forest_spec(g: &Graph, edge_groups: &[u64], w_cap: u64) -> ForestSpec {
    let mut spec = vec![(0u64, 0usize); g.m()];
    let mut parts = vec![(0u64, 0u64); g.m()];
    for v in 0..g.n() {
        // v's parent edges: neighbors with smaller ident, grouped by branch.
        let mut by_branch: BTreeMap<u64, Vec<(u64, Vertex, EdgeIdx)>> = BTreeMap::new();
        for (u, e) in g.incident(v) {
            if g.ident(u) < g.ident(v) {
                by_branch.entry(edge_groups[e]).or_default().push((g.ident(u), u, e));
            }
        }
        for (branch, mut parents) in by_branch {
            parents.sort_unstable();
            assert!(
                parents.len() as u64 <= w_cap,
                "vertex {v} has {} same-branch out-edges > W = {w_cap}",
                parents.len()
            );
            for (f, &(_, u, e)) in parents.iter().enumerate() {
                spec[e] = (branch * w_cap + f as u64, u);
                parts[e] = (branch, f as u64);
            }
        }
    }
    (spec, parts)
}

/// Panconesi–Rizzi on every class of an edge partition in parallel: a legal
/// `(2W-1)`-edge-coloring *within every class*, where `w_cap = W` bounds the
/// number of same-class edges at any vertex.
///
/// Returns per-edge colors in `{0, ..., 2W-2}` (class-local palettes; add
/// `branch·(2W-1)` for globally disjoint palettes) and the statistics
/// (`O(W) + log* n` rounds).
///
/// # Panics
///
/// Panics if some vertex has more than `w_cap` same-class edges.
pub fn pr_edge_color_in_groups(
    net: &Network<'_>,
    edge_groups: &[u64],
    w_cap: u64,
) -> (Vec<u64>, RunStats) {
    let g = net.graph();
    assert_eq!(edge_groups.len(), g.m(), "one group per edge");
    if g.m() == 0 {
        return (Vec::new(), RunStats::zero());
    }
    let w_cap = w_cap.max(1);
    let (spec, parts) = forest_spec(g, edge_groups, w_cap);
    let mut pl = Pipeline::new(net);
    let (cv_colors, stats1) = cv_three_color(net, &spec);
    pl.absorb("cole-vishkin-forests", stats1);

    let outputs = pl.run("pr-assign", |ctx| {
        let v = ctx.vertex;
        let aedges: Vec<AEdge> = g
            .incident(v)
            .map(|(nbr, e)| {
                let (fid, parent) = spec[e];
                let (branch, forest) = parts[e];
                AEdge {
                    nbr,
                    eid: e,
                    branch,
                    forest,
                    fid,
                    i_am_parent: parent == v,
                    parent_cv: None,
                    color: None,
                }
            })
            .collect();
        PrAssign {
            my_cv: cv_colors[v].iter().copied().collect(),
            aedges,
            child_order: Vec::new(),
            child_cursor: 0,
            w_cap,
            palette: 2 * w_cap - 1,
            early_halt: net.early_halt(),
            halt_after: 0,
            forbidden_scratch: Vec::new(),
            request_scratch: Vec::new(),
            fields_scratch: Vec::new(),
        }
    });

    let colors = merge_edge_replicas(g.m(), &outputs, "color");
    (colors, pl.into_stats())
}

/// The plain Panconesi–Rizzi algorithm: a legal `(2Δ-1)`-edge-coloring of
/// the whole graph in `O(Δ) + O(log* n)` rounds. This is the deterministic
/// baseline of Tables 1 and 2.
///
/// # Example
///
/// ```
/// use deco_core::edge::panconesi_rizzi::pr_edge_color;
/// use deco_graph::generators;
///
/// let g = generators::random_bounded_degree(100, 6, 1);
/// let (coloring, stats) = pr_edge_color(&g);
/// assert!(coloring.is_proper(&g));
/// assert!(coloring.palette_size() <= 2 * g.max_degree() - 1);
/// # let _ = stats;
/// ```
pub fn pr_edge_color(g: &Graph) -> (EdgeColoring, RunStats) {
    let net = Network::new(g);
    let groups = vec![0u64; g.m()];
    let (colors, stats) = pr_edge_color_in_groups(&net, &groups, g.max_degree() as u64);
    (EdgeColoring::new(colors), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cole_vishkin::cv_rounds;
    use deco_graph::generators;

    #[test]
    fn proper_2delta_minus_1_on_families() {
        for g in [
            generators::complete(8),
            generators::petersen(),
            generators::star(10),
            generators::cycle(13),
            generators::random_bounded_degree(90, 7, 41),
            generators::clique_with_pendants(7),
        ] {
            let (coloring, stats) = pr_edge_color(&g);
            assert!(coloring.is_proper(&g), "PR output must be proper");
            let delta = g.max_degree() as u64;
            assert!(
                (coloring.palette_size() as u64) < 2 * delta,
                "palette {} > 2Δ-1 = {}",
                coloring.palette_size(),
                2 * delta - 1
            );
            // O(Δ) + log* n with explicit constants: CV + 6Δ + 3.
            let bound = cv_rounds(g.n() as u64) + 6 * delta as usize + 4;
            assert!(stats.rounds <= bound, "rounds {} > {bound}", stats.rounds);
        }
    }

    #[test]
    fn rounds_scale_linearly_in_delta() {
        // Fixed n, growing Δ: PR rounds must grow linearly — the Table 1
        // contrast against the paper's O(log Δ) algorithm.
        let r8 = pr_edge_color(&generators::random_bounded_degree(256, 8, 5)).1.rounds;
        let r32 = pr_edge_color(&generators::random_bounded_degree(256, 32, 5)).1.rounds;
        assert!(r32 > r8 + 2 * (32 - 8), "expected ~6Δ growth: {r8} -> {r32}");
    }

    #[test]
    fn grouped_pr_stays_within_class_palettes() {
        let g = generators::random_bounded_degree(60, 8, 17);
        let net = Network::new(&g);
        // Arbitrary 2-class split; W = Δ is a valid per-class bound.
        let groups: Vec<u64> = (0..g.m()).map(|e| (e % 2) as u64).collect();
        let w = g.max_degree() as u64;
        let (colors, _) = pr_edge_color_in_groups(&net, &groups, w);
        for &c in &colors {
            assert!(c < 2 * w - 1);
        }
        // Properness within each class.
        for v in 0..g.n() {
            let mut seen: Vec<(u64, u64)> =
                g.incident(v).map(|(_, e)| (groups[e], colors[e])).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen.len(),
                g.degree(v),
                "same-class incident edges share a color at vertex {v}"
            );
        }
    }

    #[test]
    fn single_edge() {
        let g = deco_graph::Graph::from_edges(2, &[(0, 1)]).unwrap();
        let (coloring, _) = pr_edge_color(&g);
        assert!(coloring.is_proper(&g));
        assert_eq!(coloring.palette_size(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = deco_graph::Graph::empty(3);
        let (coloring, stats) = pr_edge_color(&g);
        assert!(coloring.is_empty());
        assert_eq!(stats.rounds, 0);
    }
}
