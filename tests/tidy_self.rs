//! Fixture self-tests for `deco-tidy`: one failing and one passing
//! fixture per lint, run through the same [`deco_tidy::lint_rust_source`]
//! / [`deco_tidy::lint_manifest`] / [`deco_tidy::lint_readme`] entry
//! points the binary uses — plus the whole-tree gate: `check_workspace`
//! over this repository must come back clean, and a deliberately
//! corrupted tree must not.
//!
//! Every bad snippet lives inside a string literal, and the scanner
//! blanks string-literal contents before linting, so this file does not
//! trip the whole-tree pass it tests.

use std::path::Path;

/// Lints a fixture as PR 10 and returns the names of the lints that fired.
fn fired(rel: &str, src: &str) -> Vec<&'static str> {
    deco_tidy::lint_rust_source(rel, src, 10).into_iter().map(|d| d.lint).collect()
}

fn assert_clean(rel: &str, src: &str) {
    let diags = deco_tidy::lint_rust_source(rel, src, 10);
    assert!(diags.is_empty(), "expected clean fixture {rel}, got: {diags:?}");
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_bans_hash_containers_in_deterministic_src() {
    let bad = "use std::collections::HashMap;\n";
    assert_eq!(fired("crates/graph/src/fixture.rs", bad), ["hash-iter"]);

    // The same line under an inline allow with a written justification.
    let allowed = "use std::collections::HashMap; // tidy: allow(hash-iter) — membership probes only, never iterated\n";
    assert_clean("crates/graph/src/fixture.rs", allowed);

    // BTree containers are the sanctioned replacement.
    assert_clean("crates/graph/src/fixture.rs", "use std::collections::BTreeMap;\n");
}

#[test]
fn hash_iter_flags_iteration_outside_deterministic_crates() {
    // The lint pairs the container token with an iteration method on the
    // same statement line.
    let bad = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); for v in m.values() { drop(v); } }\n";
    assert_eq!(fired("crates/serve/src/fixture.rs", bad), ["hash-iter"]);

    // Pure lookups never leak iteration order.
    let good =
        "fn f(m: &std::collections::HashMap<u32, u32>) -> Option<u32> { m.get(&1).copied() }\n";
    assert_clean("crates/serve/src/fixture.rs", good);
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_is_quarantined_to_bench_and_allows() {
    let bad = "fn f() { let _t = std::time::Instant::now(); }\n";
    assert_eq!(fired("crates/serve/src/fixture.rs", bad), ["wall-clock"]);

    // The bench harness is *defined* to measure wall time.
    assert_clean("crates/bench/src/fixture.rs", bad);

    // Elsewhere it needs a written justification.
    let allowed = "fn f() { let _t = std::time::Instant::now(); } // tidy: allow(wall-clock) — informational latency line, never in a fingerprint\n";
    assert_clean("crates/serve/src/fixture.rs", allowed);
}

// --------------------------------------------------------------- seeded-rand

#[test]
fn seeded_rand_rejects_entropy_even_in_tests() {
    let bad = "fn f() { let _rng = rand::thread_rng(); }\n";
    assert_eq!(fired("tests/fixture.rs", bad), ["seeded-rand"]);
    assert_eq!(fired("crates/core/src/fixture.rs", bad), ["seeded-rand"]);

    let good = "fn f() { let _rng = StdRng::seed_from_u64(7); }\n";
    assert_clean("tests/fixture.rs", good);
}

#[test]
fn seeded_rand_manifest_rule() {
    let bad = "[dependencies]\nrand = \"0.8\"\n";
    let diags = deco_tidy::lint_manifest("crates/core/Cargo.toml", bad);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, "seeded-rand");

    let good = "[dependencies]\nrand.workspace = true\n";
    assert!(deco_tidy::lint_manifest("crates/core/Cargo.toml", good).is_empty());
}

// --------------------------------------------------------------- probe-gated

#[test]
fn probe_emits_must_be_gated_on_enabled() {
    let bad = "fn f(p: &Probe) {\n    p.emit(1);\n}\n";
    assert_eq!(fired("crates/local/src/fixture.rs", bad), ["probe-gated"]);

    let good = "fn f(p: &Probe) {\n    if p.enabled() {\n        p.emit(1);\n    }\n}\n";
    assert_clean("crates/local/src/fixture.rs", good);

    // Test code may emit unconditionally (it is asserting on the events).
    assert_clean("tests/fixture.rs", bad);
}

// -------------------------------------------------------------- unsafe-audit

#[test]
fn unsafe_requires_allowlisted_module_and_safety_comment() {
    let body = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    // Outside the audited-module allowlist: flagged no matter the comment.
    assert_eq!(fired("crates/serve/src/fixture.rs", body), ["unsafe-audit"]);

    // Inside an allowlisted module, an adjacent SAFETY comment is enough.
    let audited = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
    assert_clean("crates/serve/src/snapshot.rs", audited);

    // …and without the comment it still fires, even there.
    assert_eq!(fired("crates/serve/src/snapshot.rs", body), ["unsafe-audit"]);
}

// --------------------------------------------------------- deprecated-expiry

#[test]
fn deprecated_items_must_name_an_expiry_and_respect_it() {
    // No remove-by marker at all.
    let unmarked = "#[deprecated(note = \"use RecolorConfig\")]\nfn old() {}\n";
    assert_eq!(fired("crates/stream/src/fixture.rs", unmarked), ["deprecated-expiry"]);

    // Marker in the past (fixtures lint as PR 10).
    let expired = "#[deprecated(note = \"use RecolorConfig; remove-by: PR9\")]\nfn old() {}\n";
    assert_eq!(fired("crates/stream/src/fixture.rs", expired), ["deprecated-expiry"]);

    // Marker still in the future: fine.
    let fresh = "#[deprecated(note = \"use RecolorConfig; remove-by: PR99\")]\nfn old() {}\n";
    assert_clean("crates/stream/src/fixture.rs", fresh);
}

// ---------------------------------------------------------- invariant-panic

#[test]
fn panics_in_library_code_need_an_invariant_comment() {
    let bad = "fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    assert_eq!(fired("crates/core/src/fixture.rs", bad), ["invariant-panic"]);

    let good = "fn f(o: Option<u32>) -> u32 {\n    // INVARIANT: every caller checked is_some() first.\n    o.unwrap()\n}\n";
    assert_clean("crates/core/src/fixture.rs", good);

    // Test code is exempt — asserting via unwrap is the point of a test.
    assert_clean("tests/fixture.rs", bad);

    // …including #[cfg(test)] regions inside library files.
    let inline_tests = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert_clean("crates/core/src/fixture.rs", inline_tests);
}

// ------------------------------------------------------------ readme-crates

#[test]
fn every_crate_dir_must_appear_in_the_readme() {
    let dirs = vec!["graph".to_string(), "tidy".to_string()];
    let partial = "| `crates/graph` | graphs |\n";
    let diags = deco_tidy::lint_readme(partial, &dirs);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].lint, "readme-crates");
    assert!(diags[0].message.contains("crates/tidy"));

    let full = "| `crates/graph` | graphs |\n| `crates/tidy` | lints |\n";
    assert!(deco_tidy::lint_readme(full, &dirs).is_empty());
}

// ------------------------------------------------------------- allow-syntax

#[test]
fn allow_comments_are_themselves_linted() {
    // Unknown lint name.
    let typo =
        "use std::collections::BTreeMap; // tidy: allow(hash-itre) — some justification here\n";
    assert_eq!(fired("crates/graph/src/fixture.rs", typo), ["allow-syntax"]);

    // Missing justification: the allow is rejected AND does not suppress.
    let bare = "use std::collections::HashMap; // tidy: allow(hash-iter)\n";
    let mut lints = fired("crates/graph/src/fixture.rs", bare);
    lints.sort_unstable();
    assert_eq!(lints, ["allow-syntax", "hash-iter"]);

    // The standalone form covers the following statement.
    let standalone = "// tidy: allow(hash-iter) — membership probes only, never iterated\nuse std::collections::HashMap;\n";
    assert_clean("crates/graph/src/fixture.rs", standalone);
}

// ---------------------------------------------------------------- the scanner

#[test]
fn scanner_blanks_strings_and_comments() {
    // Banned tokens inside string literals and comments must not fire —
    // this very file depends on that property.
    let quoted = "fn f() -> &'static str {\n    \"use thread_rng and HashMap.values() and Instant::now\"\n}\n";
    assert_clean("crates/graph/src/fixture.rs", quoted);

    let commented = "// thread_rng, HashMap, Instant::now — prose, not code.\nfn f() {}\n";
    assert_clean("crates/graph/src/fixture.rs", commented);

    let raw = "fn f() -> &'static str {\n    r#\"Instant::now() in a raw string\"#\n}\n";
    assert_clean("crates/serve/src/fixture.rs", raw);
}

// ------------------------------------------------------------ the whole tree

#[test]
fn whole_tree_is_tidy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = deco_tidy::check_workspace(root).expect("workspace scan");
    assert!(report.files_scanned > 100, "suspiciously small scan: {}", report.files_scanned);
    let rendered: Vec<String> = report.violations.iter().map(|d| d.to_string()).collect();
    assert!(report.is_clean(), "tidy violations in the tree:\n{}", rendered.join("\n"));
}

#[test]
fn corrupted_tree_fails_the_scan() {
    // A minimal fake workspace with a seeded determinism violation: the
    // walker must find it end to end (this is the in-process twin of the
    // CI corrupt self-test, which seeds a real tree copy and runs the
    // binary).
    let dir = std::env::temp_dir().join(format!("deco-tidy-corrupt-{}", std::process::id()));
    let src = dir.join("crates/graph/src");
    std::fs::create_dir_all(&src).expect("mk fixture tree");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/graph\"]\n")
        .expect("write manifest");
    std::fs::write(dir.join("README.md"), "| `crates/graph` | graphs |\n").expect("write readme");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f() { let m = std::collections::HashMap::<u32, u32>::new(); drop(m); }\n",
    )
    .expect("write seeded violation");

    let report = deco_tidy::check_workspace(&dir).expect("scan fixture tree");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!report.is_clean(), "seeded HashMap violation went undetected");
    assert!(report.violations.iter().any(|d| d.lint == "hash-iter"), "{:?}", report.violations);
    // And the JSON report carries it for machine consumers.
    assert!(report.to_json().contains("\"hash-iter\""));
}
