//! Shared helpers for the deco benchmark harnesses.
//!
//! Every bench binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index) by running the actual distributed
//! algorithms on the simulator and printing measured rounds / colors /
//! message sizes. Absolute constants differ from the paper's asymptotic
//! statements; the *shape* (growth in Δ at fixed n, growth in n at fixed Δ,
//! crossovers) is what each harness checks and displays.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub mod gate;
pub mod json;

/// Benchmark scale, controlled by the `DECO_BENCH_SCALE` environment
/// variable: `quick` (default) finishes in a couple of minutes; `full`
/// extends the sweeps for the EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweeps for CI / quick runs.
    Quick,
    /// The full sweeps used to produce EXPERIMENTS.md.
    Full,
}

/// Reads the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("DECO_BENCH_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// A fixed-width text table printer.
#[derive(Debug)]
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Starts a table and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        assert_eq!(headers.len(), widths.len());
        let t = Table { widths: widths.to_vec() };
        t.row(headers);
        t.rule();
        t
    }

    /// Prints a horizontal rule.
    pub fn rule(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        println!("{}", "-".repeat(total));
    }

    /// Prints one row (first column left-aligned, the rest right-aligned).
    pub fn row<S: Display>(&self, cells: &[S]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let text = cell.to_string();
            if i == 0 {
                line.push_str(&format!("{:<width$}", text, width = self.widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", text, width = self.widths[i]));
            }
        }
        println!("{line}");
    }
}

/// Formats a ratio with two decimals.
pub fn ratio(a: usize, b: usize) -> String {
    format!("{:.2}", a as f64 / b.max(1) as f64)
}

/// Prints the standard bench banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
    println!("(scale: {:?}; set DECO_BENCH_SCALE=full for the EXPERIMENTS.md sweeps)\n", scale());
}

/// One wall-clock measurement: median over `samples` timed executions,
/// after one untimed warm-up execution.
///
/// The build environment is offline, so this replaces criterion: no
/// statistics beyond the median, but the numbers are stable enough for the
/// ≥2× speedup checks the perf PRs make (each sample runs the full
/// deterministic simulation, so variance comes only from the machine).
pub fn time_median<R>(samples: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(samples >= 1, "need at least one sample");
    let mut result = f(); // warm-up: page in buffers, warm caches
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        result = f();
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    (result, times[times.len() / 2])
}

/// Formats a duration as fractional milliseconds.
pub fn millis(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Interleaved comparison timing: runs one untimed warm-up of every variant,
/// then `samples` passes timing each variant once per pass, and returns the
/// per-variant medians. Two fairness devices, both of which matter on
/// shared containers where the noise exceeds the effects being measured:
/// interleaving cancels machine-load drift that sequential per-variant
/// blocks soak up unevenly, and each pass starts at a different variant so
/// no variant always inherits the same predecessor's allocator and cache
/// state.
pub fn time_interleaved<R>(
    samples: usize,
    variants: &mut [&mut dyn FnMut() -> R],
) -> Vec<Duration> {
    assert!(samples >= 1, "need at least one sample");
    for f in variants.iter_mut() {
        let _ = f();
    }
    let k = variants.len();
    let mut times: Vec<Vec<Duration>> = variants.iter().map(|_| Vec::new()).collect();
    for pass in 0..samples {
        for i in 0..k {
            let v = (pass + i) % k;
            let t0 = Instant::now();
            let _ = variants[v]();
            times[v].push(t0.elapsed());
        }
    }
    times
        .into_iter()
        .map(|mut ts| {
            ts.sort_unstable();
            ts[ts.len() / 2]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_runs_and_orders() {
        let mut calls = 0usize;
        let (r, _d) = time_median(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4); // warm-up + 3 samples
        assert_eq!(r, 4);
        // The median of timed real work is bounded by a sleep we control.
        let (_, slept) = time_median(1, || std::thread::sleep(Duration::from_millis(2)));
        assert!(slept >= Duration::from_millis(2));
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(3, 2), "1.50");
        assert_eq!(ratio(1, 0), "1.00");
    }

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set the variable.
        if std::env::var("DECO_BENCH_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }
}
