use crate::{EdgeIdx, GraphError, Vertex};

/// An immutable simple undirected graph in CSR form.
///
/// Vertices are the indices `0..n`. Every vertex additionally carries a
/// distinct *identifier* ([`Graph::ident`]), the `Id` of the paper's model;
/// by default `ident(v) = v + 1`, i.e. identifiers are `{1, ..., n}` exactly
/// as Section 1.1 assumes, but generators may permute them.
///
/// Edges are normalized to `(u, v)` with `u < v`, sorted lexicographically,
/// and addressed by their index in [`Graph::edges`]. The adjacency of every
/// vertex stores `(neighbor, edge index)` pairs sorted by neighbor, so both
/// vertex- and edge-coloring algorithms can navigate in `O(log deg)`.
///
/// # Example
///
/// ```
/// use deco_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 3));
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbor, edge index)`, sorted by neighbor
    /// within each vertex's slice.
    adj: Vec<(u32, u32)>,
    /// Normalized edge list `(u, v)` with `u < v`, lexicographically sorted.
    edges: Vec<(u32, u32)>,
    /// For each directed-edge slot `s` (an index into `adj`), the slot of the
    /// reverse directed edge: if slot `s` belongs to `u` and points at `v`,
    /// `mirror[s]` is the slot in `v`'s adjacency that points back at `u`.
    mirror: Vec<u32>,
    /// Distinct identifier per vertex.
    idents: Vec<u64>,
    max_degree: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range, an edge is a
    /// self-loop, or an edge appears twice.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        b.build()
    }

    /// Creates an edgeless graph with `n` vertices.
    pub fn empty(n: usize) -> Graph {
        // INVARIANT: an empty edge list trivially satisfies validation.
        Graph::from_edges(n, &[]).expect("empty edge list is always valid")
    }

    /// Starts building a graph with `n` vertices.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder::new(n)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The distinct identifier of `v` (the paper's `Id(v)`).
    pub fn ident(&self, v: Vertex) -> u64 {
        self.idents[v]
    }

    /// All identifiers, indexed by vertex.
    pub fn idents(&self) -> &[u64] {
        &self.idents
    }

    /// Returns a copy of this graph with the given identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `idents.len() != n` or identifiers repeat.
    pub fn with_idents(mut self, idents: Vec<u64>) -> Result<Graph, GraphError> {
        if idents.len() != self.n {
            return Err(GraphError::BadIdentCount { got: idents.len(), expected: self.n });
        }
        let mut sorted = idents.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateIdent { ident: w[0] });
            }
        }
        self.idents = idents;
        Ok(self)
    }

    /// Iterates over the neighbors of `v` in increasing vertex order.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.adj[self.offsets[v]..self.offsets[v + 1]].iter().map(|&(u, _)| u as Vertex)
    }

    /// Iterates over `(neighbor, edge index)` pairs incident to `v`.
    pub fn incident(&self, v: Vertex) -> impl Iterator<Item = (Vertex, EdgeIdx)> + '_ {
        self.adj[self.offsets[v]..self.offsets[v + 1]]
            .iter()
            .map(|&(u, e)| (u as Vertex, e as EdgeIdx))
    }

    /// The normalized edge list: `(u, v)` with `u < v`, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.edges.iter().map(|&(u, v)| (u as Vertex, v as Vertex))
    }

    /// Endpoints of edge `e` as `(u, v)` with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeIdx) -> (Vertex, Vertex) {
        let (u, v) = self.edges[e];
        (u as Vertex, v as Vertex)
    }

    /// For an edge `e` incident to `v`, the endpoint that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeIdx, v: Vertex) -> Vertex {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            // INVARIANT: callers must pass an endpoint of e; anything else is a caller bug worth aborting on.
            panic!("vertex {v} is not an endpoint of edge {e}")
        }
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The edge index of `(u, v)`, if that edge exists.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeIdx> {
        if u >= self.n || v >= self.n || u == v {
            return None;
        }
        let slice = &self.adj[self.offsets[u]..self.offsets[u + 1]];
        slice.binary_search_by_key(&(v as u32), |&(w, _)| w).ok().map(|i| slice[i].1 as EdgeIdx)
    }

    /// The subgraph induced by `keep`, together with the map from new vertex
    /// indices to original ones.
    ///
    /// Identifiers are inherited from the original graph, so symmetry
    /// breaking in the induced subgraph is consistent with the host graph
    /// (Lemma 3.6 is about exactly such subgraphs).
    ///
    /// Vertices listed more than once are kept once; order of `keep` does not
    /// matter (output vertices are sorted by original index).
    pub fn induced(&self, keep: &[Vertex]) -> (Graph, Vec<Vertex>) {
        let mut verts: Vec<Vertex> = keep.to_vec();
        verts.sort_unstable();
        verts.dedup();
        let mut back = vec![usize::MAX; self.n];
        for (new, &old) in verts.iter().enumerate() {
            back[old] = new;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            if back[u] != usize::MAX && back[v] != usize::MAX {
                edges.push((back[u], back[v]));
            }
        }
        let g = Graph::from_edges(verts.len(), &edges)
            // INVARIANT: the subgraph inherits validated endpoints from a valid host graph.
            .expect("induced subgraph of a valid graph is valid");
        let idents = verts.iter().map(|&old| self.idents[old]).collect();
        // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
        let g = g.with_idents(idents).expect("inherited identifiers stay distinct");
        (g, verts)
    }

    /// The subgraph consisting of exactly the edges in `keep_edges`, on the
    /// vertex set of their endpoints.
    ///
    /// Returns `(subgraph, vertex_map, edge_map)`: `vertex_map[new_v]` is
    /// the original index of subgraph vertex `new_v` and `edge_map[new_e]`
    /// the original index of subgraph edge `new_e`. Identifiers are
    /// inherited, so symmetry breaking inside the subgraph is consistent
    /// with the host (the same Lemma 3.6 argument as [`Graph::induced`]).
    /// This is the repair-region extraction of the streaming recolorer: the
    /// kept edges form the sub-network the pipeline re-runs on.
    ///
    /// Duplicate edge indices are kept once; order of `keep_edges` does not
    /// matter (output edges are sorted like any edge list).
    ///
    /// # Panics
    ///
    /// Panics if an edge index is `>= m`.
    pub fn edge_induced(&self, keep_edges: &[EdgeIdx]) -> (Graph, Vec<Vertex>, Vec<EdgeIdx>) {
        let mut eids: Vec<EdgeIdx> = keep_edges.to_vec();
        eids.sort_unstable();
        eids.dedup();
        let mut verts: Vec<Vertex> = Vec::with_capacity(2 * eids.len());
        for &e in &eids {
            let (u, v) = self.endpoints(e);
            verts.push(u);
            verts.push(v);
        }
        verts.sort_unstable();
        verts.dedup();
        let mut back = vec![usize::MAX; self.n];
        for (new, &old) in verts.iter().enumerate() {
            back[old] = new;
        }
        // The vertex remap is monotone, so host-lex edge order is preserved
        // and subgraph edge `i` is exactly `eids[i]`.
        let edges: Vec<(usize, usize)> = eids
            .iter()
            .map(|&e| {
                let (u, v) = self.endpoints(e);
                (back[u], back[v])
            })
            .collect();
        let g = Graph::from_edges(verts.len(), &edges)
            // INVARIANT: the subgraph inherits validated endpoints from a valid host graph.
            .expect("edge-induced subgraph of a valid graph is valid");
        let idents = verts.iter().map(|&old| self.idents[old]).collect();
        // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
        let g = g.with_idents(idents).expect("inherited identifiers stay distinct");
        (g, verts, eids)
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let mut seen = vec![false; self.n];
        let mut count = 0;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            count += 1;
            seen[s] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for u in self.neighbors(v) {
                    if !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
        count
    }

    /// Number of directed-edge *slots*: `2·m`, one per (vertex, incident
    /// edge) pair. Slots index the flattened CSR adjacency; they are the
    /// address space of the simulator's zero-allocation delivery arena.
    ///
    /// Slot layout: vertex `v` owns the contiguous slot range
    /// [`Graph::slots_of`]`(v)`, sorted by neighbor; slot `s` in that range
    /// represents the directed edge `v → `[`Graph::slot_neighbor`]`(s)`.
    pub fn slot_count(&self) -> usize {
        self.adj.len()
    }

    /// CSR slot offsets, length `n + 1`: vertex `v` owns slots
    /// `slot_offsets()[v]..slot_offsets()[v + 1]`.
    pub fn slot_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The contiguous slot range owned by vertex `v` (one slot per incident
    /// edge, sorted by neighbor).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn slots_of(&self, v: Vertex) -> std::ops::Range<usize> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// The neighbor a slot points at: for slot `s` owned by `v`, the head of
    /// the directed edge `v → u`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= slot_count()`.
    pub fn slot_neighbor(&self, s: usize) -> Vertex {
        self.adj[s].0 as Vertex
    }

    /// The undirected edge index a slot belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `s >= slot_count()`.
    pub fn slot_edge(&self, s: usize) -> EdgeIdx {
        self.adj[s].1 as EdgeIdx
    }

    /// The mirror of slot `s`: the slot of the reverse directed edge.
    ///
    /// If slot `s` is the directed edge `u → v`, then `mirror_slot(s)` is
    /// the slot of `v → u`, and `mirror_slot(mirror_slot(s)) == s`. This is
    /// the key primitive of slot-based message delivery: a message posted
    /// by `u` along its slot `s` lands in the inbox slot `mirror_slot(s)`
    /// owned by the receiver `v`, with no per-message search.
    ///
    /// # Panics
    ///
    /// Panics if `s >= slot_count()`.
    pub fn mirror_slot(&self, s: usize) -> usize {
        self.mirror[s] as usize
    }

    /// The full mirror table, aligned with slot indices.
    pub fn mirror_slots(&self) -> &[u32] {
        &self.mirror
    }

    /// Applies an edge/vertex delta to this graph in linear passes, without
    /// the hash-and-sort machinery of [`Graph::from_edges`].
    ///
    /// `inserted` and `deleted` are normalized `(u, v)` pairs with `u < v`,
    /// strictly sorted; inserted edges must be absent, deleted edges must be
    /// present, and no pair may appear in both lists. `added_vertices` new
    /// vertices are appended after the existing ones, and `idents` is the
    /// complete post-patch identifier vector.
    ///
    /// The result is **bit-identical** to
    /// `Graph::from_edges(n + added_vertices, &merged_edges)?.with_idents(idents)?`
    /// — same edge indices (lexicographic rank), same CSR offsets, same slot
    /// and mirror-slot numbering — but built by splicing only the adjacency
    /// of touched vertices and shifting the rest, so the cost is linear
    /// scans and copies (`O(n + m + k log k)` with memcpy-class constants)
    /// instead of hashing plus `O(m log m)` sorting. The delta-CSR commit of
    /// [`crate::MutableGraph`] is built on this.
    ///
    /// Also returns the *edge-origin map*: for each new edge index, the edge
    /// index it had in `self`, or [`Graph::NO_EDGE_ORIGIN`] for inserted
    /// edges. Streaming consumers use it to carry per-edge state (colors)
    /// across the patch by stable slot instead of matching endpoint pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] under exactly the conditions the rebuild
    /// would: out-of-range or self-loop pairs, inserting a present edge or
    /// deleting an absent one (both reported as the offending pair), or
    /// identifier problems. Identifier distinctness is revalidated only
    /// when `idents` differs from the current identifiers.
    pub fn patched(
        &self,
        inserted: &[(Vertex, Vertex)],
        deleted: &[(Vertex, Vertex)],
        added_vertices: usize,
        idents: Vec<u64>,
    ) -> Result<(Graph, Vec<u32>), GraphError> {
        let n_old = self.n;
        let n_new = n_old + added_vertices;
        if idents.len() != n_new {
            return Err(GraphError::BadIdentCount { got: idents.len(), expected: n_new });
        }
        self.check_patch_list(inserted, n_new, false)?;
        self.check_patch_list(deleted, n_old, true)?;
        if let Some(&(u, v)) = sorted_intersect(inserted, deleted) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        // Identifiers only need revalidation where they changed; unchanged
        // ones are distinct by this graph's invariant.
        if idents[..n_old] != self.idents[..] || added_vertices > 0 {
            let mut sorted = idents.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(GraphError::DuplicateIdent { ident: w[0] });
                }
            }
        }

        let m_old = self.edges.len();
        let m_new = m_old + inserted.len() - deleted.len();
        assert!(2 * m_new <= u32::MAX as usize, "graph too large for u32 slot indices");

        // 1. Splice the sorted edge list, recording both directions of the
        // index shift — `origin[new_e]` (returned) and `new_of_old[old_e]`
        // (drives the adjacency patch below) — plus each inserted pair's
        // new index for the directed patch lists. The splice walks *delta
        // events* (k of them), not edges: the runs between events are bulk
        // slice copies and sequential index fills.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m_new);
        let mut origin: Vec<u32> = Vec::with_capacity(m_new);
        let mut new_of_old: Vec<u32> = vec![Graph::NO_EDGE_ORIGIN; m_old];
        let mut ins_idx: Vec<u32> = vec![0; inserted.len()];
        {
            // Old-edge position of each event, via a moving lower bound
            // (both lists are sorted): deletions sit *at* their position,
            // insertions go *before* theirs.
            let mut del_pos: Vec<usize> = Vec::with_capacity(deleted.len());
            let mut lo = 0usize;
            for &(u, v) in deleted {
                let key = (u as u32, v as u32);
                lo += self.edges[lo..].partition_point(|&p| p < key);
                debug_assert_eq!(self.edges[lo], key);
                del_pos.push(lo);
            }
            let mut ins_pos: Vec<usize> = Vec::with_capacity(inserted.len());
            let mut lo = 0usize;
            for &(u, v) in inserted {
                let key = (u as u32, v as u32);
                lo += self.edges[lo..].partition_point(|&p| p < key);
                ins_pos.push(lo);
            }
            let copy_run = |edges: &mut Vec<(u32, u32)>,
                            origin: &mut Vec<u32>,
                            new_of_old: &mut [u32],
                            cursor: usize,
                            end: usize| {
                let out = edges.len();
                edges.extend_from_slice(&self.edges[cursor..end]);
                origin.extend((cursor..end).map(|e| e as u32));
                for (k, slot) in new_of_old[cursor..end].iter_mut().enumerate() {
                    *slot = (out + k) as u32;
                }
            };
            let mut cursor = 0usize;
            let (mut ii, mut di) = (0usize, 0usize);
            loop {
                let next_ins = ins_pos.get(ii).copied();
                let next_del = del_pos.get(di).copied();
                // At equal positions the insertion precedes the deletion
                // (its pair sorts before the old edge at that position).
                match (next_ins, next_del) {
                    (Some(ip), nd) if nd.map_or(true, |dp| ip <= dp) => {
                        copy_run(&mut edges, &mut origin, &mut new_of_old, cursor, ip);
                        cursor = ip;
                        ins_idx[ii] = edges.len() as u32;
                        origin.push(Graph::NO_EDGE_ORIGIN);
                        edges.push((inserted[ii].0 as u32, inserted[ii].1 as u32));
                        ii += 1;
                    }
                    (_, Some(dp)) => {
                        copy_run(&mut edges, &mut origin, &mut new_of_old, cursor, dp);
                        cursor = dp + 1; // the deleted edge keeps NO_EDGE_ORIGIN
                        di += 1;
                    }
                    (None, None) => {
                        copy_run(&mut edges, &mut origin, &mut new_of_old, cursor, m_old);
                        break;
                    }
                    // INVARIANT: the guarded first arm captured this combination, so it cannot recur here.
                    (Some(_), None) => unreachable!("covered by the guarded first arm"),
                }
            }
            debug_assert_eq!(edges.len(), m_new);
        }

        // 2. Directed patch lists, sorted by (owner, neighbor) so every
        // touched vertex's additions and removals form one contiguous
        // window consumed by the cursors of the splice pass.
        let mut add_adj: Vec<(u32, u32, u32)> = Vec::with_capacity(2 * inserted.len());
        for (i, &(u, v)) in inserted.iter().enumerate() {
            add_adj.push((u as u32, v as u32, ins_idx[i]));
            add_adj.push((v as u32, u as u32, ins_idx[i]));
        }
        add_adj.sort_unstable();
        let mut del_adj: Vec<(u32, u32)> = Vec::with_capacity(2 * deleted.len());
        for &(u, v) in deleted {
            del_adj.push((u as u32, v as u32));
            del_adj.push((v as u32, u as u32));
        }
        del_adj.sort_unstable();

        // 3. New CSR offsets and per-vertex slot shifts in one cheap
        // sequential pass. An untouched vertex keeps its old adjacency
        // order, so all its slots move by the same amount — the cumulative
        // degree delta of the vertices before it. Touched (spliced)
        // vertices get the `TOUCHED` sentinel instead of a shift, folding
        // both lookups of the hot pass into one load.
        const TOUCHED: i32 = i32::MIN;
        assert!(
            inserted.len() + deleted.len() < (i32::MAX / 4) as usize,
            "patch too large for i32 slot shifts (use a rebuild)"
        );
        let mut offsets = vec![0usize; n_new + 1];
        let mut shift: Vec<i32> = vec![0; n_new];
        let mut max_degree = 0usize;
        {
            let (mut ai, mut di) = (0usize, 0usize);
            let mut cum = 0i32;
            for v in 0..n_new {
                let old_deg = if v < n_old { self.offsets[v + 1] - self.offsets[v] } else { 0 };
                let (mut adds, mut dels) = (0usize, 0usize);
                while ai < add_adj.len() && add_adj[ai].0 as usize == v {
                    ai += 1;
                    adds += 1;
                }
                while di < del_adj.len() && del_adj[di].0 as usize == v {
                    di += 1;
                    dels += 1;
                }
                shift[v] = if adds + dels > 0 { TOUCHED } else { cum };
                let deg = old_deg + adds - dels;
                offsets[v + 1] = offsets[v] + deg;
                max_degree = max_degree.max(deg);
                cum += adds as i32 - dels as i32;
            }
        }

        // 4. Adjacency and mirror table in one pass. Untouched vertices
        // copy their slice: edge indices shift (the `(v, nbr > v)` suffix
        // is consecutive in the lex-sorted edge list, so one lookup seeds
        // the whole run), and mirror slots of untouched partners are the
        // old values moved by the partner's shift — no searching. Touched
        // vertices merge-splice in neighbor order (what from_edges'
        // per-vertex sort would also produce, neighbors being unique);
        // edges with a touched endpoint link by the builder's two-visit
        // scheme from both sides.
        let mut adj: Vec<(u32, u32)> = Vec::with_capacity(2 * m_new);
        let mut mirror = vec![0u32; 2 * m_new];
        let mut first_slot = vec![u32::MAX; m_new];
        let (mut ai, mut di) = (0usize, 0usize);
        for v in 0..n_new {
            if shift[v] != TOUCHED {
                if v >= n_old {
                    continue; // appended vertex with no incident insertions
                }
                let old_off = self.offsets[v];
                let slice = &self.adj[old_off..self.offsets[v + 1]];
                let split = slice.partition_point(|&(nbr, _)| (nbr as usize) < v);
                let mut suffix_base = 0u32;
                for (i, &(nbr, e)) in slice.iter().enumerate() {
                    let e_new = if i > split {
                        suffix_base + (i - split) as u32
                    } else {
                        let m = new_of_old[e as usize];
                        if i == split {
                            suffix_base = m;
                        }
                        m
                    };
                    debug_assert_eq!(e_new, new_of_old[e as usize]);
                    adj.push((nbr, e_new));
                    let sh = shift[nbr as usize];
                    if sh == TOUCHED {
                        two_visit_link(&mut mirror, &mut first_slot, e_new, adj.len() - 1);
                    } else {
                        mirror[adj.len() - 1] =
                            (self.mirror[old_off + i] as i64 + sh as i64) as u32;
                    }
                }
            } else {
                let old_slice: &[(u32, u32)] =
                    if v < n_old { &self.adj[self.offsets[v]..self.offsets[v + 1]] } else { &[] };
                let mut oi = 0usize;
                loop {
                    let next_add = add_adj.get(ai).filter(|&&(o, _, _)| o as usize == v);
                    match (old_slice.get(oi), next_add) {
                        (Some(&(nbr, e)), add) if add.map_or(true, |&(_, anbr, _)| nbr < anbr) => {
                            oi += 1;
                            if di < del_adj.len() && del_adj[di] == (v as u32, nbr) {
                                di += 1;
                            } else {
                                let e_new = new_of_old[e as usize];
                                adj.push((nbr, e_new));
                                two_visit_link(&mut mirror, &mut first_slot, e_new, adj.len() - 1);
                            }
                        }
                        (_, Some(&(_, anbr, ae))) => {
                            ai += 1;
                            adj.push((anbr, ae));
                            two_visit_link(&mut mirror, &mut first_slot, ae, adj.len() - 1);
                        }
                        (None, None) => break,
                        // INVARIANT: the merge loop's first arm consumes every remaining old entry, so no other combination reaches this arm.
                        _ => unreachable!("first arm covers remaining old entries"),
                    }
                }
            }
            debug_assert_eq!(adj.len(), offsets[v + 1]);
        }
        debug_assert_eq!(adj.len(), 2 * m_new);

        let graph = Graph { n: n_new, offsets, adj, edges, mirror, idents, max_degree };
        Ok((graph, origin))
    }

    /// Sentinel in the edge-origin map of [`Graph::patched`] (and
    /// [`crate::CommitDelta::edge_origin`]): the edge is newly inserted and
    /// has no predecessor.
    pub const NO_EDGE_ORIGIN: u32 = u32::MAX;

    /// Bytes a full CSR rewrite of an `n`-vertex, `m`-edge snapshot writes
    /// into the committed representation: offsets (`8(n+1)`), adjacency
    /// (`2m` slots × 8), mirror table (`2m` × 4), edge list (`m` × 8),
    /// identifiers (`n` × 8) and the edge-origin carry map (`m` × 4).
    ///
    /// This is the deterministic `commit_bytes` accounting shared by every
    /// full-rewrite commit path — [`Graph::patched`] and the `from_edges`
    /// rebuild report the *same* value for the same batch, keeping the
    /// differential oracles bit-identical — and the currency the segmented
    /// layout's per-segment write counts are compared against.
    pub fn full_rewrite_bytes(n: usize, m: usize) -> usize {
        8 * (n + 1) + 16 * m + 8 * m + 8 * m + 8 * n + 4 * m
    }

    /// Validates one patch list: strictly sorted normalized pairs in range,
    /// no self-loops, and membership matching `must_exist`.
    fn check_patch_list(
        &self,
        list: &[(Vertex, Vertex)],
        n: usize,
        must_exist: bool,
    ) -> Result<(), GraphError> {
        for (i, &(u, v)) in list.iter().enumerate() {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            assert!(u < v, "patch pairs must be normalized (u < v)");
            if i > 0 {
                assert!(list[i - 1] < (u, v), "patch lists must be strictly sorted");
            }
            match (self.has_edge(u, v), must_exist) {
                (true, false) => return Err(GraphError::DuplicateEdge { u, v }),
                (false, true) => return Err(GraphError::MissingEdge { u, v }),
                _ => {}
            }
        }
        Ok(())
    }

    /// Breadth-first distances from `source` (`usize::MAX` for unreachable).
    pub fn bfs_distances(&self, source: Vertex) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }
}

/// The builder's two-visit mirror linking, one slot at a time: the first
/// slot of an edge parks in `first_slot`, the second visit links the pair.
#[inline]
fn two_visit_link(mirror: &mut [u32], first_slot: &mut [u32], e: u32, s: usize) {
    let other = &mut first_slot[e as usize];
    if *other == u32::MAX {
        *other = s as u32;
    } else {
        mirror[s] = *other;
        mirror[*other as usize] = s as u32;
    }
}

/// First element common to two strictly sorted pair lists, if any.
fn sorted_intersect<'a>(
    a: &'a [(Vertex, Vertex)],
    b: &[(Vertex, Vertex)],
) -> Option<&'a (Vertex, Vertex)> {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(&a[i]),
        }
    }
    None
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use deco_graph::Graph;
///
/// let mut b = Graph::builder(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or the edge is a
    /// self-loop. Duplicates are detected at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32));
        Ok(self)
    }

    /// Adds the edge if not already present; returns whether it was added.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::add_edge`] for range and self-loop violations.
    pub fn add_edge_dedup(&mut self, u: Vertex, v: Vertex) -> Result<bool, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u as u32, v as u32) } else { (v as u32, u as u32) };
        if self.edges.contains(&(a, b)) {
            return Ok(false);
        }
        self.edges.push((a, b));
        Ok(true)
    }

    /// Number of edges added so far (including any duplicates).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateEdge`] if the same undirected edge was
    /// added twice.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.n;
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        for w in edges.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge { u: w[0].0 as usize, v: w[0].1 as usize });
            }
        }
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0u32, 0u32); 2 * edges.len()];
        for (e, &(u, v)) in edges.iter().enumerate() {
            adj[cursor[u as usize]] = (v, e as u32);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, e as u32);
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        // Mirror table: the two slots of edge `e` point at each other. One
        // pass records the first slot seen per edge, the second visit links
        // the pair — O(m), no searching.
        assert!(adj.len() <= u32::MAX as usize, "graph too large for u32 slot indices");
        let mut mirror = vec![0u32; adj.len()];
        let mut first_slot = vec![u32::MAX; edges.len()];
        for (s, &(_, e)) in adj.iter().enumerate() {
            let other = &mut first_slot[e as usize];
            if *other == u32::MAX {
                *other = s as u32;
            } else {
                mirror[s] = *other;
                mirror[*other as usize] = s as u32;
            }
        }
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        Ok(Graph { n, offsets, adj, edges, mirror, idents: (1..=n as u64).collect(), max_degree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_square() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(g.ident(0), 1);
        assert_eq!(g.ident(3), 4);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 2, n: 2 }
        );
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
    }

    #[test]
    fn edge_lookup() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (3, 4)]).unwrap();
        assert_eq!(g.edge_between(2, 0), Some(1));
        assert_eq!(g.edge_between(0, 3), None);
        assert_eq!(g.endpoints(2), (3, 4));
        assert_eq!(g.other_endpoint(2, 4), 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_for_non_incident() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        g.other_endpoint(0, 2);
    }

    #[test]
    fn induced_subgraph_keeps_idents() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (h, map) = g.induced(&[4, 0, 1]);
        assert_eq!(h.n(), 3);
        assert_eq!(map, vec![0, 1, 4]);
        assert_eq!(h.m(), 2); // edges (0,1) and (4,0)
        assert_eq!(h.ident(2), 5); // vertex 4 kept ident 5
    }

    #[test]
    fn edge_induced_keeps_exact_edges_and_idents() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        // Sorted edge list: 0=(0,1) 1=(0,5) 2=(1,2) 3=(2,3) 4=(3,4) 5=(4,5).
        let (h, vmap, emap) = g.edge_induced(&[4, 0, 4, 2]);
        assert_eq!(emap, vec![0, 2, 4]);
        assert_eq!(vmap, vec![0, 1, 2, 3, 4]);
        assert_eq!(h.m(), 3);
        // Subgraph edge i corresponds to host edge emap[i].
        for (i, &e) in emap.iter().enumerate() {
            let (u, v) = h.endpoints(i);
            assert_eq!((vmap[u], vmap[v]), g.endpoints(e));
        }
        // Sparse selection drops untouched vertices.
        let (h, vmap, emap) = g.edge_induced(&[1]);
        assert_eq!((h.n(), h.m()), (2, 1));
        assert_eq!(vmap, vec![0, 5]);
        assert_eq!(emap, vec![1]);
        assert_eq!(h.ident(1), g.ident(5));
        let (h, vmap, emap) = g.edge_induced(&[]);
        assert_eq!((h.n(), h.m()), (0, 0));
        assert!(vmap.is_empty() && emap.is_empty());
    }

    #[test]
    fn with_idents_validates() {
        let g = Graph::empty(3);
        assert!(g.clone().with_idents(vec![7, 8]).is_err());
        assert!(g.clone().with_idents(vec![7, 8, 7]).is_err());
        let g = g.with_idents(vec![30, 10, 20]).unwrap();
        assert_eq!(g.ident(0), 30);
    }

    #[test]
    fn components_and_bfs() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(g.component_count(), 3);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], 2);
        assert_eq!(d[5], usize::MAX);
    }

    #[test]
    fn mirror_slots_are_involutive_and_consistent() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.slot_count(), 2 * g.m());
        for v in 0..g.n() {
            for s in g.slots_of(v) {
                let u = g.slot_neighbor(s);
                let back = g.mirror_slot(s);
                // The mirror lives in u's range and points back at v.
                assert!(g.slots_of(u).contains(&back), "slot {s}: mirror {back} not owned by {u}");
                assert_eq!(g.slot_neighbor(back), v);
                assert_eq!(g.mirror_slot(back), s, "mirror is an involution");
                assert_eq!(g.slot_edge(back), g.slot_edge(s), "same undirected edge");
            }
        }
    }

    #[test]
    fn slots_sorted_by_neighbor() {
        let g = Graph::from_edges(6, &[(3, 1), (3, 5), (3, 0), (3, 2)]).unwrap();
        let nbrs: Vec<usize> = g.slots_of(3).map(|s| g.slot_neighbor(s)).collect();
        assert_eq!(nbrs, vec![0, 1, 2, 5]);
        assert_eq!(g.slot_offsets().len(), g.n() + 1);
        assert_eq!(g.slots_of(3).len(), g.degree(3));
    }

    /// Oracle for the delta-CSR: `patched` must equal the full rebuild.
    fn assert_patch_matches_rebuild(
        g: &Graph,
        ins: &[(Vertex, Vertex)],
        del: &[(Vertex, Vertex)],
        added: usize,
        idents: Vec<u64>,
    ) -> Graph {
        let (patched, origin) = g.patched(ins, del, added, idents.clone()).unwrap();
        let mut merged: Vec<(Vertex, Vertex)> = g
            .edges()
            .filter(|pair| del.binary_search(pair).is_err())
            .chain(ins.iter().copied())
            .collect();
        merged.sort_unstable();
        let rebuilt =
            Graph::from_edges(g.n() + added, &merged).unwrap().with_idents(idents).unwrap();
        assert_eq!(patched, rebuilt, "patched graph must be bit-identical to the rebuild");
        // The origin map is exactly the endpoint-pair matching.
        assert_eq!(origin.len(), patched.m());
        for (e, &src) in origin.iter().enumerate() {
            let pair = patched.endpoints(e);
            match g.edge_between(pair.0, pair.1) {
                Some(old_e) if del.binary_search(&pair).is_err() => {
                    assert_eq!(src as usize, old_e, "carried edge {pair:?}");
                }
                _ => assert_eq!(src, Graph::NO_EDGE_ORIGIN, "inserted edge {pair:?}"),
            }
        }
        patched
    }

    #[test]
    fn patched_matches_rebuild_small() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 5), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        // Pure insertions, pure deletions, mixed, vertex growth.
        assert_patch_matches_rebuild(&g, &[(0, 2), (1, 4)], &[], 0, (1..=6).collect());
        assert_patch_matches_rebuild(&g, &[], &[(0, 1), (4, 5)], 0, (1..=6).collect());
        assert_patch_matches_rebuild(&g, &[(1, 3)], &[(2, 3)], 0, (1..=6).collect());
        assert_patch_matches_rebuild(&g, &[(2, 6), (6, 7)], &[(0, 5)], 2, (1..=8).collect());
        // Empty delta is the identity.
        let same = assert_patch_matches_rebuild(&g, &[], &[], 0, (1..=6).collect());
        assert_eq!(same, g);
    }

    #[test]
    fn patched_with_custom_idents() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap().with_idents(vec![30, 10, 20]).unwrap();
        assert_patch_matches_rebuild(&g, &[(1, 2)], &[], 1, vec![30, 10, 20, 4]);
        // A changed-ident clash is caught...
        assert_eq!(
            g.patched(&[], &[], 1, vec![30, 10, 20, 10]).unwrap_err(),
            GraphError::DuplicateIdent { ident: 10 }
        );
        // ...and unchanged idents skip revalidation but stay intact.
        let (p, _) = g.patched(&[(0, 2)], &[], 0, vec![30, 10, 20]).unwrap();
        assert_eq!(p.idents(), &[30, 10, 20]);
    }

    #[test]
    fn patched_rejects_bad_deltas() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let id: Vec<u64> = (1..=4).collect();
        assert_eq!(
            g.patched(&[(0, 1)], &[], 0, id.clone()).unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
        assert_eq!(
            g.patched(&[], &[(0, 3)], 0, id.clone()).unwrap_err(),
            GraphError::MissingEdge { u: 0, v: 3 }
        );
        assert_eq!(
            g.patched(&[(0, 4)], &[], 0, id.clone()).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 4, n: 4 }
        );
        // A pair in both lists is ambiguous, not a replace.
        assert_eq!(
            g.patched(&[(0, 1)], &[(0, 1)], 0, id.clone()).unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
        assert_eq!(
            g.patched(&[], &[], 1, id).unwrap_err(),
            GraphError::BadIdentCount { got: 4, expected: 5 }
        );
    }

    #[test]
    fn patched_preserves_mirror_invariants() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
        let (p, _) = g.patched(&[(0, 4), (1, 3)], &[(1, 2)], 0, (1..=5).collect()).unwrap();
        for v in 0..p.n() {
            for s in p.slots_of(v) {
                let u = p.slot_neighbor(s);
                let back = p.mirror_slot(s);
                assert!(p.slots_of(u).contains(&back));
                assert_eq!(p.slot_neighbor(back), v);
                assert_eq!(p.mirror_slot(back), s);
                assert_eq!(p.slot_edge(back), p.slot_edge(s));
            }
        }
    }

    #[test]
    fn dedup_builder() {
        let mut b = Graph::builder(3);
        assert!(b.add_edge_dedup(0, 1).unwrap());
        assert!(!b.add_edge_dedup(1, 0).unwrap());
        assert_eq!(b.build().unwrap().m(), 1);
    }
}
