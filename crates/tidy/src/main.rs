//! `deco-tidy` CLI: `deco-tidy check [--json] [--root <path>]`.
//!
//! Exit status is the whole interface contract: 0 when the tree is clean,
//! 1 when any lint fired (report-only by design — there is no `--fix`;
//! the fix is editing the code or writing a justified inline allow).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut saw_check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "check" => saw_check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("deco-tidy: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: deco-tidy check [--json] [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("deco-tidy: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !saw_check {
        eprintln!("usage: deco-tidy check [--json] [--root <workspace-root>]");
        return ExitCode::from(2);
    }

    // Run from any workspace subdirectory: walk up to the root manifest.
    if root.as_os_str() == "." {
        let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        loop {
            if cur.join("Cargo.toml").is_file() && cur.join("crates").is_dir() {
                root = cur;
                break;
            }
            if !cur.pop() {
                break;
            }
        }
    }

    let report = match deco_tidy::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deco-tidy: io error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.violations {
            println!("{d}");
        }
        println!(
            "deco-tidy: {} file(s) scanned, {} violation(s)",
            report.files_scanned,
            report.violations.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
