//! Theorem 5.3: edge coloring via simulation on the line graph.
//!
//! Build `L(G)` (whose neighborhood independence is at most 2 by Lemma 5.1),
//! run the *vertex* Legal-Color algorithm on it, and interpret the result as
//! an edge coloring of `G`. By Lemma 5.2 the host network can simulate the
//! line-graph run with a factor 2 in rounds and a relay-congestion factor
//! (up to `Δ`) in message size — which is why the paper develops the native
//! edge variants of Theorem 5.5; this module exists to reproduce that
//! comparison.

use crate::legal::legal_color;
use crate::params::{LegalParams, ParamError};
use deco_graph::coloring::EdgeColoring;
use deco_graph::line_graph::line_graph;
use deco_graph::Graph;
use deco_local::line_sim::lemma_5_2_host_stats;
use deco_local::{Network, RunStats};

/// Result of the line-graph simulation route.
#[derive(Debug, Clone)]
pub struct ViaLineGraphRun {
    /// The resulting legal edge coloring of the host graph.
    pub coloring: EdgeColoring,
    /// Palette bound ϑ of the underlying vertex run.
    pub theta: u64,
    /// Statistics of the run as executed natively on `L(G)`.
    pub native: RunStats,
    /// Host-network statistics per Lemma 5.2 (upper bound).
    pub host: RunStats,
}

/// Theorem 5.3: runs vertex Legal-Color on `L(G)` (with `c = 2`) and maps
/// costs back to the host graph.
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for `c = 2`.
///
/// # Example
///
/// ```
/// use deco_core::edge::via_line_graph::edge_color_via_line_graph;
/// use deco_core::params::LegalParams;
/// use deco_graph::generators;
///
/// let g = generators::random_bounded_degree(80, 6, 3);
/// let run = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1))?;
/// assert!(run.coloring.is_proper(&g));
/// assert_eq!(run.host.rounds, 2 * run.native.rounds + 1);
/// # Ok::<(), deco_core::params::ParamError>(())
/// ```
pub fn edge_color_via_line_graph(
    g: &Graph,
    params: LegalParams,
) -> Result<ViaLineGraphRun, ParamError> {
    let l = line_graph(g);
    let net = Network::new(&l);
    let run = legal_color(&net, 2, params)?;
    let native = run.stats;
    let host = lemma_5_2_host_stats(g, native);
    Ok(ViaLineGraphRun {
        coloring: EdgeColoring::new(run.coloring.into_colors()),
        theta: run.theta,
        native,
        host,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn produces_proper_edge_colorings() {
        for g in [
            generators::random_bounded_degree(60, 8, 13),
            generators::complete(8),
            generators::petersen(),
        ] {
            let run = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
            assert!(run.coloring.is_proper(&g));
            assert!(run.coloring.colors().iter().all(|&c| c < run.theta));
        }
    }

    #[test]
    fn host_stats_reflect_lemma_5_2() {
        let g = generators::random_bounded_degree(50, 6, 29);
        let run = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
        assert_eq!(run.host.rounds, 2 * run.native.rounds + 1);
        assert!(run.host.max_message_bits >= run.native.max_message_bits);
    }

    #[test]
    fn empty_graph() {
        let g = deco_graph::Graph::empty(4);
        let run = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
        assert!(run.coloring.is_empty());
    }
}
