//! Profile reports: roll a recorded event stream into a per-phase cost
//! breakdown, rendered as text and as bench-gate-compatible JSON.
//!
//! The JSON layout follows the `BENCH_*.json` conventions: deterministic
//! counters at the top level (cost-keyed names so the gate lets them
//! improve but not regress), machine-dependent data — histogram
//! expositions, spill occupancy, wall clock — under an `environment`
//! object the gate never fails on.

use std::fmt::Write as _;

use crate::event::{push_json_string, Counters, Event};
use crate::registry::Registry;

/// One aggregated pipeline phase: every [`Event::PhaseExit`] with the same
/// name folded together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase name as emitted.
    pub name: String,
    /// How many times the phase ran.
    pub runs: u64,
    /// Summed counters over all runs of the phase.
    pub stats: Counters,
}

/// A profile report built from a recorded (or re-parsed) event stream.
///
/// Phase rows keep **first-seen order** (pipeline order), and aggregate
/// phases absorbed by the algorithm (e.g. `bottom/panconesi-rizzi`)
/// overlap their inner phases — shares are fractions of
/// [`Report::totals`], which comes from [`Event::CommitExit`] sums when
/// the stream has commits and from the phase sum otherwise, so overlapping
/// rows can legitimately sum past 100%.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Commits observed ([`Event::CommitEnter`] count).
    pub commits: u64,
    /// Denominator counters: summed [`Event::CommitExit`] stats, or the
    /// phase-row sum when the stream has no commits.
    pub totals: Counters,
    /// Aggregated phases in first-seen order.
    pub phases: Vec<PhaseRow>,
    /// `(strategy, commits)` counts from [`Event::CommitExit`], name-sorted.
    pub strategies: Vec<(String, u64)>,
    /// Fault-era repair attempts retried.
    pub retries: u64,
    /// Commits degraded to from-scratch after exhausting attempts.
    pub fallbacks: u64,
    /// Palette-drift compactions forced.
    pub compactions: u64,
    /// Bytes the commit machinery wrote ([`Event::CommitBytes`] sum).
    pub commit_bytes: u64,
    /// Per-round samples observed ([`Event::Round`] count).
    pub rounds_sampled: u64,
    /// Largest per-round live-node count observed.
    pub peak_live_nodes: u64,
    /// Deterministic histograms: `region_edges` (repair region size per
    /// commit) and `commit_node_rounds` (repair node-rounds per commit).
    pub registry: Registry,
    /// [`Event::Env`] facts, last value per key, key-sorted. Machine- and
    /// configuration-dependent — excluded from the deterministic surface.
    pub env: Vec<(String, String)>,
}

impl Report {
    /// Builds a report from an event stream (recorded in-process or
    /// re-parsed from a JSONL profile).
    pub fn build(events: &[Event]) -> Report {
        let mut r = Report::default();
        let mut strategies: Vec<(String, u64)> = Vec::new();
        let mut env: Vec<(String, String)> = Vec::new();
        let mut had_commit_exit = false;
        for ev in events {
            match ev {
                Event::PhaseEnter { .. } => {}
                Event::PhaseExit { name, stats } => {
                    let row = match r.phases.iter_mut().find(|p| p.name == name.as_ref()) {
                        Some(row) => row,
                        None => {
                            r.phases.push(PhaseRow {
                                name: name.to_string(),
                                runs: 0,
                                stats: Counters::zero(),
                            });
                            // INVARIANT: a phase was pushed immediately above, so last_mut is Some.
                            r.phases.last_mut().expect("just pushed")
                        }
                    };
                    row.runs += 1;
                    row.stats.absorb(stats);
                }
                Event::Round { live_nodes, .. } => {
                    r.rounds_sampled += 1;
                    r.peak_live_nodes = r.peak_live_nodes.max(*live_nodes);
                }
                Event::CommitEnter { .. } => r.commits += 1,
                Event::Region { dirty, .. } => r.registry.observe("region_edges", *dirty),
                Event::Strategy { .. } => {}
                Event::Retry { .. } => r.retries += 1,
                Event::Fallback { .. } => r.fallbacks += 1,
                Event::Compaction { .. } => r.compactions += 1,
                Event::CommitExit { strategy, stats, .. } => {
                    had_commit_exit = true;
                    r.totals.absorb(stats);
                    r.registry.observe("commit_node_rounds", stats.node_rounds);
                    match strategies.iter_mut().find(|(s, _)| s == strategy.as_ref()) {
                        Some((_, n)) => *n += 1,
                        None => strategies.push((strategy.to_string(), 1)),
                    }
                }
                Event::CommitBytes { bytes } => r.commit_bytes += bytes,
                Event::Env { key, value } => {
                    match env.iter_mut().find(|(k, _)| k == key.as_ref()) {
                        Some((_, v)) => *v = value.clone(),
                        None => env.push((key.to_string(), value.clone())),
                    }
                }
            }
        }
        if !had_commit_exit {
            for p in &r.phases {
                r.totals.absorb(&p.stats);
            }
        }
        strategies.sort();
        env.sort();
        r.strategies = strategies;
        r.env = env;
        r
    }

    /// A phase's share of [`Report::totals`] node-rounds, in percent.
    pub fn share_pct(&self, phase: &PhaseRow) -> f64 {
        if self.totals.node_rounds == 0 {
            0.0
        } else {
            phase.stats.node_rounds as f64 * 100.0 / self.totals.node_rounds as f64
        }
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let t = &self.totals;
        let _ = writeln!(
            out,
            "profile: {} commit(s) · totals: {} rounds ({} node-rounds), {} msgs, {} bits",
            self.commits, t.rounds, t.node_rounds, t.messages, t.total_message_bits
        );
        if !self.phases.is_empty() {
            let name_w =
                self.phases.iter().map(|p| p.name.len()).max().unwrap_or(5).max("phase".len());
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>5}  {:>7}  {:>11}  {:>9}  {:>6}",
                "phase", "runs", "rounds", "node-rounds", "messages", "share"
            );
            for p in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>5}  {:>7}  {:>11}  {:>9}  {:>5.1}%",
                    p.name,
                    p.runs,
                    p.stats.rounds,
                    p.stats.node_rounds,
                    p.stats.messages,
                    self.share_pct(p)
                );
            }
            let _ = writeln!(
                out,
                "(aggregate phases overlap their inner phases; shares are of total node-rounds)"
            );
        }
        if !self.strategies.is_empty() {
            let strat = self
                .strategies
                .iter()
                .map(|(s, n)| format!("{s} ×{n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "strategies: {strat} · retries {} · fallbacks {} · compactions {}",
                self.retries, self.fallbacks, self.compactions
            );
        }
        if self.commit_bytes > 0 {
            let _ = writeln!(out, "commit machinery: {} bytes", self.commit_bytes);
        }
        if self.rounds_sampled > 0 {
            let _ = writeln!(
                out,
                "rounds sampled: {} (peak live nodes {})",
                self.rounds_sampled, self.peak_live_nodes
            );
        }
        let metrics = self.registry.expose();
        if !metrics.is_empty() {
            let _ = writeln!(out, "metrics:");
            for line in metrics.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        if !self.env.is_empty() {
            let _ = writeln!(out, "environment (machine-dependent, not pinned):");
            for (k, v) in &self.env {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        out
    }

    /// Renders the bench-gate-compatible JSON document. Deterministic
    /// counters sit at the top level (cost-keyed, so the gate lets them
    /// improve but never regress); histogram expositions and env facts go
    /// under `environment`, which the gate never fails on.
    pub fn to_json(&self, bench: &str) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        json_str(&mut s, "bench", bench);
        s.push(',');
        json_int(&mut s, "commits", self.commits);
        s.push(',');
        s.push_str("\"totals\":");
        json_counters(&mut s, &self.totals);
        s.push(',');
        s.push_str("\"phases\":{");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, &p.name);
            s.push_str(":{");
            json_int(&mut s, "runs", p.runs);
            s.push(',');
            json_int(&mut s, "rounds", p.stats.rounds);
            s.push(',');
            json_int(&mut s, "node_rounds", p.stats.node_rounds);
            s.push(',');
            json_int(&mut s, "messages", p.stats.messages);
            s.push(',');
            let _ = write!(s, "\"share_pct\":{:.3}", self.share_pct(p));
            s.push('}');
        }
        s.push_str("},");
        s.push_str("\"strategies\":{");
        for (i, (name, n)) in self.strategies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, name);
            let _ = write!(s, ":{n}");
        }
        s.push_str("},");
        json_int(&mut s, "retries", self.retries);
        s.push(',');
        json_int(&mut s, "fallbacks", self.fallbacks);
        s.push(',');
        json_int(&mut s, "compactions", self.compactions);
        s.push(',');
        json_int(&mut s, "commit_machinery_bytes", self.commit_bytes);
        s.push(',');
        json_int(&mut s, "rounds_sampled", self.rounds_sampled);
        s.push(',');
        json_int(&mut s, "peak_live_node_count", self.peak_live_nodes);
        s.push(',');
        s.push_str("\"environment\":{");
        json_str(&mut s, "metrics_exposition", &self.registry.expose());
        for (k, v) in &self.env {
            s.push(',');
            json_str(&mut s, k, v);
        }
        s.push_str("}}");
        s
    }
}

fn json_int(s: &mut String, key: &str, v: u64) {
    let _ = write!(s, "\"{key}\":{v}");
}

fn json_str(s: &mut String, key: &str, v: &str) {
    push_json_string(s, key);
    s.push(':');
    push_json_string(s, v);
}

fn json_counters(s: &mut String, c: &Counters) {
    s.push('{');
    json_int(s, "rounds", c.rounds);
    s.push(',');
    json_int(s, "node_rounds", c.node_rounds);
    s.push(',');
    json_int(s, "messages", c.messages);
    s.push(',');
    json_int(s, "max_message_bits", c.max_message_bits);
    s.push(',');
    json_int(s, "total_message_bits", c.total_message_bits);
    s.push(',');
    json_int(s, "transport_dropped", c.transport_dropped);
    s.push(',');
    json_int(s, "commit_bytes", c.commit_bytes);
    s.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_events() -> Vec<Event> {
        vec![
            Event::CommitBytes { bytes: 100 },
            Event::CommitEnter { commit: 0, inserted: 4, deleted: 0, n: 10, m: 12, max_degree: 4 },
            Event::Region { commit: 0, dirty: 4 },
            Event::Strategy { commit: 0, strategy: "incremental".into() },
            Event::PhaseEnter { name: "repair/schedule-pipeline".into() },
            Event::PhaseExit {
                name: "repair/schedule-pipeline".into(),
                stats: Counters { rounds: 4, node_rounds: 40, messages: 80, ..Counters::zero() },
            },
            Event::PhaseEnter { name: "repair/finalize".into() },
            Event::Round {
                round: 1,
                live_nodes: 8,
                messages: 10,
                bits: 30,
                sent_messages: 10,
                sent_bits: 30,
                transport_dropped: 0,
            },
            Event::PhaseExit {
                name: "repair/finalize".into(),
                stats: Counters { rounds: 2, node_rounds: 10, messages: 12, ..Counters::zero() },
            },
            Event::env("wall_us", "120"),
            Event::env("threads", "8"),
            Event::CommitExit {
                commit: 0,
                strategy: "incremental".into(),
                recolored: 4,
                schedule_classes: 3,
                color_bound: 11,
                region_vertices: 8,
                retries: 0,
                fallbacks: 0,
                stats: Counters {
                    rounds: 6,
                    node_rounds: 50,
                    messages: 92,
                    commit_bytes: 100,
                    ..Counters::zero()
                },
            },
            Event::CommitBytes { bytes: 40 },
            Event::CommitEnter { commit: 1, inserted: 0, deleted: 1, n: 10, m: 11, max_degree: 4 },
            Event::Strategy { commit: 1, strategy: "clean".into() },
            Event::CommitExit {
                commit: 1,
                strategy: "clean".into(),
                recolored: 0,
                schedule_classes: 0,
                color_bound: 11,
                region_vertices: 0,
                retries: 0,
                fallbacks: 0,
                stats: Counters { commit_bytes: 40, ..Counters::zero() },
            },
            Event::env("wall_us", "180"),
        ]
    }

    #[test]
    fn report_aggregates_phases_in_first_seen_order() {
        let r = Report::build(&commit_events());
        assert_eq!(r.commits, 2);
        assert_eq!(r.totals.node_rounds, 50);
        assert_eq!(r.totals.commit_bytes, 140);
        assert_eq!(r.commit_bytes, 140);
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["repair/schedule-pipeline", "repair/finalize"]);
        assert_eq!(r.phases[0].stats.node_rounds, 40);
        assert!((self_share(&r, 0) - 80.0).abs() < 1e-9);
        assert_eq!(r.strategies, vec![("clean".into(), 1), ("incremental".into(), 1)]);
        assert_eq!(r.rounds_sampled, 1);
        assert_eq!(r.peak_live_nodes, 8);
        // Env is last-wins and key-sorted.
        assert_eq!(r.env, vec![("threads".into(), "8".into()), ("wall_us".into(), "180".into())]);
        assert_eq!(r.registry.histogram("region_edges").map(|h| h.count()), Some(1));
        assert_eq!(r.registry.histogram("commit_node_rounds").map(|h| h.count()), Some(2));
    }

    fn self_share(r: &Report, i: usize) -> f64 {
        r.share_pct(&r.phases[i])
    }

    #[test]
    fn phase_only_streams_use_phase_sum_as_denominator() {
        let events = vec![
            Event::PhaseExit {
                name: "a".into(),
                stats: Counters { node_rounds: 30, ..Counters::zero() },
            },
            Event::PhaseExit {
                name: "b".into(),
                stats: Counters { node_rounds: 10, ..Counters::zero() },
            },
        ];
        let r = Report::build(&events);
        assert_eq!(r.totals.node_rounds, 40);
        assert!((self_share(&r, 0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn text_and_json_are_deterministic() {
        let a = Report::build(&commit_events());
        let b = Report::build(&commit_events());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json("pr8_profile"), b.to_json("pr8_profile"));
        let text = a.render_text();
        assert!(text.contains("repair/schedule-pipeline"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        let json = a.to_json("pr8_profile");
        assert!(json.contains("\"bench\":\"pr8_profile\""), "{json}");
        assert!(json.contains("\"node_rounds\":50"), "{json}");
        assert!(json.contains("\"environment\":{\"metrics_exposition\":"), "{json}");
    }

    #[test]
    fn empty_stream_renders() {
        let r = Report::build(&[]);
        assert_eq!(r.totals, Counters::zero());
        assert!(!r.render_text().is_empty());
        assert!(r.to_json("x").starts_with("{\"bench\":\"x\""));
    }
}
