//! Distributed verification of colorings.
//!
//! Proper colorings are locally checkable: one round of exchanging colors
//! lets every vertex decide whether any of its (relevant) edges is
//! monochromatic. These protocols are the distributed counterpart of the
//! centralized checkers in [`deco_graph::coloring`] — useful both as a
//! sanity layer after a coloring run and as the classic example of a
//! locally checkable labeling in the paper's model.

use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::{EdgeIdx, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

#[derive(Debug)]
struct VerifyVertex {
    color: u64,
    palette: u64,
    ok: bool,
}

impl Protocol for VerifyVertex {
    type Msg = FieldMsg;
    type Output = bool;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        ctx.broadcast(FieldMsg::new(&[(self.color, self.palette)]))
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        self.ok = inbox.iter().all(|(_, m)| m.field(0) != self.color);
        Action::halt()
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> bool {
        self.ok
    }
}

/// One-round distributed verification of a vertex coloring: vertex `v`'s
/// output is `true` iff none of its neighbors shares its color. The
/// coloring is proper iff every output is `true`.
///
/// Returns `(per-vertex verdicts, stats)`; always exactly 1 round with
/// `O(log palette)`-bit messages.
pub fn verify_vertex_coloring(
    net: &Network<'_>,
    colors: &[u64],
    palette: u64,
) -> (Vec<bool>, RunStats) {
    assert_eq!(colors.len(), net.graph().n(), "one color per vertex");
    let mut pl = Pipeline::new(net);
    let verdicts = pl.run("verify-vertex-coloring", |ctx| VerifyVertex {
        color: colors[ctx.vertex],
        palette: palette.max(1),
        ok: true,
    });
    (verdicts, pl.into_stats())
}

#[derive(Debug)]
struct VerifyEdges {
    /// Per incident edge: (neighbor, edge, color).
    edges: Vec<(Vertex, EdgeIdx, u64)>,
    palette: u64,
    ok: bool,
}

impl Protocol for VerifyEdges {
    type Msg = FieldMsg;
    type Output = bool;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Local half of the check: my incident edges must be rainbow.
        let mut seen: Vec<u64> = self.edges.iter().map(|&(_, _, c)| c).collect();
        seen.sort_unstable();
        self.ok = seen.windows(2).all(|w| w[0] != w[1]);
        // Exchange edge colors so both endpoints agree on each edge's color
        // (catches inconsistent replicas).
        self.edges.iter().map(|&(nbr, _, c)| (nbr, FieldMsg::new(&[(c, self.palette)]))).collect()
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        for (sender, m) in inbox {
            let mine = self.edges.iter().find(|&&(nbr, _, _)| nbr == *sender).map(|&(_, _, c)| c);
            if mine != Some(m.field(0)) {
                self.ok = false;
            }
        }
        Action::halt()
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> bool {
        self.ok
    }
}

/// One-round distributed verification of an edge coloring: vertex `v`'s
/// output is `true` iff its incident edges have pairwise distinct colors
/// *and* both endpoints agree on every edge's color. The edge coloring is
/// proper iff every output is `true`.
pub fn verify_edge_coloring(
    net: &Network<'_>,
    colors: &[u64],
    palette: u64,
) -> (Vec<bool>, RunStats) {
    let g = net.graph();
    assert_eq!(colors.len(), g.m(), "one color per edge");
    let mut pl = Pipeline::new(net);
    let verdicts = pl.run("verify-edge-coloring", |ctx| VerifyEdges {
        edges: g.incident(ctx.vertex).map(|(nbr, e)| (nbr, e, colors[e])).collect(),
        palette: palette.max(1),
        ok: true,
    });
    (verdicts, pl.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::panconesi_rizzi::pr_edge_color;
    use crate::reduction::delta_plus_one_coloring;
    use deco_graph::generators;

    #[test]
    fn accepts_proper_vertex_coloring() {
        let g = generators::random_bounded_degree(80, 7, 91);
        let net = Network::new(&g);
        let (colors, _) = delta_plus_one_coloring(&net);
        let (ok, stats) = verify_vertex_coloring(&net, &colors, g.max_degree() as u64 + 1);
        assert!(ok.iter().all(|&b| b));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn rejects_monochromatic_edge() {
        let g = generators::path(4);
        let net = Network::new(&g);
        let (ok, _) = verify_vertex_coloring(&net, &[0, 0, 1, 0], 2);
        assert_eq!(ok, vec![false, false, true, true]);
    }

    #[test]
    fn accepts_proper_edge_coloring() {
        let g = generators::random_bounded_degree(70, 8, 92);
        let (pr, _) = pr_edge_color(&g);
        let net = Network::new(&g);
        let (ok, stats) = verify_edge_coloring(&net, pr.colors(), 64);
        assert!(ok.iter().all(|&b| b));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn rejects_clashing_incident_edges() {
        // Star: all edges incident at the center.
        let g = generators::star(4);
        let net = Network::new(&g);
        let (ok, _) = verify_edge_coloring(&net, &[0, 0, 1], 2);
        assert!(!ok[0], "the center must detect the clash");
        assert!(ok[3], "the leaf of the odd-colored edge sees no clash");
    }

    #[test]
    fn verdicts_match_centralized_checker() {
        let g = generators::random_bounded_degree(60, 6, 93);
        let colors: Vec<u64> = (0..g.m() as u64).map(|e| e % 5).collect();
        let centralized = deco_graph::coloring::EdgeColoring::new(colors.clone());
        let net = Network::new(&g);
        let (ok, _) = verify_edge_coloring(&net, &colors, 5);
        assert_eq!(ok.iter().all(|&b| b), centralized.is_proper(&g));
    }
}
