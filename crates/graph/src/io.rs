//! Plain-text graph serialization.
//!
//! A minimal DIMACS-like edge-list format so workloads can be exported,
//! diffed, and re-loaded reproducibly:
//!
//! ```text
//! # comment
//! p <n> <m>
//! e <u> <v>
//! i <vertex> <ident>        (optional identifier overrides)
//! ```
//!
//! Vertices are 0-based. Identifier lines are only emitted when identifiers
//! differ from the default `v + 1`.

use crate::{Graph, GraphError, Vertex};
use std::error::Error;
use std::fmt;

/// Error from [`parse_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseGraphError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
    /// The `p` header is missing or duplicated.
    BadHeader,
    /// The edge count in the header does not match the edges listed.
    EdgeCountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Edges actually listed.
        got: usize,
    },
    /// The underlying graph construction failed.
    Graph(GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::BadLine { line, what } => write!(f, "line {line}: {what}"),
            ParseGraphError::BadHeader => write!(f, "missing or duplicate 'p' header"),
            ParseGraphError::EdgeCountMismatch { declared, got } => {
                write!(f, "header declares {declared} edges, found {got}")
            }
            ParseGraphError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Serializes a graph to the edge-list format.
///
/// # Example
///
/// ```
/// use deco_graph::{io, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let text = io::to_edge_list(&g);
/// let back = io::parse_edge_list(&text)?;
/// assert_eq!(g, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("p {} {}\n", g.n(), g.m()));
    for (u, v) in g.edges() {
        out.push_str(&format!("e {u} {v}\n"));
    }
    for v in 0..g.n() {
        if g.ident(v) != v as u64 + 1 {
            out.push_str(&format!("i {v} {}\n", g.ident(v)));
        }
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut ident_overrides: Vec<(Vertex, u64)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        // INVARIANT: splitting a non-empty trimmed line always yields a first token.
        let tag = parts.next().expect("nonempty line has a first token");
        let mut next_num = |what: &str| -> Result<usize, ParseGraphError> {
            parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| ParseGraphError::BadLine {
                line: line_no,
                what: format!("expected {what}"),
            })
        };
        match tag {
            "p" => {
                if header.is_some() {
                    return Err(ParseGraphError::BadHeader);
                }
                header = Some((next_num("vertex count")?, next_num("edge count")?));
            }
            "e" => {
                edges.push((next_num("endpoint")?, next_num("endpoint")?));
            }
            "i" => {
                let v = next_num("vertex")?;
                let ident = next_num("identifier")? as u64;
                ident_overrides.push((v, ident));
            }
            other => {
                return Err(ParseGraphError::BadLine {
                    line: line_no,
                    what: format!("unknown tag '{other}'"),
                });
            }
        }
    }
    let (n, m) = header.ok_or(ParseGraphError::BadHeader)?;
    if edges.len() != m {
        return Err(ParseGraphError::EdgeCountMismatch { declared: m, got: edges.len() });
    }
    let g = Graph::from_edges(n, &edges)?;
    if ident_overrides.is_empty() {
        return Ok(g);
    }
    let mut idents: Vec<u64> = (1..=n as u64).collect();
    for (v, ident) in ident_overrides {
        if v >= n {
            return Err(ParseGraphError::Graph(GraphError::VertexOutOfRange { vertex: v, n }));
        }
        idents[v] = ident;
    }
    Ok(g.with_idents(idents)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_plain() {
        for g in
            [generators::petersen(), generators::random_bounded_degree(40, 5, 3), Graph::empty(4)]
        {
            let text = to_edge_list(&g);
            assert_eq!(parse_edge_list(&text).unwrap(), g);
        }
    }

    #[test]
    fn roundtrip_with_idents() {
        let g = generators::shuffle_idents(&generators::grid(4, 3), 9);
        let text = to_edge_list(&g);
        assert!(text.contains("\ni "));
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.idents(), g.idents());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# hello\n\np 3 1\n# mid\ne 0 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse_edge_list("e 0 1\n"), Err(ParseGraphError::BadHeader));
        assert!(matches!(
            parse_edge_list("p 2 2\ne 0 1\n"),
            Err(ParseGraphError::EdgeCountMismatch { declared: 2, got: 1 })
        ));
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 x\n"),
            Err(ParseGraphError::BadLine { line: 2, .. })
        ));
        assert!(matches!(parse_edge_list("p 2 1\nq 0 1\n"), Err(ParseGraphError::BadLine { .. })));
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 2\n"),
            Err(ParseGraphError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 1\ni 5 9\n"),
            Err(ParseGraphError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
    }

    #[test]
    fn ident_override_errors_are_specific() {
        // Truncated `i` lines name the missing field and the line.
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 1\ni 0\n"),
            Err(ParseGraphError::BadLine { line: 3, .. })
        ));
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 1\ni\n"),
            Err(ParseGraphError::BadLine { line: 3, .. })
        ));
        assert!(matches!(
            parse_edge_list("p 2 1\ne 0 1\ni 0 x\n"),
            Err(ParseGraphError::BadLine { line: 3, .. })
        ));
        // An override clashing with a default identifier is a graph error.
        assert!(matches!(
            parse_edge_list("p 3 1\ne 0 1\ni 0 2\n"),
            Err(ParseGraphError::Graph(GraphError::DuplicateIdent { ident: 2 }))
        ));
        // Overriding the same vertex twice keeps the last value (documented
        // by behavior: the override list applies in order).
        let g = parse_edge_list("p 2 1\ne 0 1\ni 0 5\ni 0 9\n").unwrap();
        assert_eq!(g.ident(0), 9);
    }

    #[test]
    fn display_messages() {
        let e = parse_edge_list("p 2 2\ne 0 1\n").unwrap_err();
        assert!(e.to_string().contains("declares 2"));
    }
}
