//! **PR7 — segmented CSR commits**: O(region) commit memory traffic.
//!
//! Three scenarios, all guarded by deterministic byte counters (wall
//! medians are informational only — ±10% container noise, ROADMAP):
//!
//! * **A. engine parity** — the pr3/pr4 acceptance workload
//!   (`churn_trace(n = 50k, Δ ≤ 8)`, 1% churn per commit, same seed)
//!   replayed through the legacy [`Recolorer`] (full-rewrite commits) and
//!   the [`SegRecolorer`] (segmented commits). Reports and colorings are
//!   asserted bit-identical (up to `stats.commit_bytes`, the quantity
//!   under test) before anything is recorded; per-commit `commit_bytes`
//!   for both engines land in the json as cost counters.
//! * **B. large-m machinery** — a 1% churn batch committed on a
//!   `SegmentedGraph` vs `MutableGraph` at m ≈ 200k (the
//!   `Graph::patched` ≈ 12 MB regime the issue names), topology only so
//!   the byte ratio is undiluted by repair. **Hard-asserts** segmented
//!   bytes × 10 ≤ full-rewrite bytes — the PR's acceptance criterion —
//!   and bit-identical resulting snapshots.
//! * **C. power-law churn** — the heavy-tailed trace (Δ = 64 > λ = 48)
//!   through both engines, long-mode/spill paths hot, same parity
//!   asserts.
//!
//! Results land in `BENCH_pr7.json` (override with `DECO_BENCH_OUT`;
//! `DECO_BENCH_SCALE=full` deepens the run).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, scale, Scale, Table};
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace_from, power_law_churn_trace, Trace, TraceOp};
use deco_graph::{generators, MutableGraph, SegmentedGraph};
use deco_stream::{queue_op, Recolorer, SegRecolorer};
use std::time::{Duration, Instant};

/// FNV-1a over one commit's colors (the stream_churn pin's hash function).
fn color_hash(colors: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(colors.len() as u64);
    for &c in colors {
        mix(c);
    }
    h
}

/// Queues one trace op on the segmented engine.
fn queue_seg(r: &mut SegRecolorer, op: TraceOp) {
    match op {
        TraceOp::Insert(u, v) => r.insert_edge(u, v).expect("valid trace"),
        TraceOp::Delete(u, v) => r.delete_edge(u, v).expect("valid trace"),
        TraceOp::AddVertices(k) => {
            for _ in 0..k {
                r.add_vertex();
            }
        }
        TraceOp::SetIdent(v, ident) => r.set_ident(v, ident).expect("valid trace"),
        TraceOp::Shrink => r.shrink_isolated(),
        TraceOp::Commit => {}
    }
}

/// Median legacy commit() wall time (clone + queueing untimed).
fn time_legacy(base: &Recolorer, ops: &[TraceOp], samples: usize) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..=samples {
        let mut r = base.clone();
        for &op in ops {
            queue_op(&mut r, op).expect("valid trace");
        }
        let t0 = Instant::now();
        r.commit().expect("valid trace");
        times.push(t0.elapsed());
    }
    times.remove(0); // warm-up
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median segmented commit() wall time (clone + queueing untimed).
fn time_seg(base: &SegRecolorer, ops: &[TraceOp], samples: usize) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..=samples {
        let mut r = base.clone();
        for &op in ops {
            queue_seg(&mut r, op);
        }
        let t0 = Instant::now();
        r.commit().expect("valid trace");
        times.push(t0.elapsed());
    }
    times.remove(0); // warm-up
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    scenario: &'static str,
    commit: usize,
    m: usize,
    dirty: usize,
    rounds: usize,
    messages: usize,
    seg_commit_bytes: usize,
    full_commit_bytes: usize,
    color_hash: u64,
    seg: Duration,
    legacy: Duration,
}

impl Row {
    fn byte_ratio(&self) -> f64 {
        self.full_commit_bytes as f64 / (self.seg_commit_bytes as f64).max(1.0)
    }

    fn to_json(&self) -> Value {
        Obj::new()
            .field("scenario", self.scenario)
            .field("commit", self.commit)
            .field("m", self.m)
            .field("repaired_edges", self.dirty)
            .field("rounds", self.rounds)
            .field("messages", self.messages)
            .field("segmented_commit_bytes", self.seg_commit_bytes)
            .field("full_rewrite_commit_bytes", self.full_commit_bytes)
            .field("byte_ratio_full_over_segmented", self.byte_ratio())
            .field("color_hash", format!("{:016x}", self.color_hash))
            .field("segmented_ms", self.seg.as_secs_f64() * 1e3)
            .field("legacy_ms", self.legacy.as_secs_f64() * 1e3)
            .build()
    }
}

/// Replays `trace` through both engines, asserting parity per commit and
/// recording one [`Row`] per *churn* commit (the build commit is reported
/// separately by the caller).
fn run_pair(scenario: &'static str, trace: &Trace, samples: usize, rows: &mut Vec<Row>) {
    let params = edge_log_depth(1);
    let mode = MessageMode::Long;
    let mut legacy = Recolorer::new(trace.n0, params, mode).expect("preset params");
    let mut seg = SegRecolorer::new(trace.n0, params, mode).expect("preset params");
    for (c, batch) in trace.batches().into_iter().enumerate() {
        let (seg_t, legacy_t) = if c > 0 {
            (time_seg(&seg, batch, samples), time_legacy(&legacy, batch, samples))
        } else {
            (Duration::ZERO, Duration::ZERO) // build commit: not timed
        };
        for &op in batch {
            queue_op(&mut legacy, op).expect("valid trace");
            queue_seg(&mut seg, op);
        }
        let a = legacy.commit().expect("valid trace");
        let b = seg.commit().expect("valid trace");
        let (mut a0, mut b0) = (a.clone(), b.clone());
        a0.stats.commit_bytes = 0;
        b0.stats.commit_bytes = 0;
        assert_eq!(a0, b0, "{scenario} commit {c}: reports diverge across engines");
        let colors = legacy.coloring().into_colors();
        assert_eq!(
            colors,
            seg.coloring().into_colors(),
            "{scenario} commit {c}: colors diverge across engines"
        );
        if c > 0 {
            rows.push(Row {
                scenario,
                commit: c,
                m: a.m,
                dirty: a.dirty,
                rounds: a.stats.rounds,
                messages: a.stats.messages,
                seg_commit_bytes: b.stats.commit_bytes,
                full_commit_bytes: a.stats.commit_bytes,
                color_hash: color_hash(&colors),
                seg: seg_t,
                legacy: legacy_t,
            });
        }
    }
}

fn main() {
    banner("PR7 / segmented CSR", "O(region) commit bytes vs full-rewrite commits");
    let full = scale() == Scale::Full;
    let samples = if full { 5 } else { 3 };
    let mut rows: Vec<Row> = Vec::new();

    // A. The pr3/pr4 acceptance workload: n = 50k, Δ ≤ 8, 1% churn.
    let (n, cap, commits) = if full { (50_000, 8, 6) } else { (50_000, 8, 3) };
    println!("A: churn_trace(n={n}, Δ≤{cap}, {commits} churn commits @ 1%) ...");
    let base = generators::random_bounded_degree(n, cap, 0x9126);
    let churn = base.m() / 100;
    let trace = churn_trace_from(&base, cap, commits, churn, 0x9126);
    drop(base);
    run_pair("churn_50k", &trace, samples, &mut rows);

    // C. Heavy-tailed churn: hubs at Δ = 64 > λ = 48 keep the long-mode
    // and spill paths hot in both engines.
    let (pn, pd, pc, pchurn) = if full { (4000, 64, 4, 40) } else { (2000, 64, 3, 20) };
    println!("C: power_law_churn_trace(n={pn}, Δ={pd}, {pc} churn commits @ {pchurn}) ...");
    let ptrace = power_law_churn_trace(pn, pd, pc, pchurn, 0x9072);
    run_pair("power_law", &ptrace, samples, &mut rows);

    // B. Large-m machinery: the byte claim undiluted by repair. m ≈ 200k
    // is the issue's `Graph::patched` ≈ 12 MB regime.
    let (bn, bcap) = if full { (100_000, 8) } else { (50_000, 8) };
    println!("B: large-m machinery, random_bounded_degree(n={bn}, Δ≤{bcap}), 1% batch ...");
    let big = generators::random_bounded_degree(bn, bcap, 0xb16);
    let big_m = big.m();
    let batch = churn_trace_from(&big, bcap, 1, big_m / 100, 0xb16);
    let churn_batch = batch.batches()[1].to_vec();
    let mut sg = SegmentedGraph::from_graph(&big);
    let mut mg = MutableGraph::from_graph(big);
    for &op in &churn_batch {
        match op {
            TraceOp::Insert(u, v) => {
                sg.insert_edge(u, v).expect("valid batch");
                mg.insert_edge(u, v).expect("valid batch");
            }
            TraceOp::Delete(u, v) => {
                sg.delete_edge(u, v).expect("valid batch");
                mg.delete_edge(u, v).expect("valid batch");
            }
            _ => unreachable!("churn batches only insert/delete"),
        }
    }
    let t0 = Instant::now();
    let sd = sg.commit().expect("valid batch");
    let seg_wall = t0.elapsed();
    let t1 = Instant::now();
    let md = mg.commit().expect("valid batch");
    let full_wall = t1.elapsed();
    assert_eq!(&sg.to_graph().0, mg.graph(), "large-m snapshots diverge");
    let ratio = md.commit_bytes as f64 / (sd.commit_bytes as f64).max(1.0);
    // The PR's acceptance criterion, hard-asserted where it is measured.
    assert!(
        sd.commit_bytes * 10 <= md.commit_bytes,
        "segmented commit must write >=10x fewer bytes on large-m: {} vs {}",
        sd.commit_bytes,
        md.commit_bytes
    );
    println!(
        "   m = {}, churn = {}: segmented {} B vs full rewrite {} B ({ratio:.1}x fewer)",
        mg.graph().m(),
        big_m / 100,
        sd.commit_bytes,
        md.commit_bytes
    );

    println!();
    let table = Table::new(
        &["scenario", "commit", "dirty", "seg bytes", "full bytes", "ratio", "seg ms", "legacy ms"],
        &[10, 6, 7, 11, 12, 7, 9, 9],
    );
    for r in &rows {
        table.row(&[
            r.scenario.to_string(),
            r.commit.to_string(),
            r.dirty.to_string(),
            r.seg_commit_bytes.to_string(),
            r.full_commit_bytes.to_string(),
            format!("{:.1}x", r.byte_ratio()),
            millis(r.seg),
            millis(r.legacy),
        ]);
    }
    println!("\n(byte counters are deterministic and gate-guarded; wall medians are");
    println!(" informational — repair work dominates both engines' commit wall time)");

    let churn_ratios: Vec<f64> =
        rows.iter().filter(|r| r.scenario == "churn_50k").map(Row::byte_ratio).collect();
    let min_churn_ratio = churn_ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let met = sd.commit_bytes * 10 <= md.commit_bytes;
    let json = Obj::new()
        .field("bench", "pr7_segments")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("churn_edges_per_commit", churn)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "segmented commits write >=10x fewer bytes than the full-rewrite \
                     oracle on the large-m machinery scenario (hard-asserted above), \
                     with reports and colorings bit-identical across engines on every \
                     commit of the churn and power-law scenarios (asserted before \
                     recording); wall medians are informational",
                )
                .field("met", met)
                .field("large_m_byte_ratio", ratio)
                .field("min_churn_byte_ratio", min_churn_ratio)
                .field("large_m_segmented_ms", seg_wall.as_secs_f64() * 1e3)
                .field("large_m_full_rewrite_ms", full_wall.as_secs_f64() * 1e3)
                .build(),
        )
        .field(
            "large_m_machinery",
            Obj::new()
                .field("n", bn)
                .field("m", big_m)
                .field("churn_edges", big_m / 100)
                .field("segmented_commit_bytes", sd.commit_bytes)
                .field("full_rewrite_commit_bytes", md.commit_bytes)
                .build(),
        )
        .field("commits", Value::Array(rows.iter().map(Row::to_json).collect()))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr7.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    println!(
        "large-m byte ratio {ratio:.1}x (target >=10x); churn-commit byte ratios \
         min {min_churn_ratio:.1}x over {} commits",
        rows.len()
    );
}
