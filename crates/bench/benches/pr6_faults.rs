//! **PR6 — transport faults**: the self-stabilizing repair path under the
//! deterministic fault matrix, versus the perfect-transport baseline.
//!
//! Each cell drives the streaming recolorer through the same churn scenario
//! over one transport: perfect (the legacy bit-exact path) and four
//! seed-driven [`FaultyTransport`] configurations (drop / delay / reorder /
//! mixed). Every commit must terminate with a verified-legal coloring
//! within the bounded retry/fallback budget, and every cell is driven twice
//! to prove the counters — retries, fallbacks, rounds, messages, dropped
//! messages, the final color hash — are a pure function of the transport
//! seed. Those counters are what the gate pins: wall-clock is reported
//! alongside but never decides anything.
//!
//! Acceptance: all cells legal + deterministic + within budget, and the
//! perfect cell reports zero retries, zero fallbacks and zero transport
//! drops (the fault machinery must be invisible off the fault path).
//! Results land in `BENCH_pr6.json` (override with `DECO_BENCH_OUT`;
//! `DECO_BENCH_SCALE=full` deepens).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, scale, time_interleaved, Scale, Table};
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_stream::{FaultyTransport, RecolorConfig, Recolorer, RepairStrategy, Transport};
use std::sync::Arc;
use std::time::Duration;

struct Cell {
    name: &'static str,
    commits: usize,
    incremental: usize,
    retries: u32,
    fallbacks: u32,
    max_retries_per_commit: u32,
    rounds: usize,
    node_rounds: usize,
    messages: usize,
    transport_dropped: usize,
    color_hash: String,
    wall: Duration,
}

impl Cell {
    fn to_json(&self) -> Value {
        Obj::new()
            .field("cell", self.name)
            .field("commits", self.commits)
            .field("incremental_commits", self.incremental)
            .field("retries", self.retries as usize)
            .field("fallbacks", self.fallbacks as usize)
            .field("max_retries_per_commit", self.max_retries_per_commit as usize)
            .field("rounds", self.rounds)
            .field("node_rounds", self.node_rounds)
            .field("messages", self.messages)
            .field("transport_dropped", self.transport_dropped)
            .field("color_hash", self.color_hash.clone())
            .field("drive_ms", self.wall.as_secs_f64() * 1e3)
            .build()
    }
}

fn fnv_hex(values: &[u64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in values {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// One full drive of a cell: initial build plus `epochs` flap epochs
/// (delete a window, commit, reinsert it, commit), verifying legality after
/// every commit. Returns everything but the name and the wall time.
#[allow(clippy::type_complexity)]
fn drive(
    base: &deco_graph::Graph,
    transport: Option<Arc<dyn Transport>>,
    epochs: usize,
    flap: usize,
) -> (usize, usize, u32, u32, u32, deco_local::RunStats, String) {
    let params = edge_log_depth(1);
    let mut cfg = RecolorConfig::default();
    if let Some(t) = transport {
        cfg = cfg.with_transport(t);
    }
    let mut r = Recolorer::from_graph_with(base.clone(), params, MessageMode::Long, cfg)
        .expect("preset params are valid");
    let mut reports = vec![r.commit().expect("valid batch")];
    for step in 0..epochs {
        let edges: Vec<_> = r.graph().edges().skip(step * 29).take(flap).collect();
        for &(u, v) in &edges {
            r.delete_edge(u, v).expect("edge exists");
        }
        reports.push(r.commit().expect("valid batch"));
        for &(u, v) in &edges {
            r.insert_edge(u, v).expect("edge was deleted");
        }
        reports.push(r.commit().expect("valid batch"));
        let coloring = r.coloring();
        assert!(coloring.is_proper(r.graph()), "epoch {step}: improper coloring");
        let bound = r.color_bound();
        assert!(coloring.colors().iter().all(|&c| c < bound), "epoch {step}: bound exceeded");
    }
    let stats = reports.iter().fold(deco_local::RunStats::zero(), |acc, rep| acc + rep.stats);
    let incremental =
        reports.iter().filter(|rep| rep.strategy == RepairStrategy::Incremental).count();
    let retries: u32 = reports.iter().map(|rep| rep.retries).sum();
    let fallbacks: u32 = reports.iter().map(|rep| rep.fallbacks).sum();
    let max_retries = reports.iter().map(|rep| rep.retries).max().unwrap_or(0);
    let hash = fnv_hex(&r.coloring().into_colors());
    (reports.len(), incremental, retries, fallbacks, max_retries, stats, hash)
}

fn main() {
    banner("PR6 / faults", "self-stabilizing repair under the deterministic fault matrix");
    let full = scale() == Scale::Full;
    let samples = if full { 5 } else { 3 };
    let (n, cap, epochs, flap) = if full { (5_000, 6, 5, 12) } else { (2_000, 6, 3, 12) };
    let seed = 0x6F6u64;
    println!(
        "base graph: random_bounded_degree(n={n}, Δ≤{cap}), {epochs} flap epochs × {flap} edges"
    );
    let base = deco_graph::generators::random_bounded_degree(n, cap, seed);

    let cells: Vec<(&'static str, Option<Arc<dyn Transport>>)> = vec![
        ("perfect", None),
        ("drop", Some(Arc::new(FaultyTransport::new(seed).with_drop(150_000)))),
        ("delay", Some(Arc::new(FaultyTransport::new(seed).with_delay(120_000, 3)))),
        ("reorder", Some(Arc::new(FaultyTransport::new(seed).with_reorder(100_000)))),
        (
            "mixed",
            Some(Arc::new(
                FaultyTransport::new(seed)
                    .with_drop(80_000)
                    .with_delay(80_000, 2)
                    .with_reorder(60_000),
            )),
        ),
        // Total loss: no distributed repair can ever finish, so every
        // incremental commit must burn its full retry budget and degrade to
        // the fault-free from-scratch fallback — pinning the retry and
        // fallback counters at their deterministic non-zero worst case.
        ("blackout", Some(Arc::new(FaultyTransport::new(seed).with_drop(1_000_000)))),
    ];

    let mut rows: Vec<Cell> = Vec::new();
    for (name, transport) in cells {
        let once = || drive(&base, transport.clone(), epochs, flap);
        let first = once();
        let again = once();
        assert_eq!(
            (first.0, first.1, first.2, first.3, first.4, first.5, first.6.clone()),
            (again.0, again.1, again.2, again.3, again.4, again.5, again.6.clone()),
            "{name}: counters must be a pure function of the transport seed"
        );
        let wall = time_interleaved(samples, &mut [&mut || once().5.rounds])[0];
        let (commits, incremental, retries, fallbacks, max_retries, stats, color_hash) = first;
        rows.push(Cell {
            name,
            commits,
            incremental,
            retries,
            fallbacks,
            max_retries_per_commit: max_retries,
            rounds: stats.rounds,
            node_rounds: stats.node_rounds,
            messages: stats.messages,
            transport_dropped: stats.transport_dropped,
            color_hash,
            wall,
        });
    }

    println!();
    let table = Table::new(
        &["cell", "commits", "retries", "fallbk", "rounds", "node-rnds", "dropped", "drive ms"],
        &[8, 8, 8, 7, 8, 10, 8, 9],
    );
    for c in &rows {
        table.row(&[
            c.name.to_string(),
            c.commits.to_string(),
            c.retries.to_string(),
            c.fallbacks.to_string(),
            c.rounds.to_string(),
            c.node_rounds.to_string(),
            c.transport_dropped.to_string(),
            millis(c.wall),
        ]);
    }
    println!("\n(every cell driven twice and counter-compared before timing; every commit");
    println!(" verified proper and within the snapshot palette bound)");

    let perfect = &rows[0];
    let budget_ok =
        rows.iter().all(|c| c.max_retries_per_commit <= 5 && c.fallbacks as usize <= c.commits);
    let perfect_clean =
        perfect.retries == 0 && perfect.fallbacks == 0 && perfect.transport_dropped == 0;
    let met = budget_ok && perfect_clean;
    let json = Obj::new()
        .field("bench", "pr6_faults")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("epochs", epochs)
        .field("flap_edges", flap)
        .field("transport_seed", seed as usize)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "every fault cell terminates every commit with a verified-legal \
                     coloring within the bounded retry/fallback budget, counters are \
                     bit-deterministic across re-drives, and the perfect cell shows \
                     zero retries/fallbacks/drops (fault machinery invisible off the \
                     fault path)",
                )
                .field("met", met)
                .field("budget_ok", budget_ok)
                .field("perfect_cell_clean", perfect_clean)
                .build(),
        )
        .field("cells", Value::Array(rows.iter().map(Cell::to_json).collect()))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr6.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    assert!(met, "acceptance failed: budget_ok={budget_ok}, perfect_clean={perfect_clean}");
}
