//! Message size accounting.

/// A message exchanged between neighboring vertices.
///
/// Implementors report their encoded size in bits so the simulator can track
/// the maximum message size of a run — the quantity the paper uses to
/// distinguish `O(log n)`-bit algorithms from `O(Δ log n)`-bit ones.
pub trait Message: Clone + std::fmt::Debug {
    /// Encoded size of this message in bits.
    fn size_bits(&self) -> usize;
}

/// Number of bits needed to encode one value from a domain of `domain_size`
/// values (at least 1 bit).
///
/// # Example
///
/// ```
/// use deco_local::bits_for_range;
/// assert_eq!(bits_for_range(1), 1);
/// assert_eq!(bits_for_range(2), 1);
/// assert_eq!(bits_for_range(256), 8);
/// assert_eq!(bits_for_range(257), 9);
/// ```
pub fn bits_for_range(domain_size: u64) -> usize {
    if domain_size <= 2 {
        1
    } else {
        (64 - (domain_size - 1).leading_zeros()) as usize
    }
}

/// Number of bits in the minimal binary encoding of `value` (at least 1).
pub fn bits_for_value(value: u64) -> usize {
    bits_for_range(value.saturating_add(1))
}

impl Message for u64 {
    fn size_bits(&self) -> usize {
        bits_for_value(*self)
    }
}

impl Message for (u64, u64) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl Message for Vec<u64> {
    fn size_bits(&self) -> usize {
        self.iter().map(|v| v.size_bits()).sum::<usize>().max(1)
    }
}

impl Message for () {
    fn size_bits(&self) -> usize {
        1
    }
}

/// A fixed-domain bitset message: membership over `0..domain`.
///
/// The wire size is the *domain* width (one bit per possible element),
/// matching how the paper accounts message sizes by domain rather than by
/// value. Used by protocols that exchange palettes — e.g. the streaming
/// recolorer's forbidden-color masks, where `domain = 2Δ - 1` makes every
/// mask an `O(Δ)`-bit message.
///
/// # Example
///
/// ```
/// use deco_local::{Bitset, Message};
///
/// let mut a = Bitset::new(10);
/// a.insert(0);
/// a.insert(3);
/// let mut b = Bitset::new(10);
/// b.insert(1);
/// b.union_with(&a);
/// assert_eq!(b.first_absent(), 2);
/// assert_eq!(b.size_bits(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    domain: u32,
    words: Vec<u64>,
}

impl Bitset {
    /// An empty set over the domain `0..domain`.
    pub fn new(domain: usize) -> Bitset {
        assert!(domain <= u32::MAX as usize, "bitset domain too large");
        Bitset { domain: domain as u32, words: vec![0; domain.div_ceil(64)] }
    }

    /// The domain size this set ranges over.
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// Adds `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= domain`.
    pub fn insert(&mut self, i: u64) {
        assert!(i < u64::from(self.domain), "bit {i} outside domain {}", self.domain);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Whether `i` is in the set (`false` for out-of-domain values).
    pub fn contains(&self, i: u64) -> bool {
        i < u64::from(self.domain) && self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Adds every element of `other` (domains must match).
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.domain, other.domain, "bitset domains must match");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// The smallest domain value *not* in the set, or `domain` if the set
    /// is full — the "first free color" primitive.
    pub fn first_absent(&self) -> u64 {
        for (i, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let bit = 64 * i as u64 + w.trailing_ones() as u64;
                return bit.min(u64::from(self.domain));
            }
        }
        u64::from(self.domain)
    }
}

impl Message for Bitset {
    fn size_bits(&self) -> usize {
        (self.domain as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(0), 1);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(1 << 20), 20);
    }

    #[test]
    fn value_bits() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(255), 8);
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn composite_messages() {
        assert_eq!((3u64, 5u64).size_bits(), 2 + 3);
        assert_eq!(vec![1u64, 2, 4].size_bits(), 1 + 2 + 3);
        assert_eq!(Vec::<u64>::new().size_bits(), 1);
        assert_eq!(().size_bits(), 1);
    }

    #[test]
    fn bitset_membership_and_union() {
        let mut s = Bitset::new(130);
        assert_eq!(s.first_absent(), 0);
        for i in 0..70 {
            s.insert(i);
        }
        assert_eq!(s.first_absent(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        assert!(!s.contains(500)); // out of domain, not a panic
        let mut t = Bitset::new(130);
        t.insert(70);
        t.union_with(&s);
        assert_eq!(t.first_absent(), 71);
        assert_eq!(t.size_bits(), 130);
    }

    #[test]
    fn bitset_full_set_reports_domain() {
        let mut s = Bitset::new(3);
        for i in 0..3 {
            s.insert(i);
        }
        assert_eq!(s.first_absent(), 3);
        assert_eq!(Bitset::new(0).first_absent(), 0);
        assert_eq!(Bitset::new(0).size_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn bitset_insert_out_of_domain_panics() {
        Bitset::new(4).insert(4);
    }
}
