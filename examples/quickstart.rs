//! Quickstart: color the edges of a random graph with the paper's algorithm
//! and compare against the Panconesi–Rizzi baseline.
//!
//! Run with `cargo run --example quickstart [n] [delta] [seed]`.

use deco_core::baselines::greedy::greedy_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_graph::generators;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let delta: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let g = generators::random_bounded_degree(n, delta, seed);
    println!("graph: n = {}, m = {}, Δ = {} (seed {seed})", g.n(), g.m(), g.max_degree());

    let params = edge_log_depth(1);
    println!(
        "\n[ours] Barenboim–Elkin edge coloring, preset b={} p={} λ={}",
        params.b, params.p, params.lambda
    );
    let run = edge_color(&g, params, MessageMode::Long).expect("preset parameters are valid");
    assert!(run.coloring.is_proper(&g), "output must be a legal edge coloring");
    println!(
        "  colors used: {} (bound ϑ = {}), recursion levels: {}",
        run.coloring.palette_size(),
        run.theta,
        run.levels.len()
    );
    println!("  cost: {}", run.stats);

    println!("\n[baseline] Panconesi–Rizzi (2Δ-1)-edge-coloring");
    let (pr, pr_stats) = pr_edge_color(&g);
    assert!(pr.is_proper(&g));
    println!("  colors used: {} (bound {})", pr.palette_size(), 2 * g.max_degree() - 1);
    println!("  cost: {}", pr_stats);

    println!("\n[reference] centralized greedy");
    let greedy = greedy_edge_color(&g);
    println!("  colors used: {}", greedy.palette_size());

    println!(
        "\nsummary: ours {} rounds vs PR {} rounds; ours {:.2}x colors of greedy",
        run.stats.rounds,
        pr_stats.rounds,
        run.coloring.palette_size() as f64 / greedy.palette_size().max(1) as f64
    );
}
