//! A tiny JSON writer **and reader** for bench result files.
//!
//! The offline build has no serde; bench results are flat enough (strings,
//! numbers, booleans, arrays, objects) that a small escaping writer keeps
//! the emitted files valid and diffable. Keys keep insertion order so the
//! generated `BENCH_*.json` files diff cleanly between runs. The reader
//! ([`parse`]) exists for the deterministic bench gate, which compares
//! fresh `BENCH_*.json` files against the committed baseline; it covers
//! exactly the subset the writer emits (which is all the gate ever reads).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers (serialized without a fraction).
    Int(i64),
    /// Finite floats (non-finite values serialize as `null`).
    Float(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// Builds an array value by converting each item — the shape used for
/// per-round series (delivery choices, worker counts, message loads).
pub fn array<T: Into<Value>>(items: impl IntoIterator<Item = T>) -> Value {
    Value::Array(items.into_iter().map(Into::into).collect())
}

/// A compact run-length encoding of a per-round label series, e.g.
/// `["3xscan", "41xpush"]` for 3 scan rounds followed by 41 push rounds —
/// keeps BENCH_*.json readable for thousand-round traces.
pub fn run_length(labels: impl IntoIterator<Item = &'static str>) -> Value {
    let mut encoded: Vec<Value> = Vec::new();
    let mut current: Option<(&'static str, usize)> = None;
    for label in labels {
        match &mut current {
            Some((cur, count)) if *cur == label => *count += 1,
            _ => {
                if let Some((cur, count)) = current.take() {
                    encoded.push(Value::Str(format!("{count}x{cur}")));
                }
                current = Some((label, 1));
            }
        }
    }
    if let Some((cur, count)) = current {
        encoded.push(Value::Str(format!("{count}x{cur}")));
    }
    Value::Array(encoded)
}

/// Builder for an insertion-ordered JSON object.
#[derive(Debug, Clone, Default)]
pub struct Obj(Vec<(String, Value)>);

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Adds a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Obj {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `v` as pretty-printed JSON (2-space indent, trailing newline).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

impl Value {
    /// Object field by key (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error from [`parse`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the subset [`to_string`] emits: no `\u` escapes
/// beyond the writer's, numbers as i64 when integral and in range, f64
/// otherwise).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError { at: pos, what: "trailing characters".into() });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, what: format!("expected '{}'", c as char) })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError { at: *pos, what: "unexpected end of input".into() }),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(ParseError { at: *pos, what: "expected ',' or '}'".into() }),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(ParseError { at: *pos, what: "expected ',' or ']'".into() }),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError { at: *pos, what: "unterminated string".into() }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| ParseError {
                                at: *pos,
                                what: "bad \\u escape".into(),
                            })?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError { at: *pos, what: "bad escape".into() }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the writer leaves them raw).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| ParseError { at: start, what: "invalid utf-8".into() })?,
                );
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| ParseError { at: start, what: "invalid number".into() })?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| ParseError { at: start, what: format!("invalid number '{text}'") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let v = Obj::new().field("z", 1usize).field("a", "two").build();
        let s = to_string(&v);
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn escaping() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_round_shape() {
        let v = Obj::new()
            .field("xs", vec![Value::from(1usize), Value::from(2usize)])
            .field("nested", Obj::new().field("ok", true).build())
            .field("nan", f64::NAN)
            .build();
        let s = to_string(&v);
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])), "[]\n");
        assert_eq!(to_string(&Obj::new().build()), "{}\n");
    }

    #[test]
    fn array_converts_items() {
        let v = array([1usize, 2, 3]);
        assert_eq!(to_string(&v), "[\n  1,\n  2,\n  3\n]\n");
    }

    fn normalized(v: &Value) -> String {
        to_string(v)
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Obj::new()
            .field("bench", "demo")
            .field("count", 42usize)
            .field("neg", -7i64)
            .field("ratio", 2.5f64)
            .field("ok", true)
            .field("none", Value::Null)
            .field("text", "a\"b\\c\nd")
            .field("xs", array([1usize, 2, 3]))
            .field("nested", Obj::new().field("empty_arr", Value::Array(vec![])).build())
            .build();
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        assert_eq!(normalized(&back), text);
        assert_eq!(back.get("count"), Some(&Value::Int(42)));
        assert_eq!(
            back.get("nested").and_then(|n| n.get("empty_arr")),
            Some(&Value::Array(vec![]))
        );
        assert_eq!(back.get("bench").and_then(Value::as_str), Some("demo"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse("5").unwrap(), Value::Int(5));
        assert_eq!(parse("-5").unwrap(), Value::Int(-5));
        assert!(matches!(parse("5.5").unwrap(), Value::Float(f) if f == 5.5));
        assert!(matches!(parse("1e3").unwrap(), Value::Float(f) if f == 1000.0));
        // Bigger than i64 falls back to float rather than failing.
        assert!(matches!(parse("99999999999999999999").unwrap(), Value::Float(_)));
    }

    #[test]
    fn run_length_encodes_series() {
        let v = run_length(["scan", "scan", "push", "push", "push", "scan"]);
        let s = to_string(&v);
        assert!(s.contains("\"2xscan\""));
        assert!(s.contains("\"3xpush\""));
        assert!(s.contains("\"1xscan\""));
        assert_eq!(to_string(&run_length([])), "[]\n");
    }
}
