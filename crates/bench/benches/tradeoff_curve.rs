//! **E8 — Corollary 6.3**: the colors/time tradeoff curve.
//!
//! For any monotone `g(Δ)` one gets `O(Δ²/g(Δ))` colors in
//! `O(log g(Δ)) + log* n`-shaped time. Sweeping the split parameter `p`
//! (classes of degree `≈ Δ/p`) traces the curve: larger `p` = more classes
//! = more colors but a shallower recursion inside each class.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_core::params::LegalParams;
use deco_core::tradeoff::{tradeoff_edge_color, tradeoff_vertex_color};
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

fn main() {
    banner("E8 / Cor 6.3", "tradeoff curve: colors vs rounds across the split p");
    let (n, cap) = match scale() {
        Scale::Quick => (300usize, 60usize),
        Scale::Full => (900, 120),
    };

    // Edge version on a general graph.
    let g = generators::random_bounded_degree(n, cap, 0xE8);
    let delta = g.max_degree() as u64;
    println!("edge version: n = {}, Δ = {delta}\n", g.n());
    let table = Table::new(
        &["p", "classes", "class W", "colors", "ϑ", "rounds", "levels"],
        &[4, 8, 8, 7, 9, 7, 7],
    );
    for p in [1u64, 2, 4, 8, 16] {
        if p > delta {
            continue;
        }
        let run = tradeoff_edge_color(&g, p, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.inner.coloring.is_proper(&g));
        table.row(&[
            p.to_string(),
            run.classes.to_string(),
            run.class_degree.to_string(),
            run.inner.coloring.palette_size().to_string(),
            run.inner.theta.to_string(),
            run.inner.stats.rounds.to_string(),
            run.inner.levels.len().to_string(),
        ]);
    }

    // Vertex version on a bounded-NI graph.
    let host = generators::random_bounded_degree(n / 2, cap.min(24), 0xE8 + 1);
    let l = line_graph(&host);
    let delta_l = l.max_degree() as u64;
    println!("\nvertex version: line graph, n_L = {}, Δ_L = {delta_l}\n", l.n());
    let table = Table::new(
        &["p", "classes", "class Λ", "colors", "ϑ", "rounds", "levels"],
        &[4, 8, 8, 7, 9, 7, 7],
    );
    for p in [1u64, 2, 4, 8] {
        if p > delta_l {
            continue;
        }
        let net = Network::new(&l);
        let run = tradeoff_vertex_color(&net, 2, p, LegalParams::log_depth(2, 1)).unwrap();
        assert!(run.inner.coloring.is_proper(&l));
        table.row(&[
            p.to_string(),
            run.classes.to_string(),
            run.class_degree.to_string(),
            run.inner.coloring.palette_size().to_string(),
            run.inner.theta.to_string(),
            run.inner.stats.rounds.to_string(),
            run.inner.levels.len().to_string(),
        ]);
    }
    println!(
        "\nshape check: rounds fall as p grows (per-class degree Δ/p shrinks the\n\
         recursion) while the palette grows with the p² classes — the paper's\n\
         O(Δ²/g) colors vs O(log g) time curve."
    );
}
