//! **E7 — Theorem 5.5's message-size tradeoff**: long vs short messages,
//! and the Lemma 5.2 simulation route.
//!
//! The paper gives three cost models for edge coloring:
//! * simulate the vertex algorithm on `L(G)` — `O(Δ log n)`-bit messages;
//! * native edge algorithm, long messages — `O(p·log Δ)` bits per message,
//!   `O((b·p)²)` rounds per level;
//! * native edge algorithm, short messages — `O(log n)` bits,
//!   `O(b²·p³)` rounds per level.
//!
//! All three must produce legal colorings; the harness prints the measured
//! rounds / message sizes side by side.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::via_line_graph::edge_color_via_line_graph;
use deco_core::params::LegalParams;
use deco_graph::generators;

fn main() {
    banner("E7 / Thm 5.5", "message-size models: simulation vs long vs short");
    let params = edge_log_depth(1);
    let (n, extra) = match scale() {
        Scale::Quick => (400usize, 12u64),
        Scale::Full => (1200, 40),
    };
    let g = generators::random_bounded_degree(n, (params.lambda + extra) as usize, 0xE7);
    println!(
        "workload: n = {}, Δ = {} (> λ = {}, so the recursion fires)\n",
        g.n(),
        g.max_degree(),
        params.lambda
    );

    let table = Table::new(
        &["route", "colors", "rounds", "max msg bits", "total Mbits"],
        &[28, 7, 8, 13, 12],
    );

    let via = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
    assert!(via.coloring.is_proper(&g));
    table.row(&[
        "simulate L(G) (Thm 5.3)".to_string(),
        via.coloring.palette_size().to_string(),
        via.host.rounds.to_string(),
        via.host.max_message_bits.to_string(),
        format!("{:.2}", via.host.total_message_bits as f64 / 1e6),
    ]);

    let long = edge_color(&g, params, MessageMode::Long).unwrap();
    assert!(long.coloring.is_proper(&g));
    table.row(&[
        "native, long msgs".to_string(),
        long.coloring.palette_size().to_string(),
        long.stats.rounds.to_string(),
        long.stats.max_message_bits.to_string(),
        format!("{:.2}", long.stats.total_message_bits as f64 / 1e6),
    ]);

    let short = edge_color(&g, params, MessageMode::Short).unwrap();
    assert!(short.coloring.is_proper(&g));
    assert_eq!(short.coloring, long.coloring, "modes must agree on the coloring");
    table.row(&[
        "native, short msgs".to_string(),
        short.coloring.palette_size().to_string(),
        short.stats.rounds.to_string(),
        short.stats.max_message_bits.to_string(),
        format!("{:.2}", short.stats.total_message_bits as f64 / 1e6),
    ]);

    let level_long: usize = long.levels.iter().map(|l| l.rounds).sum();
    let level_short: usize = short.levels.iter().map(|l| l.rounds).sum();
    println!(
        "\nshape check: short/long level-round ratio = {:.2} (p = {}); the\n\
         simulation route pays the relay-congestion factor in message size,\n\
         the short-message route pays ~p in rounds — Theorem 5.5's tradeoff.",
        level_short as f64 / level_long.max(1) as f64,
        params.p
    );
}
