//! A hand-rolled Rust source scanner: the line model every lint reads.
//!
//! The scanner is deliberately *not* a parser. It walks each file once,
//! character by character, and produces per line:
//!
//! * `code` — the line's program text with comment text and the *contents*
//!   of string/char literals blanked out (delimiters kept), so lints can
//!   match tokens like `HashMap` or `.unwrap()` without tripping on
//!   occurrences inside doc comments, `r#"…"#` fixtures, or messages;
//! * `comment` — the concatenated comment text of the line (line comments,
//!   doc comments, and block-comment interiors), where the `SAFETY:` /
//!   `INVARIANT:` / `tidy: allow(…)` annotations live;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` /
//!   `#[test]`-attributed item, tracked by brace depth, so "non-test
//!   library code" rules skip unit-test modules embedded in `src/`.
//!
//! Handled literal forms: `"…"` with escapes, raw strings `r"…"` /
//! `r#"…"#` (any hash count, multi-line), byte/raw-byte strings, char
//! literals (including `'"'` and escapes) distinguished from lifetimes,
//! and nested block comments. That is exactly the set needed to scan this
//! workspace plus its lint-fixture tests without false positives.

/// One scanned source line. See the module docs for field semantics.
#[derive(Debug, Clone)]
pub struct Line {
    /// Program text with comments and literal contents blanked.
    pub code: String,
    /// Comment text carried by this line (all comments concatenated).
    pub comment: String,
    /// Inside a `#[cfg(test)]` / `#[test]` item (attribute lines count).
    pub in_test: bool,
}

/// A scanned file: `lines[i]` describes source line `i + 1`.
#[derive(Debug)]
pub struct SourceFile {
    /// The scanned lines, in file order.
    pub lines: Vec<Line>,
}

/// Cross-line scanner state.
enum Mode {
    /// Plain program text.
    Code,
    /// Inside `/* … */`, with the current nesting depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string (escapes active).
    Str,
    /// Inside a raw string closed by `"` followed by `hashes` `#`s.
    RawStr { hashes: u32 },
}

impl SourceFile {
    /// Scans `text` into the per-line model.
    pub fn parse(text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut mode = Mode::Code;
        // Brace depth of blanked `code`, used for test-region tracking.
        let mut depth: i64 = 0;
        // A `#[cfg(test)]`/`#[test]` attribute was seen and its item has
        // not started yet.
        let mut pending_test = false;
        // While `Some(d)`, lines are test code until depth returns to `d`.
        let mut test_until: Option<i64> = None;

        for raw in text.lines() {
            let mut code = String::with_capacity(raw.len());
            let mut comment = String::new();
            let chars: Vec<char> = raw.chars().collect();
            let mut i = 0usize;
            while i < chars.len() {
                match mode {
                    Mode::BlockComment(ref mut d) => {
                        if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            *d -= 1;
                            let done = *d == 0;
                            i += 2;
                            if done {
                                mode = Mode::Code;
                            }
                        } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            *d += 1;
                            i += 2;
                        } else {
                            comment.push(chars[i]);
                            i += 1;
                        }
                    }
                    Mode::Str => {
                        if chars[i] == '\\' {
                            i += 2; // escape: skip the escaped char
                        } else if chars[i] == '"' {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1;
                        } else {
                            i += 1;
                        }
                    }
                    Mode::RawStr { hashes } => {
                        if chars[i] == '"'
                            && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
                        {
                            code.push('"');
                            i += 1 + hashes as usize;
                            mode = Mode::Code;
                        } else {
                            i += 1;
                        }
                    }
                    Mode::Code => {
                        let c = chars[i];
                        if c == '/' && chars.get(i + 1) == Some(&'/') {
                            // Line comment: the rest of the line.
                            comment.extend(&chars[i + 2..]);
                            i = chars.len();
                        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                            mode = Mode::BlockComment(1);
                            i += 2;
                        } else if c == '"' {
                            code.push('"');
                            mode = Mode::Str;
                            i += 1;
                        } else if (c == 'r' || c == 'b')
                            && !ends_with_ident(&code)
                            && raw_string_hashes(&chars[i..]).is_some()
                        {
                            // r"…", r#"…"#, br#"…"# etc.
                            let (skip, hashes) = raw_string_hashes(&chars[i..]).unwrap_or((1, 0));
                            code.push('"');
                            i += skip;
                            if hashes == u32::MAX {
                                mode = Mode::Str; // b"…": normal string body
                            } else {
                                mode = Mode::RawStr { hashes };
                            }
                        } else if c == '\'' {
                            // Char literal vs lifetime.
                            if let Some(len) = char_literal_len(&chars[i..]) {
                                code.push('\'');
                                code.push('\'');
                                i += len;
                            } else {
                                code.push('\'');
                                i += 1;
                            }
                        } else {
                            if c == '{' {
                                depth += 1;
                            } else if c == '}' {
                                depth -= 1;
                                if let Some(d) = test_until {
                                    if depth <= d {
                                        test_until = None;
                                    }
                                }
                            }
                            code.push(c);
                            i += 1;
                        }
                    }
                }
            }

            // Test-region bookkeeping (on the blanked code).
            let mut in_test = test_until.is_some();
            if is_test_attr(&code) && test_until.is_none() {
                pending_test = true;
            }
            if pending_test {
                in_test = true;
                if code.contains('{') {
                    // The item body opened on this line; the region runs
                    // until depth falls back below the first open.
                    let opens = code.chars().filter(|&c| c == '{').count() as i64;
                    let closes = code.chars().filter(|&c| c == '}').count() as i64;
                    // Depth before this line's first open:
                    let before = depth - opens + closes;
                    if test_until.is_none() && depth > before {
                        test_until = Some(before);
                    }
                    pending_test = false;
                    if depth <= test_until.unwrap_or(i64::MAX) {
                        test_until = None; // e.g. `#[test] fn f() {}` one-liner
                    }
                } else if code.trim_end().ends_with(';') {
                    pending_test = false; // `#[cfg(test)] use …;`
                }
            }

            lines.push(Line { code, comment, in_test });
        }
        SourceFile { lines }
    }
}

/// Does `code` end in an identifier character (so a following `r`/`b` is
/// part of an identifier like `ptr`, not a raw-string prefix)?
fn ends_with_ident(code: &str) -> bool {
    code.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `chars` starts a raw/byte string prefix (`r"`, `r#"`, `br##"`,
/// `b"`), returns `(prefix length including the opening quote, hash
/// count)`; `b"` reports `u32::MAX` hashes to mean "normal string body".
fn raw_string_hashes(chars: &[char]) -> Option<(usize, u32)> {
    let mut j = 0usize;
    if chars.first() == Some(&'b') {
        j += 1;
        if chars.get(j) == Some(&'"') {
            return Some((j + 1, u32::MAX));
        }
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((j + 1, hashes))
}

/// If `chars` (starting at `'`) is a char literal, its total length;
/// `None` for lifetimes like `'a` / `'static`.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    debug_assert_eq!(chars.first(), Some(&'\''));
    match chars.get(1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = 2;
            while j < chars.len() && j < 12 {
                if chars[j] == '\'' {
                    return Some(j + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Is this (blanked) line a test attribute: `#[test]`, `#[cfg(test)]`,
/// or a `cfg` combination mentioning `test` (e.g. `#[cfg(all(test, …))]`)?
fn is_test_attr(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[test]") || (t.starts_with("#[cfg(") && t.contains("test"))
}
