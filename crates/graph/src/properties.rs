//! Centralized property oracles used by tests and benchmarks.
//!
//! These are *not* distributed algorithms; they verify the structural
//! assumptions the paper's algorithms rely on:
//!
//! * **Neighborhood independence** `I(G)` (Definition 3.1): the maximum size
//!   of an independent subset of a single vertex's neighborhood.
//! * **Degeneracy** (an upper bound on arboricity within a factor 2), used by
//!   the forest-decomposition baseline.
//! * **Growth**: the number of independent vertices within distance `r` of a
//!   vertex — Figure 1's graph has `I(G) = 2` but unbounded growth.
//! * **Claw-freeness**: `I(G) <= 2` iff `G` has no induced `K_{1,3}`.

use crate::{Graph, Vertex};

/// Maximum independent set size of the subgraph induced by `set`, by branch
/// and bound. Exact; intended for the small vertex sets that appear in tests
/// (neighborhoods, balls).
///
/// # Panics
///
/// Panics if `set` contains an out-of-range vertex.
pub fn max_independent_subset(g: &Graph, set: &[Vertex]) -> usize {
    let mut verts: Vec<Vertex> = set.to_vec();
    verts.sort_unstable();
    verts.dedup();
    let k = verts.len();
    if k == 0 {
        return 0;
    }
    // INVARIANT: the k == 0 case returned early above, so verts is nonempty.
    assert!(*verts.last().expect("nonempty") < g.n(), "set contains out-of-range vertex");
    // Local adjacency among `verts` as bitsets (chunks of 64).
    let words = k.div_ceil(64);
    let mut adj = vec![vec![0u64; words]; k];
    let mut index = std::collections::BTreeMap::new();
    for (i, &v) in verts.iter().enumerate() {
        index.insert(v, i);
    }
    for (i, &v) in verts.iter().enumerate() {
        for u in g.neighbors(v) {
            if let Some(&j) = index.get(&u) {
                adj[i][j / 64] |= 1 << (j % 64);
            }
        }
    }
    // Order vertices by decreasing degree inside the set: helps pruning.
    let mut order: Vec<usize> = (0..k).collect();
    let local_deg: Vec<usize> =
        (0..k).map(|i| adj[i].iter().map(|w| w.count_ones() as usize).sum()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(local_deg[i]));

    struct Ctx<'a> {
        adj: &'a [Vec<u64>],
        order: &'a [usize],
        best: usize,
    }
    fn go(ctx: &mut Ctx<'_>, pos: usize, chosen: usize, banned: &mut Vec<u64>) {
        if chosen + (ctx.order.len() - pos) <= ctx.best {
            return; // cannot beat current best
        }
        if pos == ctx.order.len() {
            ctx.best = ctx.best.max(chosen);
            return;
        }
        let i = ctx.order[pos];
        // Branch 1: take i if not banned.
        if banned[i / 64] & (1 << (i % 64)) == 0 {
            let saved = banned.clone();
            for (word, &mask) in banned.iter_mut().zip(&ctx.adj[i]) {
                *word |= mask;
            }
            go(ctx, pos + 1, chosen + 1, banned);
            *banned = saved;
        }
        // Branch 2: skip i.
        go(ctx, pos + 1, chosen, banned);
        ctx.best = ctx.best.max(chosen);
    }
    let mut ctx = Ctx { adj: &adj, order: &order, best: 0 };
    let mut banned = vec![0u64; words];
    go(&mut ctx, 0, 0, &mut banned);
    ctx.best
}

/// The neighborhood independence `I(v)` of a single vertex: the maximum size
/// of an independent subset of `Γ(v)` (Definition 3.1).
pub fn vertex_neighborhood_independence(g: &Graph, v: Vertex) -> usize {
    let nbrs: Vec<Vertex> = g.neighbors(v).collect();
    max_independent_subset(g, &nbrs)
}

/// The neighborhood independence `I(G) = max_v I(v)` (Definition 3.1).
///
/// Exact (branch and bound per neighborhood); intended for test- and
/// bench-scale graphs.
///
/// # Example
///
/// ```
/// use deco_graph::{generators, properties::neighborhood_independence};
///
/// // A star K_{1,k} has a vertex with k independent neighbors.
/// assert_eq!(neighborhood_independence(&generators::star(5)), 4);
/// // A clique's neighborhoods are cliques.
/// assert_eq!(neighborhood_independence(&generators::complete(5)), 1);
/// ```
pub fn neighborhood_independence(g: &Graph) -> usize {
    (0..g.n()).map(|v| vertex_neighborhood_independence(g, v)).max().unwrap_or(0)
}

/// A cheap lower bound on `I(G)` by greedy independent-set construction in
/// each neighborhood (by increasing degree). Useful to certify large
/// independence without exact search.
pub fn neighborhood_independence_lower_bound(g: &Graph) -> usize {
    (0..g.n())
        .map(|v| {
            let mut nbrs: Vec<Vertex> = g.neighbors(v).collect();
            nbrs.sort_by_key(|&u| g.degree(u));
            let mut chosen: Vec<Vertex> = Vec::new();
            for u in nbrs {
                if chosen.iter().all(|&w| !g.has_edge(u, w)) {
                    chosen.push(u);
                }
            }
            chosen.len()
        })
        .max()
        .unwrap_or(0)
}

/// Whether `G` is claw-free, i.e. excludes an induced `K_{1,3}`.
///
/// Section 1.2: the graphs with neighborhood independence at most `r` are
/// exactly the graphs with no induced `K_{1,r+1}`; claw-free is the case
/// `r = 2`.
pub fn is_claw_free(g: &Graph) -> bool {
    neighborhood_independence(g) <= 2
}

/// The degeneracy of `G`: the smallest `d` such that every subgraph has a
/// vertex of degree at most `d`. Computed by min-degree peeling.
/// `arboricity(G) <= degeneracy(G) <= 2·arboricity(G) - 1`, so this is the
/// arboricity surrogate the forest-decomposition baseline uses.
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let maxd = g.max_degree();
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0;
    let mut cursor = 0usize;
    for _ in 0..n {
        while cursor <= maxd {
            // find a live vertex of the current smallest degree
            if let Some(&v) = buckets[cursor].last() {
                if removed[v] || deg[v] != cursor {
                    buckets[cursor].pop();
                    continue;
                }
                break;
            }
            cursor += 1;
        }
        // INVARIANT: bucket occupancy mirrors the live-vertex counters, so a selected bucket cannot be empty.
        let v = buckets[cursor].pop().expect("live vertex exists");
        removed[v] = true;
        degeneracy = degeneracy.max(cursor);
        for u in g.neighbors(v) {
            if !removed[u] {
                deg[u] -= 1;
                buckets[deg[u]].push(u);
                if deg[u] < cursor {
                    cursor = deg[u];
                }
            }
        }
    }
    degeneracy
}

/// The arboricity lower bound `max ⌈|E(U)|/(|U|-1)⌉` evaluated on the whole
/// vertex set only (a cheap necessary bound used in tests).
pub fn arboricity_whole_graph_bound(g: &Graph) -> usize {
    if g.n() < 2 {
        return 0;
    }
    g.m().div_ceil(g.n() - 1)
}

/// The exact chromatic index χ'(G) by backtracking, for small graphs.
///
/// By Vizing's theorem χ'(G) ∈ {Δ, Δ+1}; this decides which (the "class 1
/// vs class 2" question) by searching for a Δ-edge-coloring. Exponential in
/// the worst case — intended as a test oracle (`m` up to a few dozen).
pub fn chromatic_index_exact(g: &Graph) -> usize {
    let delta = g.max_degree();
    if g.m() == 0 {
        return 0;
    }
    if delta <= 1 {
        return delta;
    }
    fn search(g: &Graph, colors: &mut Vec<usize>, e: usize, k: usize) -> bool {
        if e == g.m() {
            return true;
        }
        let (u, v) = g.endpoints(e);
        'next_color: for c in 0..k {
            for (_, f) in g.incident(u).chain(g.incident(v)) {
                if f < e && colors[f] == c {
                    continue 'next_color;
                }
            }
            colors[e] = c;
            if search(g, colors, e + 1, k) {
                return true;
            }
        }
        false
    }
    let mut colors = vec![usize::MAX; g.m()];
    if search(g, &mut colors, 0, delta) {
        delta
    } else {
        delta + 1
    }
}

/// The number of pairwise independent vertices at distance exactly `<= r`
/// from `v` (excluding `v` itself): the paper's growth function `f(r)`
/// evaluated at one vertex. Exact via branch and bound on the ball.
pub fn independent_in_ball(g: &Graph, v: Vertex, r: usize) -> usize {
    let dist = g.bfs_distances(v);
    let ball: Vec<Vertex> =
        (0..g.n()).filter(|&u| u != v && dist[u] != usize::MAX && dist[u] <= r).collect();
    max_independent_subset(g, &ball)
}

/// A greedy (lower-bound) variant of [`independent_in_ball`] for larger
/// instances, used to certify *unbounded* growth (Figure 1).
pub fn independent_in_ball_lower_bound(g: &Graph, v: Vertex, r: usize) -> usize {
    let dist = g.bfs_distances(v);
    let mut ball: Vec<Vertex> =
        (0..g.n()).filter(|&u| u != v && dist[u] != usize::MAX && dist[u] <= r).collect();
    ball.sort_by_key(|&u| g.degree(u));
    let mut chosen: Vec<Vertex> = Vec::new();
    for u in ball {
        if chosen.iter().all(|&w| !g.has_edge(u, w)) {
            chosen.push(u);
        }
    }
    chosen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn star_independence() {
        let g = generators::star(6);
        assert_eq!(neighborhood_independence(&g), 5);
        assert!(!is_claw_free(&g));
        assert_eq!(neighborhood_independence_lower_bound(&g), 5);
    }

    #[test]
    fn cycle_independence_is_two() {
        let g = generators::cycle(6);
        assert_eq!(neighborhood_independence(&g), 2);
        assert!(is_claw_free(&g));
    }

    #[test]
    fn figure_1_graph_bounded_independence_unbounded_growth() {
        // Figure 1: an n/2-clique, each clique vertex attached to a pendant.
        let k = 10;
        let g = generators::clique_with_pendants(k);
        assert_eq!(neighborhood_independence(&g), 2);
        // Every clique vertex sees all k pendants within distance 2:
        // the pendants are pairwise independent, so growth is Ω(Δ).
        assert!(independent_in_ball(&g, 0, 2) >= k);
        assert!(independent_in_ball_lower_bound(&g, 0, 2) >= k);
    }

    #[test]
    fn degeneracy_examples() {
        assert_eq!(degeneracy(&generators::complete(5)), 4);
        assert_eq!(degeneracy(&generators::path(7)), 1);
        assert_eq!(degeneracy(&generators::cycle(7)), 2);
        assert_eq!(degeneracy(&generators::grid(4, 4)), 2);
        assert_eq!(degeneracy(&Graph::empty(3)), 0);
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
    }

    #[test]
    fn arboricity_bound_below_degeneracy() {
        for g in [generators::complete(6), generators::grid(5, 5), generators::cycle(9)] {
            assert!(arboricity_whole_graph_bound(&g) <= degeneracy(&g).max(1));
        }
    }

    #[test]
    fn max_independent_subset_exact_small() {
        let g = generators::cycle(5);
        assert_eq!(max_independent_subset(&g, &[0, 1, 2, 3, 4]), 2);
        let g = generators::path(6);
        assert_eq!(max_independent_subset(&g, &[0, 1, 2, 3, 4, 5]), 3);
        assert_eq!(max_independent_subset(&g, &[]), 0);
        assert_eq!(max_independent_subset(&g, &[2, 2, 2]), 1);
    }

    #[test]
    fn chromatic_index_classes() {
        // Class 1 (χ' = Δ): even cliques, paths, bipartite graphs (König).
        assert_eq!(chromatic_index_exact(&generators::complete(4)), 3);
        assert_eq!(chromatic_index_exact(&generators::path(6)), 2);
        assert_eq!(chromatic_index_exact(&generators::complete_bipartite(3, 3)), 3);
        // Class 2 (χ' = Δ+1): odd cliques, odd cycles, Petersen.
        assert_eq!(chromatic_index_exact(&generators::complete(5)), 5);
        assert_eq!(chromatic_index_exact(&generators::cycle(5)), 3);
        assert_eq!(chromatic_index_exact(&generators::petersen()), 4);
        // Degenerate cases.
        assert_eq!(chromatic_index_exact(&Graph::empty(3)), 0);
        assert_eq!(chromatic_index_exact(&Graph::from_edges(2, &[(0, 1)]).unwrap()), 1);
    }

    #[test]
    fn petersen_is_claw_full() {
        // The Petersen graph contains induced claws (girth 5, 3-regular).
        let g = generators::petersen();
        assert_eq!(neighborhood_independence(&g), 3);
        assert!(!is_claw_free(&g));
    }

    #[test]
    fn unit_disk_graphs_have_small_independence() {
        // Geometric fact: at most 5 pairwise-independent neighbors fit in a
        // unit disk around a vertex.
        let g = generators::unit_disk(120, 0.22, 42);
        assert!(neighborhood_independence(&g) <= 5);
    }
}
