//! The deterministic bench gate.
//!
//! Wall-clock on the shared CI container is ±10% noise (ROADMAP), so the
//! performance trajectory is guarded by the **deterministic counters** the
//! benches emit — rounds, messages, repaired edges, region sizes, color
//! hashes — which the simulator's determinism contract fixes exactly for a
//! given scenario. The gate compares fresh `BENCH_*.json` files against the
//! committed `BENCH_baseline.json`:
//!
//! * **cost counters** (integer keys containing one of [`COST_KEYS`]) may
//!   improve but must not regress (`new <= baseline`);
//! * **everything else deterministic** (scenario parameters, strings,
//!   booleans, color hashes) must match exactly — a mismatch means the
//!   scenario changed and the baseline must be regenerated deliberately;
//! * **wall-clock values** (`*_ms`, `*speedup*`, floats, and everything
//!   under `acceptance` or `environment`) are reported as deltas but never
//!   fail the gate. `environment` blocks hold machine-dependent facts —
//!   available threads, per-round worker counts — that benches must keep
//!   out of the deterministic surface for the gate to cover them.
//!
//! The `bench_gate` binary wraps this: `write` records a baseline from
//! bench outputs, `check` diffs fresh outputs against it.

use crate::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Substrings marking an integer counter as a *cost* (allowed to improve):
/// anything else integral is a scenario parameter and must match exactly.
pub const COST_KEYS: &[&str] = &[
    "round",
    "message",
    "msg",
    "repaired",
    "region",
    "class",
    "dirty",
    "recolored",
    "bit",
    "byte",
];

/// One flattened leaf of a bench json: dotted path plus value.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// Deterministic cost counter (must not regress).
    Cost(i64),
    /// Deterministic scenario datum (must match exactly).
    Exact(String),
    /// Wall-clock datum (reported, never fatal).
    Wall(f64),
}

/// Flattens a bench json into `path -> leaf`, classifying every scalar.
pub fn flatten(v: &Value) -> BTreeMap<String, Leaf> {
    let mut out = BTreeMap::new();
    walk(v, String::new(), false, &mut out);
    out
}

fn walk(v: &Value, path: String, in_acceptance: bool, out: &mut BTreeMap<String, Leaf>) {
    match v {
        Value::Object(fields) => {
            for (k, val) in fields {
                let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(val, sub, in_acceptance || k == "acceptance" || k == "environment", out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{i}]"), in_acceptance, out);
            }
        }
        scalar => {
            let key = path.rsplit(['.', '[']).next().unwrap_or("").trim_end_matches(']');
            let leaf = match scalar {
                // Acceptance blocks summarize wall measurements (met /
                // speedups) and environment blocks machine facts; nothing
                // in either may fail the gate.
                _ if in_acceptance => Leaf::Wall(scalar_as_f64(scalar)),
                Value::Float(f) => Leaf::Wall(*f),
                Value::Int(i) if key.ends_with("_ms") => Leaf::Wall(*i as f64),
                Value::Int(i) => {
                    let lower = key.to_ascii_lowercase();
                    if COST_KEYS.iter().any(|c| lower.contains(c)) {
                        Leaf::Cost(*i)
                    } else {
                        Leaf::Exact(i.to_string())
                    }
                }
                Value::Bool(b) => Leaf::Exact(b.to_string()),
                Value::Str(s) => Leaf::Exact(s.clone()),
                Value::Null => Leaf::Exact("null".to_string()),
                // INVARIANT: flatten() recurses into containers before this match, so only scalar leaves reach it.
                Value::Object(_) | Value::Array(_) => unreachable!("containers handled above"),
            };
            out.insert(path, leaf);
        }
    }
}

fn scalar_as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Bool(b) => f64::from(u8::from(*b)),
        _ => f64::NAN,
    }
}

/// Outcome of diffing one bench against its baseline.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Fatal findings: regressed cost counters, changed parameters,
    /// missing keys.
    pub failures: Vec<String>,
    /// Non-fatal notes: wall deltas, improvements, new keys.
    pub notes: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report (the artifact CI uploads).
    pub fn render(&self, bench: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {bench}: {} ({} failure(s), {} note(s))",
            if self.passed() { "PASS" } else { "FAIL" },
            self.failures.len(),
            self.notes.len()
        );
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL  {f}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note  {n}");
        }
        out
    }
}

/// Diffs a fresh bench json against its baseline snapshot.
pub fn check(baseline: &Value, fresh: &Value) -> GateReport {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut report = GateReport::default();
    for (path, base_leaf) in &base {
        match (base_leaf, new.get(path)) {
            (_, None) => {
                report.failures.push(format!("{path}: present in baseline, missing from run"));
            }
            (Leaf::Cost(b), Some(Leaf::Cost(n))) => {
                if n > b {
                    report.failures.push(format!("{path}: cost counter regressed {b} -> {n}"));
                } else if n < b {
                    report
                        .notes
                        .push(format!("{path}: improved {b} -> {n} (re-baseline to lock in)"));
                }
            }
            (Leaf::Exact(b), Some(Leaf::Exact(n))) => {
                if n != b {
                    report
                        .failures
                        .push(format!("{path}: deterministic value changed {b:?} -> {n:?}"));
                }
            }
            (Leaf::Wall(b), Some(Leaf::Wall(n))) => {
                if b.is_finite() && *b != 0.0 && n.is_finite() {
                    let pct = (n - b) / b * 100.0;
                    if pct.abs() >= 1.0 {
                        report
                            .notes
                            .push(format!("{path}: {b:.3} -> {n:.3} ({pct:+.1}% wall, non-fatal)"));
                    }
                }
            }
            (b, Some(n)) => {
                report.failures.push(format!("{path}: leaf class changed ({b:?} -> {n:?})"));
            }
        }
    }
    for path in new.keys() {
        if !base.contains_key(path) {
            report.notes.push(format!("{path}: new key, not in baseline (re-baseline to track)"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Obj};

    fn sample(messages: i64, n: i64, ms: f64) -> Value {
        Obj::new()
            .field("bench", "demo")
            .field("n", n)
            .field("acceptance", Obj::new().field("met", true).field("min_speedup", 5.0).build())
            .field(
                "commits",
                crate::json::Value::Array(vec![Obj::new()
                    .field("rounds", 10i64)
                    .field("messages", messages)
                    .field("color_hash", "abc123")
                    .field("delta_ms", ms)
                    .build()]),
            )
            .build()
    }

    #[test]
    fn identical_runs_pass() {
        let r = check(&sample(100, 5, 1.0), &sample(100, 5, 1.1));
        assert!(r.passed(), "{:?}", r.failures);
        // Wall delta is a note, not a failure.
        assert!(r.notes.iter().any(|n| n.contains("delta_ms")));
    }

    #[test]
    fn cost_regression_fails_improvement_notes() {
        let r = check(&sample(100, 5, 1.0), &sample(120, 5, 1.0));
        assert!(!r.passed());
        assert!(r.failures[0].contains("messages"));
        let r = check(&sample(100, 5, 1.0), &sample(80, 5, 1.0));
        assert!(r.passed());
        assert!(r.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn parameter_change_fails() {
        let r = check(&sample(100, 5, 1.0), &sample(100, 6, 1.0));
        assert!(!r.passed());
        assert!(r.failures[0].contains('n'));
    }

    #[test]
    fn hash_change_fails_but_acceptance_is_wall() {
        let mut fresh = sample(100, 5, 1.0);
        // Flip the color hash: deterministic -> fatal.
        if let Value::Object(fields) = &mut fresh {
            if let Some((_, Value::Array(commits))) =
                fields.iter_mut().find(|(k, _)| k == "commits")
            {
                if let Value::Object(c) = &mut commits[0] {
                    c.iter_mut().find(|(k, _)| k == "color_hash").unwrap().1 =
                        Value::Str("zzz".into());
                }
            }
        }
        let r = check(&sample(100, 5, 1.0), &fresh);
        assert!(!r.passed());
        assert!(r.failures[0].contains("color_hash"));
        // acceptance.met flips are non-fatal (wall-derived).
        let mut fresh = sample(100, 5, 1.0);
        if let Value::Object(fields) = &mut fresh {
            if let Some((_, Value::Object(a))) = fields.iter_mut().find(|(k, _)| k == "acceptance")
            {
                a.iter_mut().find(|(k, _)| k == "met").unwrap().1 = Value::Bool(false);
            }
        }
        assert!(check(&sample(100, 5, 1.0), &fresh).passed());
    }

    #[test]
    fn environment_blocks_are_never_fatal() {
        // Thread counts and per-round worker traces are machine facts: the
        // pr1/pr2 benches keep them under "environment" so their counters
        // can join the deterministic baseline.
        let with_env = |threads: i64, workers: i64| {
            Obj::new()
                .field("bench", "demo")
                .field("rounds", 10i64)
                .field(
                    "environment",
                    Obj::new()
                        .field("threads_available", threads)
                        .field("per_round_workers", Value::Array(vec![Value::Int(workers)]))
                        .build(),
                )
                .build()
        };
        let r = check(&with_env(1, 1), &with_env(16, 8));
        assert!(r.passed(), "{:?}", r.failures);
        let flat = flatten(&with_env(4, 2));
        assert!(matches!(flat.get("environment.threads_available"), Some(Leaf::Wall(_))));
        assert!(matches!(flat.get("environment.per_round_workers[0]"), Some(Leaf::Wall(_))));
        assert!(matches!(flat.get("rounds"), Some(Leaf::Cost(_))));
    }

    #[test]
    fn missing_key_fails_new_key_notes() {
        let base = sample(100, 5, 1.0);
        let fresh = parse("{\"bench\": \"demo\"}").unwrap();
        assert!(!check(&base, &fresh).passed());
        let r = check(&parse("{\"bench\": \"demo\"}").unwrap(), &base);
        assert!(r.passed());
        assert!(r.notes.iter().any(|n| n.contains("new key")));
    }

    #[test]
    fn real_bench_files_flatten() {
        // The committed pr3 bench output parses and classifies sensibly.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json"))
                .expect("committed bench json");
        let v = parse(&text).unwrap();
        let flat = flatten(&v);
        assert!(matches!(flat.get("initial_build.messages"), Some(Leaf::Cost(_))));
        assert!(matches!(flat.get("n"), Some(Leaf::Exact(_))));
        assert!(matches!(flat.get("commits[0].incremental_ms"), Some(Leaf::Wall(_))));
        assert!(matches!(flat.get("acceptance.met"), Some(Leaf::Wall(_))));
    }
}
