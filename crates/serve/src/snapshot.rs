//! Lock-free published snapshots: a swappable `Arc<T>` cell.
//!
//! Every tenant publishes an immutable [`Arc`] snapshot of its committed
//! state after each commit; readers grab the current one without taking
//! any lock the worker could be holding (a dashboard polling 10k tenants
//! must never stall a commit, and a slow reader must never block the
//! writer). [`Swap`] is that cell: writers [`Swap::store`] a fresh `Arc`,
//! readers [`Swap::load`] whichever value is current.
//!
//! # How it stays safe without epochs or hazard pointers
//!
//! The cell owns one strong count on the current value (held as the raw
//! pointer in `ptr`) and one on every retired value parked in the
//! `graveyard`. A reader announces itself in `readers`, *then* reads the
//! pointer and bumps its strong count; a writer swaps the pointer, parks
//! the old value, and reclaims parked values only when it observes
//! `readers == 0`. All accesses are `SeqCst`, so the operations of any
//! reader and any writer interleave in one total order: if the writer's
//! `readers` check observed 0, the reader's announcement — and therefore
//! its pointer read — is ordered after it, and the reader sees the *new*
//! pointer; if the reader announced first, the writer observes
//! `readers > 0` and leaves the graveyard alone. Either way no pointer is
//! freed between a reader loading it and bumping its count. Retired
//! values linger only while readers are mid-`load` (a handful of
//! instructions); the next quiet store — or drop of the cell — reclaims
//! them.
//!
//! This is the only unsafe code in `deco-serve`, kept to this module and
//! exercised by a dedicated two-thread stress test.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free swappable `Arc<T>` cell: writers replace the value, readers
/// clone out the current one. See the module docs for the reclamation
/// protocol.
#[derive(Debug)]
pub struct Swap<T> {
    /// `Arc::into_raw` of the current value; the cell owns one strong
    /// count through it.
    ptr: AtomicPtr<T>,
    /// Readers currently between announcing themselves and bumping the
    /// strong count of the pointer they read.
    readers: AtomicUsize,
    /// Retired values (each still carrying the strong count the cell held
    /// while they were current), awaiting a quiet moment to drop.
    graveyard: Mutex<Vec<*const T>>,
}

// SAFETY: the cell hands out only `Arc<T>` clones and owns its raw
// pointers exactly like an `Arc<T>` field would; `T: Send + Sync` makes
// sharing and dropping from any thread sound.
unsafe impl<T: Send + Sync> Send for Swap<T> {}
unsafe impl<T: Send + Sync> Sync for Swap<T> {}

impl<T> Swap<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> Swap<T> {
        Swap {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// The current value, cloned out lock-free (no mutex is ever taken on
    /// this path).
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` came out of `Arc::into_raw` and the cell still owns
        // a strong count on it: any writer that retired `p` after our
        // `readers` announcement observes `readers > 0` and defers the
        // drop (module docs); a writer that retired it *before* our
        // announcement is ordered before our pointer read in the SeqCst
        // total order, so we would have read its replacement instead.
        unsafe { Arc::increment_strong_count(p) };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: the strong count bumped above is the one this
        // `from_raw` adopts.
        unsafe { Arc::from_raw(p) }
    }

    /// Publishes `value`, retiring the previous one. Callers serialize
    /// stores per cell (in `deco-serve` the tenant's executor lock does);
    /// concurrent stores are still memory-safe, they only contend on the
    /// graveyard.
    pub fn store(&self, value: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(value).cast_mut(), Ordering::SeqCst);
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut graveyard = self.graveyard.lock().expect("graveyard poisoned");
        graveyard.push(old.cast_const());
        if self.readers.load(Ordering::SeqCst) == 0 {
            for p in graveyard.drain(..) {
                // SAFETY: each parked pointer carries the strong count the
                // cell held while it was current, and no reader can still
                // be mid-`load` on it (readers was 0 after it was retired;
                // see the module docs for the ordering argument).
                drop(unsafe { Arc::from_raw(p) });
            }
        }
    }
}

impl<T> Drop for Swap<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers remain.
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        for p in self.graveyard.get_mut().expect("graveyard poisoned").drain(..) {
            // SAFETY: parked pointers each carry one owned strong count.
            drop(unsafe { Arc::from_raw(p) });
        }
        // SAFETY: the current pointer carries the cell's strong count.
        drop(unsafe { Arc::from_raw(self.ptr.get_mut().cast_const()) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest_store() {
        let cell = Swap::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // The retired value is reclaimed by the next quiet store.
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn dropping_the_cell_releases_current_and_retired_values() {
        let probe = Arc::new(0u64);
        let cell = Swap::new(probe.clone());
        cell.store(Arc::new(1)); // parks the probe in the graveyard
        drop(cell);
        assert_eq!(Arc::strong_count(&probe), 1, "cell must drop its counts");
    }

    #[test]
    fn concurrent_reads_and_writes_stay_coherent() {
        // A writer churning epochs against reader threads hammering
        // `load`: every loaded value must be a published epoch, monotone
        // per reader, and nothing may crash or leak (miri-style UB would
        // show up as torn reads of the boxed value here). Readers run a
        // fixed number of loads and the writer stores until every reader
        // is done, so the test exercises genuine overlap even on a
        // single-core box where a stop-flag design would let the writer
        // finish before any reader got scheduled.
        let cell = Arc::new(Swap::new(Arc::new(0u64)));
        let done = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = *cell.load();
                        assert!(v >= last, "epochs went backwards: {v} < {last}");
                        last = v;
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let mut epoch = 0u64;
        while done.load(Ordering::SeqCst) < 3 {
            epoch += 1;
            cell.store(Arc::new(epoch));
        }
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(*cell.load(), epoch);
    }
}
