//! The distributed polynomial-code color-reduction protocol.
//!
//! This single protocol executes both Linial reductions (Lemma 2.1(1)) and
//! Kuhn's defective reductions (Lemma 2.1(3) / Theorem 4.7): each round,
//! every vertex broadcasts its current color, interprets its own and its
//! neighbors' colors as polynomials over GF(q) (see [`crate::math`]), and
//! picks an evaluation point:
//!
//! * **Linial step** (defect budget 0, `q > k·Δ`): the smallest point at
//!   which it collides with *no* neighbor — a proper coloring stays proper;
//! * **Kuhn step** (`q >= ⌈k·Δ/δ⌉`): the point minimizing the number of
//!   collisions, which adds at most `⌊k·Δ/q⌋ <= δ` defect.
//!
//! The protocol is *group-aware*: vertices carry a group label and ignore
//! neighbors in other groups, which is how Procedure Legal-Color runs its
//! recursive invocations on all ψ-color classes simultaneously (Algorithm 2,
//! line 7: "for i = 1..p in parallel").

use crate::math::{digits_base, poly_eval, CodeStep};
use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::Vertex;
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats, SharedConfig};

/// Per-vertex state of the code-reduction protocol.
#[derive(Debug)]
pub struct CodeReduction {
    group: u64,
    group_domain: u64,
    color: u64,
    steps: SharedConfig<Vec<CodeStep>>,
    applied: usize,
}

impl CodeReduction {
    fn msg(&self) -> FieldMsg {
        let palette = self.steps[self.applied].from_palette;
        FieldMsg::new(&[(self.group, self.group_domain), (self.color, palette)])
    }

    fn apply_step(&mut self, same_group_colors: &[u64]) {
        let step = self.steps[self.applied];
        let k = step.k as usize;
        let q = step.q;
        let mine = digits_base(self.color, q, k + 1);
        let nbr_polys: Vec<Vec<u64>> = same_group_colors
            .iter()
            .filter(|&&c| c != self.color)
            .map(|&c| digits_base(c, q, k + 1))
            .collect();
        // Pick the evaluation point with the fewest collisions; for Linial
        // steps (q > kΔ) a zero-collision point always exists and is taken.
        let mut best_x = 0u64;
        let mut best_collisions = usize::MAX;
        for x in 0..q {
            let my_val = poly_eval(&mine, x, q);
            let collisions = nbr_polys.iter().filter(|p| poly_eval(p, x, q) == my_val).count();
            if collisions < best_collisions {
                best_collisions = collisions;
                best_x = x;
                if collisions == 0 {
                    break;
                }
            }
        }
        debug_assert!(
            step.defect_budget > 0 || best_collisions == 0,
            "Linial step must find a collision-free point"
        );
        self.color = best_x * q + poly_eval(&mine, best_x, q);
        self.applied += 1;
    }
}

impl Protocol for CodeReduction {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        if self.steps.is_empty() {
            return Vec::new();
        }
        ctx.broadcast(self.msg())
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        if self.applied >= self.steps.len() {
            return Action::halt();
        }
        let same_group: Vec<u64> = inbox
            .iter()
            .filter(|(_, m)| m.field(0) == self.group)
            .map(|(_, m)| m.field(1))
            .collect();
        self.apply_step(&same_group);
        if self.applied == self.steps.len() {
            Action::halt()
        } else {
            Action::Broadcast(self.msg())
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.color
    }
}

/// Runs a code-reduction schedule over the network.
///
/// `groups[v]` is the group label of vertex `v` (use all-zeros for an
/// ungrouped run); `group_domain` bounds the label values (for message-size
/// accounting); `init[v]` is the starting color, which must be proper
/// *within groups* and fit in `steps\[0\].from_palette`.
///
/// Returns the final colors and the run statistics. An empty schedule costs
/// zero rounds.
pub fn run_code_reduction(
    net: &Network<'_>,
    groups: &[u64],
    group_domain: u64,
    init: &[u64],
    steps: Vec<CodeStep>,
) -> (Vec<u64>, RunStats) {
    assert_eq!(groups.len(), net.graph().n(), "one group per vertex");
    assert_eq!(init.len(), net.graph().n(), "one initial color per vertex");
    if steps.is_empty() {
        return (init.to_vec(), RunStats::zero());
    }
    let steps = SharedConfig::new(steps);
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("code-reduction", |ctx| CodeReduction {
        group: groups[ctx.vertex],
        group_domain,
        color: init[ctx.vertex],
        steps: SharedConfig::clone(&steps),
        applied: 0,
    });
    (outputs, pl.into_stats())
}

/// The *oriented* variant of the code reduction: every vertex only avoids
/// its **out-neighbors** under the acyclic orientation "toward smaller
/// `(rank, ident)`". Since each edge is avoided by its tail, the coloring is
/// proper on the whole graph, but the polynomial field only needs
/// `q > k·d` where `d` bounds the *out*-degree — this is how the
/// forest-decomposition baseline gets `O(a²)` colors from an out-degree-`a`
/// orientation.
#[derive(Debug)]
pub struct OrientedCodeReduction {
    rank: u64,
    rank_domain: u64,
    color: u64,
    steps: SharedConfig<Vec<CodeStep>>,
    applied: usize,
}

impl OrientedCodeReduction {
    fn msg(&self) -> FieldMsg {
        let palette = self.steps[self.applied].from_palette;
        FieldMsg::new(&[(self.rank, self.rank_domain), (self.color, palette)])
    }
}

impl Protocol for OrientedCodeReduction {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        if self.steps.is_empty() {
            return Vec::new();
        }
        ctx.broadcast(self.msg())
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        if self.applied >= self.steps.len() {
            return Action::halt();
        }
        let step = self.steps[self.applied];
        let mine = (self.rank, ctx.ident);
        let out_colors: Vec<u64> = inbox
            .iter()
            .filter(|(sender, m)| (m.field(0), ctx.ident_of(*sender)) < mine)
            .map(|(_, m)| m.field(1))
            .collect();
        // Reuse the CodeReduction step logic through a scratch state.
        let mut scratch = CodeReduction {
            group: 0,
            group_domain: 1,
            color: self.color,
            steps: SharedConfig::new(vec![step]),
            applied: 0,
        };
        scratch.apply_step(&out_colors);
        self.color = scratch.color;
        self.applied += 1;
        if self.applied == self.steps.len() {
            Action::halt()
        } else {
            Action::Broadcast(self.msg())
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.color
    }
}

/// Runs an oriented code-reduction schedule: vertices avoid only neighbors
/// with smaller `(rank, ident)`. `init` must be proper along oriented edges
/// (globally distinct values always qualify). See [`OrientedCodeReduction`].
pub fn run_oriented_code_reduction(
    net: &Network<'_>,
    ranks: &[u64],
    rank_domain: u64,
    init: &[u64],
    steps: Vec<CodeStep>,
) -> (Vec<u64>, RunStats) {
    assert_eq!(ranks.len(), net.graph().n(), "one rank per vertex");
    assert_eq!(init.len(), net.graph().n(), "one initial color per vertex");
    if steps.is_empty() {
        return (init.to_vec(), RunStats::zero());
    }
    let steps = SharedConfig::new(steps);
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("oriented-code-reduction", |ctx| OrientedCodeReduction {
        rank: ranks[ctx.vertex],
        rank_domain: rank_domain.max(1),
        color: init[ctx.vertex],
        steps: SharedConfig::clone(&steps),
        applied: 0,
    });
    (outputs, pl.into_stats())
}

/// Theorem 4.7 (Kuhn \[19\]): refine a `d'`-defective `M`-coloring into a
/// `d`-defective `O(((Λ-d')/(d+1-d'))²)`-coloring in `O(log* M)` rounds.
///
/// The argmin steps only ever *add* defect (same-colored neighbors share a
/// polynomial and collide at every point), so scheduling the added budget
/// to `d - d'` preserves the hard bound: the result is `d`-defective.
/// The paper uses this with `d' = 0` and the auxiliary `O(Δ²)`-coloring ρ
/// as input, which is what removes the `log* n` from every recursion level
/// (Section 4.2).
///
/// Returns `(colors, palette_bound, stats)`.
///
/// # Panics
///
/// Panics if `d < d_current` or the input sizes disagree.
#[allow(clippy::too_many_arguments)] // the paper's parameter tuple, verbatim
pub fn refine_defective(
    net: &Network<'_>,
    groups: &[u64],
    group_domain: u64,
    colors: &[u64],
    palette: u64,
    lambda: u64,
    d_current: u64,
    d_target: u64,
) -> (Vec<u64>, u64, RunStats) {
    assert!(d_target >= d_current, "cannot reduce defect by refining");
    let steps = crate::math::kuhn_schedule(palette, lambda, d_target - d_current);
    let out_palette = steps.last().map(|s| s.to_palette).unwrap_or(palette);
    let (out, stats) = run_code_reduction(net, groups, group_domain, colors, steps);
    (out, out_palette, stats)
}

/// Computes Linial's legal `O(Δ²)`-coloring from scratch (colors start as
/// `ident - 1`), in `O(log* n)` rounds (Lemma 2.1(1)).
///
/// Returns `(colors, palette_bound, stats)`.
pub fn linial_coloring(net: &Network<'_>) -> (Vec<u64>, u64, RunStats) {
    let g = net.graph();
    let n = g.n() as u64;
    let delta = g.max_degree() as u64;
    let steps = crate::math::linial_schedule(n.max(1), delta);
    let palette = steps.last().map(|s| s.to_palette).unwrap_or(n.max(1));
    let groups = vec![0u64; g.n()];
    let init: Vec<u64> = (0..g.n()).map(|v| g.ident(v) - 1).collect();
    let (colors, stats) = run_code_reduction(net, &groups, 1, &init, steps);
    (colors, palette, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{kuhn_schedule, linial_final_palette, linial_schedule, log_star};
    use deco_graph::coloring::VertexColoring;
    use deco_graph::generators;

    #[test]
    fn linial_produces_proper_small_palette() {
        for g in [
            generators::complete(8),
            generators::cycle(17),
            generators::random_bounded_degree(120, 6, 3),
            generators::clique_with_pendants(9),
        ] {
            let net = Network::new(&g);
            let (colors, palette, stats) = linial_coloring(&net);
            let c = VertexColoring::new(colors);
            assert!(c.is_proper(&g), "Linial output must be proper");
            assert!(c.color_bound() <= palette);
            let delta = g.max_degree() as u64;
            let bound = crate::math::next_prime(delta + 2).pow(2);
            assert!(palette <= 4 * bound.max(16));
            // O(log* n) rounds.
            assert!(stats.rounds as u32 <= log_star(g.n() as u64) + 4);
        }
    }

    #[test]
    fn linial_respects_groups() {
        // Two interleaved groups on a clique: within-group properness only.
        let g = generators::complete(10);
        let net = Network::new(&g);
        let groups: Vec<u64> = (0..10).map(|v| (v % 2) as u64).collect();
        // Within-group degree is 4.
        let steps = linial_schedule(10, 4);
        let init: Vec<u64> = (0..10).map(|v| g.ident(v) - 1).collect();
        let (colors, _) = run_code_reduction(&net, &groups, 2, &init, steps);
        for u in 0..10 {
            for v in 0..10 {
                if u != v && groups[u] == groups[v] {
                    assert_ne!(colors[u], colors[v], "same-group clique vertices collide");
                }
            }
        }
    }

    #[test]
    fn kuhn_defect_within_target() {
        for (n, delta_cap, p) in [(150, 12, 3u64), (150, 12, 2), (200, 16, 4)] {
            let g = generators::random_bounded_degree(n, delta_cap, 7);
            let delta = g.max_degree() as u64;
            let net = Network::new(&g);
            let (lin, palette, _) = linial_coloring(&net);
            let target = delta / p;
            let steps = kuhn_schedule(palette, delta, target);
            let groups = vec![0u64; g.n()];
            let (colors, stats) = run_code_reduction(&net, &groups, 1, &lin, steps.clone());
            let c = VertexColoring::new(colors);
            assert!(
                c.defect(&g) as u64 <= target,
                "defect {} exceeds target {target}",
                c.defect(&g)
            );
            if let Some(last) = steps.last() {
                assert!(c.color_bound() <= last.to_palette);
            }
            assert_eq!(stats.rounds, steps.len());
        }
    }

    #[test]
    fn theorem_4_7_refinement_chain() {
        // Refine 0-defective -> Δ/4-defective -> Δ/2-defective; the defect
        // bound must hold at every stage and palettes must shrink.
        let g = generators::random_bounded_degree(200, 24, 47);
        let delta = g.max_degree() as u64;
        let net = Network::new(&g);
        let groups = vec![0u64; g.n()];
        let (rho, rho_palette, _) = linial_coloring(&net);
        let (c1, p1, s1) = crate::code_reduction::refine_defective(
            &net,
            &groups,
            1,
            &rho,
            rho_palette,
            delta,
            0,
            delta / 4,
        );
        let vc1 = VertexColoring::new(c1.clone());
        assert!(vc1.defect(&g) as u64 <= delta / 4);
        assert!(p1 <= rho_palette);
        let (c2, p2, s2) = crate::code_reduction::refine_defective(
            &net,
            &groups,
            1,
            &c1,
            p1,
            delta,
            delta / 4,
            delta / 2,
        );
        let vc2 = VertexColoring::new(c2);
        assert!(vc2.defect(&g) as u64 <= delta / 2);
        assert!(p2 <= p1);
        // O(log* M) rounds each.
        assert!(s1.rounds <= 6 && s2.rounds <= 6);
    }

    #[test]
    #[should_panic(expected = "cannot reduce defect")]
    fn refinement_rejects_decreasing_defect() {
        let g = generators::path(4);
        let net = Network::new(&g);
        let groups = vec![0u64; 4];
        let init = vec![0, 1, 0, 1];
        let _ = crate::code_reduction::refine_defective(&net, &groups, 1, &init, 2, 1, 3, 1);
    }

    #[test]
    fn empty_schedule_is_free() {
        let g = generators::path(5);
        let net = Network::new(&g);
        let init = vec![0, 1, 0, 1, 0];
        let groups = vec![0u64; 5];
        let (colors, stats) = run_code_reduction(&net, &groups, 1, &init, Vec::new());
        assert_eq!(colors, init);
        assert_eq!(stats, RunStats::zero());
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let g = generators::random_bounded_degree(300, 8, 5);
        let net = Network::new(&g);
        let (_, _, stats) = linial_coloring(&net);
        // First round sends a color from a palette of n: ~ ⌈log n⌉ + group.
        assert!(stats.max_message_bits <= 2 * (64 - (g.n() as u64).leading_zeros() as usize));
    }

    #[test]
    fn shuffled_idents_still_proper() {
        let g = generators::shuffle_idents(&generators::random_bounded_degree(80, 7, 2), 99);
        let net = Network::new(&g);
        let (colors, _, _) = linial_coloring(&net);
        assert!(VertexColoring::new(colors).is_proper(&g));
    }

    #[test]
    fn final_palette_matches_helper() {
        let g = generators::random_bounded_degree(64, 5, 1);
        let net = Network::new(&g);
        let (_, palette, _) = linial_coloring(&net);
        assert_eq!(palette, linial_final_palette(64, g.max_degree() as u64));
    }
}
