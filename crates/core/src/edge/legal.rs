//! The edge variant of **Procedure Legal-Color** — Theorem 5.5.
//!
//! The recursion mirrors Algorithm 2 on the (implicit) line graph, whose
//! neighborhood independence is 2 (Lemma 5.1), with two paper-prescribed
//! changes:
//!
//! * step 1 of every Defective-Color level uses the `O(1)`-round labeling of
//!   Corollary 5.4 instead of a `log* n`-round defective coloring, so levels
//!   cost `O((b·p)²)` rounds flat (`O(b²·p³)` with short messages);
//! * the bottom level runs Panconesi–Rizzi `(2Λ̂-1)`-edge-coloring on every
//!   class in parallel — the only `log* n` term in the whole algorithm.
//!
//! The recursion tracks `W`, the maximum number of *same-class edges at a
//! single vertex* (so the class's line-graph degree is at most `2W-2`).
//! A level maps `W` to `W' = 2·(4⌈W/(b·p)⌉ + ⌊(2W-2)/p⌋) + 3`
//! (Theorem 3.7 with `c = 2` plus one, since a per-edge line-degree bound
//! of `Λ'` allows `Λ'+1` same-class edges at one endpoint).

pub use crate::edge::defective::MessageMode;
use crate::edge::defective::{edge_defective_color_in_groups, EdgeDefectiveRun};
use crate::edge::panconesi_rizzi::pr_edge_color_in_groups;
use crate::params::{LegalParams, ParamError};
use crate::pipeline::Pipeline;
use deco_graph::coloring::EdgeColoring;
use deco_graph::Graph;
use deco_local::{Network, RunStats};

/// Trace of one recursion level of the edge algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLevelTrace {
    /// Level index.
    pub level: usize,
    /// Per-vertex same-class edge bound `W` entering the level.
    pub w_in: u64,
    /// The bound after the level.
    pub w_out: u64,
    /// The level's φ palette (bounds its epoch count).
    pub phi_palette: u64,
    /// Rounds spent in the level.
    pub rounds: usize,
    /// Classes after the level.
    pub classes: u64,
}

/// Result of the edge Legal-Color algorithm.
#[derive(Debug, Clone)]
pub struct EdgeRun {
    /// A legal edge coloring of the input graph.
    pub coloring: EdgeColoring,
    /// Palette bound: colors lie in `0..theta`.
    pub theta: u64,
    /// Recursion trace.
    pub levels: Vec<EdgeLevelTrace>,
    /// The `W` bound at the bottom (PR palette is `2W-1` per class).
    pub bottom_w: u64,
    /// Total statistics.
    pub stats: RunStats,
}

/// One level's contraction of the per-vertex same-class edge bound `W`
/// (see the module docs).
pub fn edge_next_w(b: u64, p: u64, w: u64) -> u64 {
    let d_phi = 4 * w.div_ceil(b * p);
    let lambda_l = (2 * w).saturating_sub(2);
    (d_phi + lambda_l / p) * 2 + 3
}

/// A practical parameter preset for the edge algorithm with `O(log Δ)`
/// recursion depth: `p` is the smallest value contracting `W` by at least
/// 25% per level for the given `b`, and `λ` sits just above the contraction
/// fixpoint. `b` trades colors (smaller with larger `b`) for rounds
/// (`O((b·p)²)` per level), exactly the paper's tradeoff knob.
pub fn edge_log_depth(b: u64) -> LegalParams {
    let b = b.max(1);
    // Affine bound: next_w(w) <= (8 + 4b)/(b·p)·w + 11. Pick p so the slope
    // is at most 3/4, and λ past the fixpoint with a unit margin.
    let p = (4 * (8 + 4 * b)).div_ceil(3 * b).max(2);
    let denom = b * p - (8 + 4 * b);
    let lambda = (12 * b * p).div_ceil(denom);
    LegalParams { b, p, lambda }
}

/// Validates edge parameters against the affine contraction bound
/// `next_w(w) <= (8 + 4b)/(b·p)·w + 11` (the ceil in Corollary 5.4's defect
/// makes the exact map non-monotone, so a pointwise check at `λ+1` is not
/// sufficient): requires slope `< 1` and
/// `λ >= ⌈12·b·p / (b·p - 8 - 4b)⌉`, which guarantees
/// `next_w(w) < w` for every `w > λ`.
///
/// # Errors
///
/// Returns [`ParamError`] when the parameters cannot contract.
pub fn validate_edge_params(params: &LegalParams) -> Result<(), ParamError> {
    if params.b < 1 {
        return Err(ParamError::Degenerate { what: "b must be >= 1" });
    }
    if params.p < 2 {
        return Err(ParamError::Degenerate { what: "p must be >= 2" });
    }
    let num = 8 + 4 * params.b;
    if params.b * params.p <= num {
        let at = params.lambda + 1;
        return Err(ParamError::NoContraction {
            lambda: at,
            next: edge_next_w(params.b, params.p, at),
        });
    }
    let min_lambda = (12 * params.b * params.p).div_ceil(params.b * params.p - num);
    if params.lambda < min_lambda {
        return Err(ParamError::ThresholdTooSmall { lambda: params.lambda, min: min_lambda });
    }
    Ok(())
}

/// The edge Legal-Color algorithm on a pre-partitioned edge set: classes of
/// `edge_groups0` are refined recursively and colored from disjoint
/// palettes. `w0` bounds the same-class edges at any vertex of the initial
/// partition.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters cannot contract.
pub fn edge_color_in_groups(
    net: &Network<'_>,
    edge_groups0: &[u64],
    group_domain0: u64,
    params: LegalParams,
    w0: u64,
    mode: MessageMode,
) -> Result<EdgeRun, ParamError> {
    validate_edge_params(&params)?;
    let g = net.graph();
    let mut pl = Pipeline::new(net);
    let mut groups = edge_groups0.to_vec();
    let mut group_domain = group_domain0.max(1);
    let mut w = w0.max(1);
    let mut levels = Vec::new();

    while w > params.lambda {
        let next = edge_next_w(params.b, params.p, w);
        if next >= w {
            break; // safety net; validation should prevent this
        }
        let run: EdgeDefectiveRun =
            edge_defective_color_in_groups(net, &groups, params.b, params.p, w, mode);
        for (group, &psi) in groups.iter_mut().zip(&run.psi) {
            *group = *group * params.p + psi;
        }
        group_domain *= params.p;
        pl.absorb("level/edge-defective-color", run.stats);
        levels.push(EdgeLevelTrace {
            level: levels.len(),
            w_in: w,
            w_out: next,
            phi_palette: run.phi_palette,
            rounds: run.stats.rounds,
            classes: group_domain,
        });
        w = next;
    }

    // Bottom: Panconesi–Rizzi (2Ŵ-1)-edge-coloring per class, in parallel.
    let (pr, pr_stats) = pr_edge_color_in_groups(net, &groups, w);
    pl.absorb("bottom/panconesi-rizzi", pr_stats);
    let palette = 2 * w - 1;
    let colors: Vec<u64> = (0..g.m()).map(|e| groups[e] * palette + pr[e]).collect();
    Ok(EdgeRun {
        coloring: EdgeColoring::new(colors),
        theta: group_domain * palette,
        levels,
        bottom_w: w,
        stats: pl.into_stats(),
    })
}

/// Theorem 5.5: a legal `O(Δ)`- to `O(Δ^{1+η})`-edge-coloring of a general
/// graph (depending on `params`), in `O(log Δ) + log* n`-shaped time with
/// the recursion preset [`edge_log_depth`].
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters cannot contract.
///
/// # Example
///
/// ```
/// use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
/// use deco_graph::generators;
///
/// let g = generators::random_bounded_degree(150, 10, 7);
/// let run = edge_color(&g, edge_log_depth(1), MessageMode::Long)?;
/// assert!(run.coloring.is_proper(&g));
/// # Ok::<(), deco_core::params::ParamError>(())
/// ```
pub fn edge_color(
    g: &Graph,
    params: LegalParams,
    mode: MessageMode,
) -> Result<EdgeRun, ParamError> {
    let net = Network::new(g);
    let groups = vec![0u64; g.m()];
    edge_color_in_groups(&net, &groups, 1, params, g.max_degree() as u64, mode)
}

/// The color bound `ϑ = p^r·(2Ŵ-1)` the algorithm will return for maximum
/// degree `delta` (the edge analogue of Lemma 4.4).
pub fn edge_color_bound(params: &LegalParams, delta: u64) -> u64 {
    let mut w = delta.max(1);
    let mut r = 0u32;
    while w > params.lambda {
        let next = edge_next_w(params.b, params.p, w);
        if next >= w {
            break;
        }
        w = next;
        r += 1;
    }
    (2 * w - 1).saturating_mul(params.p.saturating_pow(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    fn check(g: &Graph, params: LegalParams, mode: MessageMode) -> EdgeRun {
        let run = edge_color(g, params, mode).expect("valid params");
        assert!(run.coloring.is_proper(g), "edge coloring must be proper");
        assert!(run.coloring.colors().iter().all(|&c| c < run.theta));
        assert_eq!(run.theta, edge_color_bound(&params, g.max_degree() as u64));
        run
    }

    #[test]
    fn preset_validates() {
        for b in 1..=4 {
            let p = edge_log_depth(b);
            validate_edge_params(&p).expect("preset must validate");
            // Depth grows logarithmically.
            let mut w = 1u64 << 14;
            let mut depth = 0;
            while w > p.lambda {
                w = edge_next_w(p.b, p.p, w);
                depth += 1;
                assert!(depth < 64);
            }
            assert!(depth >= 2, "preset must recurse on large Δ");
        }
    }

    #[test]
    fn proper_on_random_graphs_long_mode() {
        let g = generators::random_bounded_degree(120, 12, 3);
        let run = check(&g, edge_log_depth(1), MessageMode::Long);
        // Δ = 12 is below the preset threshold: no recursion, PR does the
        // work directly.
        assert!(run.levels.is_empty());
        assert_eq!(run.bottom_w, g.max_degree() as u64);
    }

    #[test]
    fn recursion_fires_on_dense_graphs() {
        // Δ big enough to exceed the preset threshold.
        let params = edge_log_depth(1);
        let g = generators::random_bounded_degree(400, (params.lambda + 10) as usize, 9);
        let run = check(&g, params, MessageMode::Long);
        assert!(
            !run.levels.is_empty(),
            "Δ = {} > λ = {} must recurse",
            g.max_degree(),
            params.lambda
        );
        for t in &run.levels {
            assert!(t.w_out < t.w_in);
        }
    }

    #[test]
    fn short_mode_equivalent_coloring() {
        let params = edge_log_depth(1);
        let g = generators::random_bounded_degree(160, (params.lambda + 4) as usize, 11);
        let long = check(&g, params, MessageMode::Long);
        let short = check(&g, params, MessageMode::Short);
        assert_eq!(long.coloring, short.coloring, "modes must agree");
        assert!(short.stats.rounds >= long.stats.rounds);
        assert!(short.stats.max_message_bits <= long.stats.max_message_bits);
    }

    #[test]
    fn star_and_clique_edge_cases() {
        for g in [generators::star(12), generators::complete(9)] {
            check(&g, edge_log_depth(1), MessageMode::Long);
        }
    }

    #[test]
    fn empty_and_tiny() {
        let g = deco_graph::Graph::empty(5);
        let run = check(&g, edge_log_depth(1), MessageMode::Long);
        assert!(run.coloring.is_empty());
        let g = deco_graph::Graph::from_edges(2, &[(0, 1)]).unwrap();
        check(&g, edge_log_depth(1), MessageMode::Long);
    }

    #[test]
    fn bad_params_rejected() {
        let g = generators::path(4);
        assert!(edge_color(&g, LegalParams::new(1, 2, 100), MessageMode::Long).is_err());
    }
}
