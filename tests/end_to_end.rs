//! End-to-end runs of every public coloring entry point over a battery of
//! graph families, checking validity and declared bounds.

use deco_core::baselines::forest_decomposition::{
    forest_decomposition_coloring, forest_decomposition_edge_coloring,
};
use deco_core::baselines::greedy::{greedy_edge_color, greedy_vertex_color};
use deco_core::baselines::randomized_trial::randomized_trial_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::edge::via_line_graph::edge_color_via_line_graph;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_core::randomized::{randomized_edge_color, randomized_vertex_color};
use deco_core::tradeoff::{tradeoff_edge_color, tradeoff_vertex_color};
use deco_graph::line_graph::line_graph;
use deco_graph::properties::neighborhood_independence;
use deco_graph::{generators, Graph};
use deco_local::Network;

fn edge_battery() -> Vec<(&'static str, Graph)> {
    let disconnected = {
        let mut b = Graph::builder(30);
        for (u, v) in generators::complete(10).edges() {
            b.add_edge(u, v).unwrap();
        }
        for (u, v) in generators::cycle(12).edges() {
            b.add_edge(u + 15, v + 15).unwrap();
        }
        b.build().unwrap()
    };
    vec![
        ("random sparse", generators::random_bounded_degree(150, 6, 21)),
        ("random denser", generators::random_bounded_degree(120, 14, 22)),
        ("clique", generators::complete(10)),
        ("star", generators::star(14)),
        ("grid", generators::grid(9, 9)),
        ("torus", generators::torus(6, 7)),
        ("tree", generators::random_tree(130, 23)),
        ("petersen", generators::petersen()),
        ("figure-1", generators::clique_with_pendants(9)),
        ("shuffled", generators::shuffle_idents(&generators::random_bounded_degree(90, 8, 24), 25)),
        ("hypercube", generators::hypercube(5)),
        ("barbell", generators::barbell(7, 4)),
        ("bipartite", generators::random_bipartite(20, 25, 120, 26)),
        ("kary tree", generators::kary_tree(4, 4)),
        ("friendship", generators::friendship(6)),
        ("disconnected", disconnected),
    ]
}

#[test]
fn every_edge_colorer_is_proper_everywhere() {
    for (name, g) in edge_battery() {
        if g.m() == 0 {
            continue;
        }
        let run = edge_color(&g, edge_log_depth(1), MessageMode::Long)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.coloring.is_proper(&g), "{name}: edge_color not proper");
        assert!(run.coloring.colors().iter().all(|&c| c < run.theta), "{name}: theta");

        let (pr, _) = pr_edge_color(&g);
        assert!(pr.is_proper(&g), "{name}: PR not proper");

        let (rt, _) = randomized_trial_edge_color(&g, 99);
        assert!(rt.is_proper(&g), "{name}: randomized trial not proper");

        let via = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
        assert!(via.coloring.is_proper(&g), "{name}: via-line-graph not proper");

        let (fd, _, _) = forest_decomposition_edge_coloring(&g);
        assert!(fd.is_proper(&g), "{name}: forest decomposition not proper");

        let greedy = greedy_edge_color(&g);
        assert!(greedy.is_proper(&g), "{name}: greedy not proper");
    }
}

#[test]
fn every_vertex_colorer_is_proper_on_bounded_ni_families() {
    let battery: Vec<(&str, Graph, u64)> = vec![
        ("line graph", line_graph(&generators::random_bounded_degree(70, 9, 31)), 2),
        ("fig-1", generators::clique_with_pendants(22), 2),
        ("unit disk", generators::unit_disk(130, 0.18, 32), 5),
        ("hypergraph r=3", generators::random_hypergraph(40, 120, 3, 33).line_graph(), 3),
        ("cycle", generators::cycle(40), 2),
    ];
    for (name, g, c) in battery {
        assert!(
            neighborhood_independence(&g) as u64 <= c,
            "{name}: c bound wrong for the test itself"
        );
        let net = Network::new(&g);
        let run = legal_color(&net, c, LegalParams::log_depth(c, 1))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.coloring.is_proper(&g), "{name}: legal_color not proper");

        let tr = tradeoff_vertex_color(&net, c, 3, LegalParams::log_depth(c, 1))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(tr.inner.coloring.is_proper(&g), "{name}: tradeoff not proper");

        let rand = randomized_vertex_color(&net, c, LegalParams::log_depth(c, 1), 77)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(rand.inner.coloring.is_proper(&g), "{name}: randomized not proper");

        let fd = forest_decomposition_coloring(&g);
        assert!(fd.coloring.is_proper(&g), "{name}: FD baseline not proper");

        let greedy = greedy_vertex_color(&g);
        assert!(greedy.is_proper(&g), "{name}: greedy not proper");
    }
}

#[test]
fn randomized_and_tradeoff_edge_variants() {
    let g = generators::random_bounded_degree(200, 16, 41);
    let run = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 5).unwrap();
    assert!(run.inner.coloring.is_proper(&g));

    let tr = tradeoff_edge_color(&g, 4, edge_log_depth(1), MessageMode::Long).unwrap();
    assert!(tr.inner.coloring.is_proper(&g));
    assert_eq!(tr.classes, 16);
}

#[test]
fn palettes_are_disjoint_across_classes() {
    // The final colors encode (class, bottom color): check the arithmetic
    // lines up with Lemma 4.4's palette decomposition.
    let g = generators::clique_with_pendants(40);
    let net = Network::new(&g);
    let params = LegalParams::log_depth(2, 1);
    let run = legal_color(&net, 2, params).unwrap();
    assert!(!run.levels.is_empty());
    let theta_bottom = run.bottom_lambda + 1;
    let classes = run.theta / theta_bottom;
    // Every color decomposes as class·ϑ' + bottom with bottom < ϑ'.
    for v in 0..g.n() {
        let color = run.coloring.color(v);
        assert!(color / theta_bottom < classes);
    }
}

#[test]
fn stats_compose_monotonically() {
    // Sequential phases only add: total rounds >= each phase's rounds.
    let g = generators::random_bounded_degree(250, 60, 43);
    let run = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    let level_rounds: usize = run.levels.iter().map(|l| l.rounds).sum();
    assert!(run.stats.rounds >= level_rounds);
    assert!(run.stats.messages > 0);
    assert!(run.stats.total_message_bits >= run.stats.messages); // >= 1 bit each
}
