//! Plain-text mutation traces: replayable, diffable churn workloads.
//!
//! A trace drives a [`MutableGraph`](crate::MutableGraph) (and the streaming
//! recolorer built on it) through a sequence of mutation batches. The format
//! follows the [`crate::io`] edge-list style — line-oriented, 0-based
//! vertices, `#` comments:
//!
//! ```text
//! # comment
//! t <n0>              header: initial vertex count (graph starts edgeless)
//! + <u> <v>           insert edge
//! - <u> <v>           delete edge
//! v <count>           add <count> vertices
//! i <vertex> <ident>  identifier override
//! shrink              compaction: drop isolated vertices, renumber survivors
//! commit              end of batch: apply everything queued since the last commit
//! ```
//!
//! Operations between two `commit` lines form one atomic batch. Operations
//! after the last `commit` are preserved by the round-trip but ignored by
//! replay drivers (a trace should end with `commit`).
//!
//! [`churn_trace`] generates the canonical benchmark workload: a seeded
//! random bounded-degree graph built in the first commit, followed by
//! commits that each delete and insert a fixed number of random edges
//! (steady-state churn at constant density). Same parameters ⇒ identical
//! trace text ⇒ identical replay, which is what the determinism contract
//! extends over.

use crate::{generators, Graph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert the undirected edge `(u, v)`.
    Insert(Vertex, Vertex),
    /// Delete the undirected edge `(u, v)`.
    Delete(Vertex, Vertex),
    /// Add this many vertices.
    AddVertices(usize),
    /// Override the identifier of a vertex.
    SetIdent(Vertex, u64),
    /// Drop all currently-isolated vertices and renumber the survivors
    /// (order preserved, identifiers carried) — the compaction op for
    /// long-running growth workloads, which otherwise accumulate isolated
    /// vertices at `O(n)` cost per commit. Operations after a `shrink` in
    /// the same batch address the compacted numbering.
    Shrink,
    /// Apply everything queued since the previous commit.
    Commit,
}

/// A parsed mutation trace: initial vertex count plus operations in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Initial vertex count (the graph starts with no edges).
    pub n0: usize,
    /// Operations, in file order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Number of `commit` lines.
    pub fn commit_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, TraceOp::Commit)).count()
    }

    /// The *net* edge churn of each commit batch: edges inserted that were
    /// not deleted again within the batch, and vice versa.
    ///
    /// This is the actual per-commit churn a replay will observe, which can
    /// exceed the nominal request of [`churn_trace`]: on a near-saturated
    /// graph its capacity fallback deletes extra edges to make room for the
    /// requested insertions (so `deleted > inserted` churn is the fallback's
    /// signature). A pair that toggles within one batch (deleted and
    /// reinserted, or inserted and deleted) cancels out, matching the net
    /// semantics of `CommitDelta`.
    ///
    /// Accounting is **by written pair label**. In a batch containing a
    /// `shrink`, ops before and after the compaction address different
    /// numberings, so labels no longer identify physical edges: a pair
    /// deleted pre-shrink and reinserted under its post-shrink label counts
    /// as one delete plus one insert here, while the replayed
    /// `CommitDelta` nets it out (and label collisions can cancel churn
    /// that is physically real). For exact cross-shrink accounting, replay
    /// the trace and read the deltas; batches without `shrink` — every
    /// generated churn workload — match the replay exactly.
    pub fn net_churn(&self) -> Vec<BatchChurn> {
        self.batches()
            .into_iter()
            .map(|batch| {
                // first/last op per pair: net insert = (Insert, Insert),
                // net delete = (Delete, Delete); mixed pairs cancel.
                // tidy: allow(hash-iter) — per-pair first/last flags; the
                // values() fold below only sums commutative counts.
                let mut seen: std::collections::HashMap<(Vertex, Vertex), (bool, bool)> =
                    std::collections::HashMap::new();
                for op in batch {
                    let (pair, is_insert) = match *op {
                        TraceOp::Insert(u, v) => ((u.min(v), u.max(v)), true),
                        TraceOp::Delete(u, v) => ((u.min(v), u.max(v)), false),
                        _ => continue,
                    };
                    seen.entry(pair)
                        .and_modify(|(_, last)| *last = is_insert)
                        .or_insert((is_insert, is_insert));
                }
                let mut churn = BatchChurn { inserted: 0, deleted: 0 };
                for &(first, last) in seen.values() {
                    match (first, last) {
                        (true, true) => churn.inserted += 1,
                        (false, false) => churn.deleted += 1,
                        _ => {}
                    }
                }
                churn
            })
            .collect()
    }

    /// The operations of each commit batch, in order (`commit` markers
    /// excluded; trailing uncommitted operations dropped).
    pub fn batches(&self) -> Vec<&[TraceOp]> {
        let mut out = Vec::new();
        let mut start = 0;
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, TraceOp::Commit) {
                out.push(&self.ops[start..i]);
                start = i + 1;
            }
        }
        out
    }
}

/// Net edge churn of one commit batch (see [`Trace::net_churn`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchChurn {
    /// Edges present after the batch that were absent before it.
    pub inserted: usize,
    /// Edges absent after the batch that were present before it.
    pub deleted: usize,
}

/// Error from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
    /// The `t` header is missing, duplicated, or not first.
    BadHeader,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadLine { line, what } => write!(f, "line {line}: {what}"),
            ParseTraceError::BadHeader => write!(f, "missing or duplicate 't' header"),
        }
    }
}

impl Error for ParseTraceError {}

/// Serializes a trace to the plain-text format (inverse of [`parse_trace`]).
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("t {}\n", trace.n0));
    for op in &trace.ops {
        match *op {
            TraceOp::Insert(u, v) => out.push_str(&format!("+ {u} {v}\n")),
            TraceOp::Delete(u, v) => out.push_str(&format!("- {u} {v}\n")),
            TraceOp::AddVertices(k) => out.push_str(&format!("v {k}\n")),
            TraceOp::SetIdent(v, ident) => out.push_str(&format!("i {v} {ident}\n")),
            TraceOp::Shrink => out.push_str("shrink\n"),
            TraceOp::Commit => out.push_str("commit\n"),
        }
    }
    out
}

/// Parses the trace format described in the module docs.
///
/// Structural validity only (tags and integer fields); range and existence
/// checks belong to the replaying [`MutableGraph`](crate::MutableGraph),
/// which knows the evolving topology.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed input.
///
/// # Example
///
/// ```
/// use deco_graph::trace;
///
/// let t = trace::parse_trace("t 3\n+ 0 1\n+ 1 2\ncommit\n- 0 1\ncommit\n")?;
/// assert_eq!(t.n0, 3);
/// assert_eq!(t.commit_count(), 2);
/// assert_eq!(trace::parse_trace(&trace::to_text(&t))?, t);
/// # Ok::<(), trace::ParseTraceError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<Trace, ParseTraceError> {
    let mut n0: Option<usize> = None;
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        // INVARIANT: splitting a non-empty trimmed line always yields a first token.
        let tag = parts.next().expect("nonempty line has a first token");
        let mut next_num = |what: &str| -> Result<u64, ParseTraceError> {
            parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| ParseTraceError::BadLine {
                line: line_no,
                what: format!("expected {what}"),
            })
        };
        match tag {
            "t" => {
                if n0.is_some() {
                    return Err(ParseTraceError::BadHeader);
                }
                n0 = Some(next_num("vertex count")? as usize);
                continue;
            }
            "+" => ops.push(TraceOp::Insert(
                next_num("endpoint")? as usize,
                next_num("endpoint")? as usize,
            )),
            "-" => ops.push(TraceOp::Delete(
                next_num("endpoint")? as usize,
                next_num("endpoint")? as usize,
            )),
            "v" => ops.push(TraceOp::AddVertices(next_num("vertex count")? as usize)),
            "i" => {
                ops.push(TraceOp::SetIdent(next_num("vertex")? as usize, next_num("identifier")?))
            }
            "shrink" => ops.push(TraceOp::Shrink),
            "commit" => ops.push(TraceOp::Commit),
            other => {
                return Err(ParseTraceError::BadLine {
                    line: line_no,
                    what: format!("unknown tag '{other}'"),
                });
            }
        }
        if n0.is_none() {
            return Err(ParseTraceError::BadHeader);
        }
    }
    Ok(Trace { n0: n0.ok_or(ParseTraceError::BadHeader)?, ops })
}

/// The canonical seeded churn workload (see the module docs).
///
/// Commit 1 builds the same graph as
/// [`generators::random_bounded_degree`]`(n, delta_cap, seed)`; each of the
/// `churn_commits` following commits deletes `churn` random existing edges
/// and inserts `churn` random new edges respecting the degree cap (one
/// batch, deletions first). Deterministic for fixed parameters.
///
/// # Panics
///
/// Panics if `delta_cap >= n`, or if the graph runs out of edges or of
/// degree capacity for the requested churn.
pub fn churn_trace(
    n: usize,
    delta_cap: usize,
    churn_commits: usize,
    churn: usize,
    seed: u64,
) -> Trace {
    let base: Graph = generators::random_bounded_degree(n, delta_cap, seed);
    churn_trace_from(&base, delta_cap, churn_commits, churn, seed)
}

/// The heavy-tailed variant of [`churn_trace`]: commit 1 builds
/// [`generators::random_power_law`]`(n, d_max, seed)` — hubs at Δ = `d_max`,
/// sparse tail — and the churn batches respect `d_max` as the cap. With
/// `d_max` above the palette-depth cutoff λ = 48 this drives the streaming
/// engine's long-mode and spill paths on a realistic workload, which the
/// bounded-degree [`churn_trace`] (typically Δ ≤ 8) never reaches.
///
/// # Panics
///
/// Same conditions as [`churn_trace`].
pub fn power_law_churn_trace(
    n: usize,
    d_max: usize,
    churn_commits: usize,
    churn: usize,
    seed: u64,
) -> Trace {
    let base: Graph = generators::random_power_law(n, d_max, seed);
    churn_trace_from(&base, d_max, churn_commits, churn, seed)
}

/// [`churn_trace`] over an explicit base graph: commit 1 inserts exactly
/// `base`'s edges, then `churn_commits` seeded churn batches follow under
/// the given degree cap. Callers that already built (or inspected) the base
/// graph avoid generating it twice; `churn_trace(n, cap, c, k, s)` is
/// exactly `churn_trace_from(&random_bounded_degree(n, cap, s), cap, c, k, s)`.
///
/// # Panics
///
/// Same conditions as [`churn_trace`]; additionally if `base` exceeds
/// `delta_cap`.
pub fn churn_trace_from(
    base: &Graph,
    delta_cap: usize,
    churn_commits: usize,
    churn: usize,
    seed: u64,
) -> Trace {
    let n = base.n();
    assert!(base.max_degree() <= delta_cap, "base graph exceeds the degree cap");
    let mut ops: Vec<TraceOp> = Vec::new();
    let mut edges: Vec<(Vertex, Vertex)> = base.edges().collect();
    // tidy: allow(hash-iter) — membership tests only; candidate edges are
    // drawn from the seeded RNG stream, never from set order.
    let mut exists: std::collections::HashSet<(Vertex, Vertex)> = edges.iter().copied().collect();
    let mut deg = vec![0usize; n];
    for &(u, v) in &edges {
        ops.push(TraceOp::Insert(u, v));
        deg[u] += 1;
        deg[v] += 1;
    }
    ops.push(TraceOp::Commit);
    // Separate stream from the builder's so trace churn is independent of
    // the generator's internal sampling.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ff_ee00_c0ff_ee00);
    for _ in 0..churn_commits {
        assert!(edges.len() >= churn, "graph too small for the requested churn");
        for _ in 0..churn {
            let at = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(at);
            exists.remove(&(u, v));
            deg[u] -= 1;
            deg[v] -= 1;
            ops.push(TraceOp::Delete(u, v));
        }
        // Insert replacements, sampling endpoints from the pool of vertices
        // with residual capacity (after the deletions the capacity is
        // concentrated on few vertices, so sampling uniform pairs over all
        // of `n` would stall on a near-saturated graph).
        let mut pool: Vec<Vertex> = (0..n).filter(|&v| deg[v] < delta_cap).collect();
        let mut pool_pos = vec![usize::MAX; n];
        for (i, &v) in pool.iter().enumerate() {
            pool_pos[v] = i;
        }
        let mut inserted = 0usize;
        let mut attempts = 0usize;
        while inserted < churn {
            attempts += 1;
            let key = if attempts <= 100 && pool.len() >= 2 {
                // Fast path: sample a pool pair.
                let u = pool[rng.gen_range(0..pool.len())];
                let v = pool[rng.gen_range(0..pool.len())];
                if u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                if !exists.insert(key) {
                    continue;
                }
                key
            } else {
                // Stalled (tiny, mostly-connected pool): enumerate the
                // remaining candidate pairs and pick one uniformly.
                let mut candidates: Vec<(Vertex, Vertex)> = Vec::new();
                for (i, &u) in pool.iter().enumerate() {
                    for &v in &pool[i + 1..] {
                        let key = if u < v { (u, v) } else { (v, u) };
                        if !exists.contains(&key) {
                            candidates.push(key);
                        }
                    }
                }
                if candidates.is_empty() {
                    // Genuinely out of capacity (every pool pair exists):
                    // free some by deleting one more random edge — its
                    // endpoints join the pool and their pair is now a
                    // candidate. The commit's net churn grows accordingly.
                    assert!(!edges.is_empty(), "graph too sparse for the requested churn");
                    let at = rng.gen_range(0..edges.len());
                    let (u, v) = edges.swap_remove(at);
                    exists.remove(&(u, v));
                    ops.push(TraceOp::Delete(u, v));
                    for w in [u, v] {
                        if deg[w] == delta_cap {
                            pool_pos[w] = pool.len();
                            pool.push(w);
                        }
                        deg[w] -= 1;
                    }
                    continue;
                }
                candidates.sort_unstable();
                let key = candidates[rng.gen_range(0..candidates.len())];
                exists.insert(key);
                key
            };
            attempts = 0;
            edges.push(key);
            for w in [key.0, key.1] {
                deg[w] += 1;
                if deg[w] >= delta_cap {
                    let at = pool_pos[w];
                    pool.swap_remove(at);
                    pool_pos[w] = usize::MAX;
                    if at < pool.len() {
                        pool_pos[pool[at]] = at;
                    }
                }
            }
            ops.push(TraceOp::Insert(key.0, key.1));
            inserted += 1;
        }
        ops.push(TraceOp::Commit);
    }
    Trace { n0: n, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MutableGraph;

    #[test]
    fn roundtrip_hand_written() {
        let text = "# demo\nt 4\n+ 0 1\nv 2\ni 4 99\n+ 1 4\ncommit\n- 0 1\ncommit\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.n0, 4);
        assert_eq!(t.commit_count(), 2);
        assert_eq!(
            t.ops[..5],
            [
                TraceOp::Insert(0, 1),
                TraceOp::AddVertices(2),
                TraceOp::SetIdent(4, 99),
                TraceOp::Insert(1, 4),
                TraceOp::Commit,
            ]
        );
        assert_eq!(parse_trace(&to_text(&t)).unwrap(), t);
    }

    #[test]
    fn batches_split_on_commits_and_drop_tail() {
        let t = parse_trace("t 3\n+ 0 1\ncommit\n- 0 1\n+ 1 2\ncommit\n+ 0 2\n").unwrap();
        let batches = t.batches();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], &[TraceOp::Insert(0, 1)]);
        assert_eq!(batches[1], &[TraceOp::Delete(0, 1), TraceOp::Insert(1, 2)]);
    }

    #[test]
    fn malformed_traces_are_specific() {
        assert_eq!(parse_trace("+ 0 1\n"), Err(ParseTraceError::BadHeader));
        assert_eq!(parse_trace(""), Err(ParseTraceError::BadHeader));
        assert_eq!(parse_trace("t 2\nt 3\n"), Err(ParseTraceError::BadHeader));
        assert!(matches!(parse_trace("t 2\n+ 0\n"), Err(ParseTraceError::BadLine { line: 2, .. })));
        assert!(matches!(
            parse_trace("t 2\n- x 1\n"),
            Err(ParseTraceError::BadLine { line: 2, .. })
        ));
        assert!(matches!(parse_trace("t 2\ni 0\n"), Err(ParseTraceError::BadLine { line: 2, .. })));
        assert!(matches!(parse_trace("t 2\nv\n"), Err(ParseTraceError::BadLine { line: 2, .. })));
        assert!(matches!(
            parse_trace("t 2\ne 0 1\n"),
            Err(ParseTraceError::BadLine { line: 2, .. })
        ));
        let e = parse_trace("t 2\n+ 0\n").unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn ident_override_lines_roundtrip() {
        let t = Trace {
            n0: 2,
            ops: vec![TraceOp::SetIdent(0, 41), TraceOp::Insert(0, 1), TraceOp::Commit],
        };
        let text = to_text(&t);
        assert!(text.contains("i 0 41"));
        assert_eq!(parse_trace(&text).unwrap(), t);
        // And the override actually lands when replayed.
        let mut mg = MutableGraph::new(t.n0);
        for batch in t.batches() {
            for op in batch {
                match *op {
                    TraceOp::Insert(u, v) => mg.insert_edge(u, v).unwrap(),
                    TraceOp::Delete(u, v) => mg.delete_edge(u, v).unwrap(),
                    TraceOp::AddVertices(k) => {
                        for _ in 0..k {
                            mg.add_vertex();
                        }
                    }
                    TraceOp::SetIdent(v, ident) => mg.set_ident(v, ident).unwrap(),
                    TraceOp::Shrink => mg.shrink_isolated(),
                    TraceOp::Commit => unreachable!("batches exclude commit markers"),
                }
            }
            mg.commit().unwrap();
        }
        assert_eq!(mg.graph().ident(0), 41);
    }

    #[test]
    fn shrink_lines_roundtrip_and_replay() {
        let text = "t 4\n+ 0 1\n+ 1 2\ncommit\nshrink\n+ 0 2\ncommit\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.ops[3], TraceOp::Shrink);
        assert_eq!(to_text(&t), text);
        assert_eq!(parse_trace(&to_text(&t)).unwrap(), t);
        // Replayed, the shrink drops isolated vertex 3 and renumbers.
        let mut mg = MutableGraph::new(t.n0);
        for batch in t.batches() {
            for op in batch {
                match *op {
                    TraceOp::Insert(u, v) => mg.insert_edge(u, v).unwrap(),
                    TraceOp::Delete(u, v) => mg.delete_edge(u, v).unwrap(),
                    TraceOp::Shrink => mg.shrink_isolated(),
                    _ => unreachable!("this trace has no other ops"),
                }
            }
            mg.commit().unwrap();
        }
        assert_eq!((mg.graph().n(), mg.graph().m()), (3, 3));
    }

    #[test]
    fn power_law_trace_keeps_hubs_above_lambda() {
        let t = power_law_churn_trace(512, 64, 3, 8, 5);
        assert_eq!(t.commit_count(), 4);
        // Deterministic for a fixed seed.
        assert_eq!(to_text(&t), to_text(&power_law_churn_trace(512, 64, 3, 8, 5)));
        let mut mg = MutableGraph::new(t.n0);
        for batch in t.batches() {
            for op in batch {
                match *op {
                    TraceOp::Insert(u, v) => mg.insert_edge(u, v).unwrap(),
                    TraceOp::Delete(u, v) => mg.delete_edge(u, v).unwrap(),
                    _ => unreachable!("churn traces only insert and delete"),
                }
            }
            mg.commit().unwrap();
            // The hubs keep the graph in long-mode territory (Δ > λ = 48)
            // through every churn batch, not just the base commit.
            assert!(mg.graph().max_degree() > 48, "Δ = {}", mg.graph().max_degree());
            assert!(mg.graph().max_degree() <= 64);
        }
    }

    #[test]
    fn net_churn_cancels_toggles_and_counts_extras() {
        let t =
            parse_trace("t 5\n+ 0 1\n+ 1 2\ncommit\n- 0 1\n+ 0 1\n- 1 2\n- 0 1\n+ 2 3\ncommit\n")
                .unwrap();
        let churn = t.net_churn();
        assert_eq!(churn.len(), 2);
        assert_eq!(churn[0], BatchChurn { inserted: 2, deleted: 0 });
        // (0,1): delete→insert→delete nets to one delete; (1,2) deleted;
        // (2,3) inserted.
        assert_eq!(churn[1], BatchChurn { inserted: 1, deleted: 2 });
    }

    #[test]
    fn net_churn_matches_nominal_request_off_saturation() {
        let t = churn_trace(60, 5, 3, 4, 11);
        let churn = t.net_churn();
        assert_eq!(churn[0].deleted, 0);
        for c in &churn[1..] {
            // Off saturation the fallback never fires, so deletions never
            // exceed the nominal request; net churn can fall below it when
            // the generator re-inserts a pair it just deleted.
            assert_eq!(c.inserted, c.deleted, "steady state preserves m");
            assert!(c.deleted <= 4, "no fallback on a roomy graph, got {}", c.deleted);
        }
    }

    #[test]
    fn churn_trace_replays_onto_mutable_graph() {
        let t = churn_trace(40, 4, 3, 5, 7);
        assert_eq!(t.commit_count(), 4);
        let mut mg = MutableGraph::new(t.n0);
        let mut sizes = Vec::new();
        for batch in t.batches() {
            for op in batch {
                match *op {
                    TraceOp::Insert(u, v) => mg.insert_edge(u, v).unwrap(),
                    TraceOp::Delete(u, v) => mg.delete_edge(u, v).unwrap(),
                    _ => unreachable!("churn traces only insert/delete"),
                }
            }
            mg.commit().unwrap();
            assert!(mg.graph().max_degree() <= 4);
            sizes.push(mg.graph().m());
        }
        // Steady state: every churn commit preserves the edge count.
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        // First commit matches the seeded generator exactly.
        let base = generators::random_bounded_degree(40, 4, 7);
        assert_eq!(sizes[0], base.m());
        // Determinism: same parameters, same trace.
        assert_eq!(churn_trace(40, 4, 3, 5, 7), t);
        assert_ne!(churn_trace(40, 4, 3, 5, 8), t);
        // The explicit-base variant is the same machine.
        assert_eq!(churn_trace_from(&base, 4, 3, 5, 7), t);
    }
}
