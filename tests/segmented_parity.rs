//! Differential sweep: the segmented engine against the legacy delta-CSR
//! engine — the PR 7 parity contract.
//!
//! [`SegRecolorer`] runs the same generic repair machinery as
//! [`Recolorer`] but commits through the segmented store (O(region) bytes)
//! and colors by stable edge id. The contract pinned here:
//!
//! * **Perfect transport** — per-commit [`CommitReport`]s are
//!   bit-identical up to `stats.commit_bytes` (the very quantity the
//!   segmented path improves), and colorings are bit-identical in
//!   lexicographic edge order after every commit.
//! * **Faulty transport** — colorings stay bit-identical (the fault-era
//!   priority order is host-independent), while message-bit counters may
//!   differ; only colors are compared.
//! * **Bytes** — on a churny trace the segmented engine's cumulative
//!   commit traffic is strictly below the legacy engine's full rewrites.
//! * **Power-law churn** — the seeded heavy-tail trace keeps Δ above the
//!   λ = 48 palette-depth cutoff, so the long-mode/spill paths run on a
//!   realistic workload in both engines.
//!
//! CI replays this binary across the `DECO_THREADS` {1, 2, 8} matrix; any
//! thread-dependent divergence breaks the asserts below.

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace, power_law_churn_trace, Trace, TraceOp};
use deco_graph::{generators, Graph, GraphError};
use deco_stream::{queue_op, FaultyTransport, RecolorConfig, Recolorer, SegRecolorer, Transport};
use std::sync::Arc;

/// Queues one trace operation on the segmented engine (the
/// [`queue_op`] counterpart).
fn queue_seg(r: &mut SegRecolorer, op: TraceOp) -> Result<(), GraphError> {
    match op {
        TraceOp::Insert(u, v) => r.insert_edge(u, v),
        TraceOp::Delete(u, v) => r.delete_edge(u, v),
        TraceOp::AddVertices(k) => {
            for _ in 0..k {
                r.add_vertex();
            }
            Ok(())
        }
        TraceOp::SetIdent(v, ident) => r.set_ident(v, ident),
        TraceOp::Shrink => {
            r.shrink_isolated();
            Ok(())
        }
        TraceOp::Commit => Ok(()),
    }
}

/// Replays `trace` through both engines, asserting the parity contract
/// after every commit; returns cumulative (legacy, segmented) commit
/// bytes. `exact_reports` is off under faulty transports, where message
/// counters legitimately differ.
fn run_parity(
    trace: &Trace,
    mut legacy: Recolorer,
    mut seg: SegRecolorer,
    exact_reports: bool,
) -> (usize, usize) {
    let (mut legacy_bytes, mut seg_bytes) = (0usize, 0usize);
    for (ci, batch) in trace.batches().into_iter().enumerate() {
        for &op in batch {
            queue_op(&mut legacy, op).unwrap();
            queue_seg(&mut seg, op).unwrap();
        }
        let a = legacy.commit().unwrap();
        let b = seg.commit().unwrap();
        legacy_bytes += a.stats.commit_bytes;
        seg_bytes += b.stats.commit_bytes;
        if exact_reports {
            let mut a0 = a.clone();
            let mut b0 = b.clone();
            a0.stats.commit_bytes = 0;
            b0.stats.commit_bytes = 0;
            assert_eq!(a0, b0, "commit {ci}: reports diverged");
        }
        let (snapshot, _) = seg.segmented().to_graph();
        assert_eq!(&snapshot, legacy.graph(), "commit {ci}: snapshots diverged");
        let ca = legacy.coloring();
        let cb = seg.coloring();
        assert_eq!(ca, cb, "commit {ci}: colorings diverged");
        assert!(ca.is_proper(&snapshot), "commit {ci}: improper coloring");
        assert_eq!(a.color_bound, b.color_bound, "commit {ci}");
    }
    (legacy_bytes, seg_bytes)
}

#[test]
fn perfect_transport_reports_and_colorings_match() {
    for seed in [0x5e61u64, 0x5e62, 0x5e63] {
        let trace = churn_trace(200, 6, 6, 10, seed);
        let cfg = RecolorConfig::default().with_repair_threshold(25);
        let legacy =
            Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg.clone())
                .unwrap();
        let seg =
            SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap();
        let (legacy_bytes, seg_bytes) = run_parity(&trace, legacy, seg, true);
        // The legacy engine rewrites the whole CSR every commit; segmented
        // commits write the churn region. Cumulatively that must win even
        // with the build-everything first commit included.
        assert!(
            seg_bytes < legacy_bytes,
            "segmented commits must write fewer bytes: {seg_bytes} vs {legacy_bytes}"
        );
        assert!(legacy_bytes > 0 && seg_bytes > 0, "byte counters must be wired");
    }
}

#[test]
fn from_graph_engines_agree_too() {
    // The other construction path: both engines seeded from an existing
    // snapshot (ids start as lexicographic indices), first commit colors
    // from scratch, then rolling delete/reinsert churn.
    let g = generators::random_bounded_degree(300, 7, 0x7a11);
    let mut legacy =
        Recolorer::from_graph(g.clone(), edge_log_depth(1), MessageMode::Long).unwrap();
    let mut seg = SegRecolorer::from_graph(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    let compare = |legacy: &mut Recolorer, seg: &mut SegRecolorer, ctx: &str| {
        let a = legacy.commit().unwrap();
        let mut b = seg.commit().unwrap();
        b.stats.commit_bytes = a.stats.commit_bytes;
        assert_eq!(a, b, "{ctx}: reports diverged");
        assert_eq!(legacy.coloring(), seg.coloring(), "{ctx}: colorings diverged");
        assert!(legacy.coloring().is_proper(legacy.graph()), "{ctx}");
    };
    compare(&mut legacy, &mut seg, "initial");
    for step in 0..4 {
        let edges: Vec<_> = legacy.graph().edges().skip(step * 13).take(3).collect();
        for &(u, v) in &edges {
            legacy.delete_edge(u, v).unwrap();
            seg.delete_edge(u, v).unwrap();
        }
        compare(&mut legacy, &mut seg, &format!("delete step {step}"));
        for &(u, v) in &edges {
            legacy.insert_edge(u, v).unwrap();
            seg.insert_edge(u, v).unwrap();
        }
        compare(&mut legacy, &mut seg, &format!("reinsert step {step}"));
    }
}

#[test]
fn compaction_commits_stay_in_parity() {
    let trace = churn_trace(160, 5, 6, 8, 0xc0a1);
    let cfg = RecolorConfig::default().with_compaction_every(2);
    let legacy =
        Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg.clone()).unwrap();
    let seg = SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap();
    run_parity(&trace, legacy, seg, true);
}

#[test]
fn faulty_transport_colorings_match() {
    // Same seeded fault schedule on both sides. Reports are NOT compared:
    // the hosts encode repair priorities with different bit widths, so
    // message-bit counters legitimately differ — but the priority *order*
    // is host-independent, so colors must not.
    for seed in [3u64, 9, 21] {
        let trace = churn_trace(150, 5, 5, 8, 0xfa0 ^ seed);
        let transport = |s: u64| -> Arc<dyn Transport> {
            Arc::new(FaultyTransport::new(s).with_drop(100_000).with_delay(100_000, 2))
        };
        let cfg = |s| RecolorConfig::default().with_transport(transport(s));
        let legacy =
            Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg(seed)).unwrap();
        let seg = SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg(seed))
            .unwrap();
        run_parity(&trace, legacy, seg, false);
    }
}

#[test]
fn power_law_churn_keeps_long_mode_hot_and_in_parity() {
    // The heavy-tail workload: hubs above the λ = 48 palette-depth cutoff
    // force the long-mode/spill paths while the tail stays sparse. Both
    // engines must agree on it bit for bit.
    let trace = power_law_churn_trace(512, 64, 3, 8, 0x9072);
    let legacy = Recolorer::new(trace.n0, edge_log_depth(1), MessageMode::Long).unwrap();
    let seg = SegRecolorer::new(trace.n0, edge_log_depth(1), MessageMode::Long).unwrap();
    run_parity(&trace, legacy, seg, true);

    // Δ really is above the cutoff after replay (the generator wires the
    // hub core deterministically, so this holds for every seed).
    let mut check = SegRecolorer::new(trace.n0, edge_log_depth(1), MessageMode::Long).unwrap();
    for batch in trace.batches() {
        for &op in batch {
            queue_seg(&mut check, op).unwrap();
        }
        check.commit().unwrap();
        assert!(check.segmented().max_degree() > 48, "power-law trace must keep Δ above λ = 48");
        assert!(check.segmented().max_degree() <= 64);
    }
}

#[test]
fn segmented_bytes_scale_with_region_not_graph() {
    // The headline O(region) claim at test scale: a single-edge commit on
    // an m ≈ 3.5k graph writes well under a tenth of the full rewrite.
    let g = generators::random_bounded_degree(1000, 7, 0xb17e);
    let mut seg = SegRecolorer::from_graph(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    seg.commit().unwrap(); // initial from-scratch coloring
    let full = Graph::full_rewrite_bytes(g.n(), g.m());
    let (u, v) = (0, g.n() - 1);
    let report = if g.edge_between(u, v).is_some() {
        seg.delete_edge(u, v).unwrap();
        seg.commit().unwrap()
    } else {
        seg.insert_edge(u, v).unwrap();
        seg.commit().unwrap()
    };
    assert!(
        report.stats.commit_bytes * 10 <= full,
        "single-edge commit wrote {} bytes, full rewrite is {full}",
        report.stats.commit_bytes
    );
}
