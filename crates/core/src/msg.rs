//! Compact message encoding shared by the coloring protocols.

use deco_local::{bits_for_range, Message};

/// A message consisting of a few bounded integer fields.
///
/// Each field is accounted at the bit width of its *domain* (not its value),
/// which is how the paper measures message size: a color from a palette of
/// `m` colors costs `⌈log₂ m⌉` bits regardless of its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMsg {
    fields: Vec<u64>,
    bits: usize,
}

impl FieldMsg {
    /// Builds a message from `(value, domain_size)` pairs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a value lies outside its declared domain.
    pub fn new(fields: &[(u64, u64)]) -> FieldMsg {
        let mut bits = 0;
        let mut values = Vec::with_capacity(fields.len());
        for &(value, domain) in fields {
            debug_assert!(value < domain.max(1), "field value {value} outside domain {domain}");
            bits += bits_for_range(domain);
            values.push(value);
        }
        FieldMsg { fields: values, bits: bits.max(1) }
    }

    /// Builds a message with an explicit bit size, for payloads whose wire
    /// encoding is not a sequence of bounded integers (e.g. a used-color
    /// bitmap of `palette` bits carrying the listed values).
    pub fn with_bits(fields: Vec<u64>, bits: usize) -> FieldMsg {
        FieldMsg { fields, bits: bits.max(1) }
    }

    /// The `i`-th field value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> u64 {
        self.fields[i]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All field values.
    pub fn fields(&self) -> &[u64] {
        &self.fields
    }
}

impl Message for FieldMsg {
    fn size_bits(&self) -> usize {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accounting_uses_domains() {
        let m = FieldMsg::new(&[(0, 1024), (3, 8)]);
        assert_eq!(m.size_bits(), 10 + 3);
        assert_eq!(m.field(0), 0);
        assert_eq!(m.fields(), &[0, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let _ = FieldMsg::new(&[(9, 8)]);
    }

    #[test]
    fn minimum_one_bit() {
        assert_eq!(FieldMsg::new(&[]).size_bits(), 1);
    }
}
