//! Cole–Vishkin 3-coloring of rooted pseudo-forests in `O(log* n)` rounds.
//!
//! The Panconesi–Rizzi edge-coloring algorithm \[24\] decomposes the edge set
//! into rooted pseudo-forests (every vertex has at most one parent edge per
//! forest) and 3-colors each forest's vertices to schedule edge-color
//! assignments. This module implements the classic two-stage procedure:
//!
//! 1. **bit reduction**: each vertex repeatedly recolors itself with
//!    `2i + bit_i`, where `i` is the lowest bit position at which its color
//!    differs from its parent's (roots use a fake parent differing in bit 0);
//!    the palette shrinks from `n` to 6 in `O(log* n)` rounds;
//! 2. **shift-down + recolor**: for each color class `q ∈ {5, 4, 3}`, every
//!    vertex first adopts its parent's color (making all its children
//!    monochromatic), then class-`q` vertices pick a free color in
//!    `{0, 1, 2}` — their parent and children each block one color.
//!
//! All forests are processed **in parallel**: every edge belongs to exactly
//! one forest, so each parent→child message carries a single color and
//! messages stay `O(log n)` bits.

use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::{Graph, Vertex};
use deco_local::{bits_for_range, Action, Network, NodeCtx, Protocol, RunStats, SharedConfig};
use std::collections::BTreeMap;

/// The bit-reduction schedule: the palette after each round, ending at 6.
fn cv_palettes(n: u64) -> Vec<u64> {
    let mut palettes = Vec::new();
    let mut m = n.max(1);
    while m > 6 {
        m = 2 * bits_for_range(m) as u64;
        palettes.push(m.max(6));
    }
    palettes
}

/// Total rounds of [`cv_three_color`]: bit-reduction steps plus the nine
/// shift-down/sync/recolor rounds.
pub fn cv_rounds(n: u64) -> usize {
    cv_palettes(n).len() + 9
}

/// Lowest bit position at which `a` and `b` differ.
fn lowest_differing_bit(a: u64, b: u64) -> u32 {
    debug_assert_ne!(a, b, "colors must differ from parent");
    (a ^ b).trailing_zeros()
}

#[derive(Debug)]
struct Slot {
    parent: Option<Vertex>,
    children: Vec<Vertex>,
    color: u64,
    /// Our color before the current shift-down: the (uniform) color of all
    /// our children during the recolor step.
    pre_shift: u64,
    /// Parent's color as received this round.
    parent_color: u64,
}

#[derive(Debug)]
struct CvColor {
    /// `(forest id, slot)`, sorted by forest id — a flat sorted vector
    /// beats a `BTreeMap` here: every round iterates all slots (sends) and
    /// the per-node slot count is small, so contiguity wins.
    slots: Vec<(u64, Slot)>,
    /// `(parent sender, forest id of our parent edge from it)`, sorted by
    /// sender.
    parent_fid: Vec<(Vertex, u64)>,
    /// `(child, index into slots)`, sorted by child: the per-round outbox
    /// order. Emitting child-sorted outboxes lets the simulator's posting
    /// cursor match slots in O(1) per message instead of falling back to a
    /// binary search (children are distinct across forests — each parent
    /// edge is a distinct graph edge).
    send_order: Vec<(Vertex, u32)>,
    palettes: SharedConfig<Vec<u64>>,
    n: u64,
}

impl CvColor {
    fn send_colors(&self, palette: u64) -> Vec<(Vertex, FieldMsg)> {
        self.send_order
            .iter()
            .map(|&(child, si)| {
                (child, FieldMsg::new(&[(self.slots[si as usize].1.color, palette)]))
            })
            .collect()
    }

    fn receive(&mut self, inbox: &[(Vertex, FieldMsg)]) {
        for (sender, m) in inbox {
            if let Ok(i) = self.parent_fid.binary_search_by_key(sender, |&(s, _)| s) {
                let fid = self.parent_fid[i].1;
                let j = self
                    .slots
                    .binary_search_by_key(&fid, |&(f, _)| f)
                    // INVARIANT: a slot is pushed for every forest id recorded in parent_fid within the same construction pass.
                    .expect("parent_fid entries have slots");
                self.slots[j].1.parent_color = m.field(0);
            }
        }
    }
}

impl Protocol for CvColor {
    type Msg = FieldMsg;
    type Output = Vec<(u64, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        if self.slots.is_empty() {
            return Vec::new();
        }
        self.send_colors(self.n.max(6))
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        if self.slots.is_empty() {
            return Action::halt();
        }
        self.receive(inbox);
        let s = self.palettes.len();
        let r = ctx.round;
        let palette = if r <= s { self.palettes[r - 1] } else { 6 };
        if r <= s {
            // Bit-reduction step.
            for (_, slot) in self.slots.iter_mut() {
                let parent_color = match slot.parent {
                    Some(_) => slot.parent_color,
                    None => slot.color ^ 1, // fake parent differing in bit 0
                };
                let i = lowest_differing_bit(slot.color, parent_color);
                slot.color = 2 * i as u64 + ((slot.color >> i) & 1);
            }
        } else {
            // Shift-down phases for q = 5, 4, 3: rounds (per q) are
            // shift-down, sync, recolor.
            let step = r - s - 1; // 0..9
            let q = 5 - (step / 3) as u64;
            match step % 3 {
                0 => {
                    // Shift-down: adopt the parent's color; roots take the
                    // smallest color in {0,1,2} different from their own.
                    for (_, slot) in self.slots.iter_mut() {
                        slot.pre_shift = slot.color;
                        slot.color = match slot.parent {
                            Some(_) => slot.parent_color,
                            // INVARIANT: only one color is excluded, so {0,1,2} retains at least two candidates.
                            None => (0..3).find(|&c| c != slot.color).expect("palette >= 2"),
                        };
                    }
                }
                1 => {
                    // Sync: colors already re-broadcast below.
                }
                _ => {
                    // Recolor class q into {0,1,2}: the parent's current
                    // color and the children's (uniform) color — our
                    // pre-shift color — each block one choice.
                    for (_, slot) in self.slots.iter_mut() {
                        if slot.color == q {
                            let parent = match slot.parent {
                                Some(_) => slot.parent_color,
                                None => u64::MAX,
                            };
                            slot.color = (0..3)
                                .find(|&c| c != parent && c != slot.pre_shift)
                                // INVARIANT: at most two colors are blocked, so {0,1,2} retains a free one.
                                .expect("two blockers leave a free color in {0,1,2}");
                        }
                    }
                }
            }
        }
        if r == s + 9 {
            Action::halt()
        } else {
            Action::Continue(self.send_colors(palette))
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(u64, u64)> {
        self.slots.into_iter().map(|(fid, slot)| (fid, slot.color)).collect()
    }
}

/// 3-colors the vertices of every rooted pseudo-forest simultaneously.
///
/// `forest_of_edge[e] = (fid, parent)`: edge `e` belongs to forest `fid` and
/// is oriented from its child endpoint toward `parent` (which must be an
/// endpoint of `e`). Every vertex may have **at most one parent edge per
/// forest** (the pseudo-forest property).
///
/// Returns per-vertex `(fid, color)` lists (colors in `{0, 1, 2}`, proper
/// within every forest) and the run statistics; the round count is
/// [`cv_rounds`]`(n)` = `O(log* n)`.
///
/// # Panics
///
/// Panics if a parent is not an endpoint of its edge or the pseudo-forest
/// property is violated.
pub fn cv_three_color(
    net: &Network<'_>,
    forest_of_edge: &[(u64, Vertex)],
) -> (Vec<Vec<(u64, u64)>>, RunStats) {
    let g = net.graph();
    assert_eq!(forest_of_edge.len(), g.m(), "one forest assignment per edge");
    let inits = slot_inits(g, forest_of_edge);
    let palettes = SharedConfig::new(cv_palettes(g.n() as u64));
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("cole-vishkin", |ctx| {
        let (slots_init, parent_fid) = &inits[ctx.vertex];
        let slots: Vec<(u64, Slot)> = slots_init
            .iter()
            .map(|(fid, parent, children)| {
                (
                    *fid,
                    Slot {
                        parent: *parent,
                        children: children.clone(),
                        color: ctx.ident - 1,
                        pre_shift: 0,
                        parent_color: 0,
                    },
                )
            })
            .collect();
        let mut send_order: Vec<(Vertex, u32)> = slots
            .iter()
            .enumerate()
            .flat_map(|(si, (_, slot))| slot.children.iter().map(move |&c| (c, si as u32)))
            .collect();
        send_order.sort_unstable();
        CvColor {
            slots,
            parent_fid: parent_fid.clone(),
            send_order,
            palettes: SharedConfig::clone(&palettes),
            n: g.n() as u64,
        }
    });
    (outputs, pl.into_stats())
}

type SlotInit = (u64, Option<Vertex>, Vec<Vertex>);

/// Per-vertex slot structure: (slots, sorted (parent-sender, fid) pairs).
/// This is purely local information (each vertex's incident edges and their
/// forest ids).
#[allow(clippy::type_complexity)]
fn slot_inits(
    g: &Graph,
    forest_of_edge: &[(u64, Vertex)],
) -> Vec<(Vec<SlotInit>, Vec<(Vertex, u64)>)> {
    let mut slots: Vec<BTreeMap<u64, (Option<Vertex>, Vec<Vertex>)>> = vec![BTreeMap::new(); g.n()];
    let mut parent_fid: Vec<BTreeMap<Vertex, u64>> = vec![BTreeMap::new(); g.n()];
    for (e, &(fid, parent)) in forest_of_edge.iter().enumerate() {
        let (u, v) = g.endpoints(e);
        assert!(parent == u || parent == v, "parent of edge {e} must be an endpoint");
        let child = if parent == u { v } else { u };
        let entry = slots[child].entry(fid).or_default();
        assert!(
            entry.0.is_none(),
            "vertex {child} has two parent edges in forest {fid}: not a pseudo-forest"
        );
        entry.0 = Some(parent);
        parent_fid[child].insert(parent, fid);
        slots[parent].entry(fid).or_default().1.push(child);
    }
    slots
        .into_iter()
        .zip(parent_fid)
        .map(|(m, pf)| {
            let inits = m
                .into_iter()
                .map(|(fid, (parent, mut children))| {
                    children.sort_unstable();
                    (fid, parent, children)
                })
                .collect();
            (inits, pf.into_iter().collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    /// Checks colors are in {0,1,2} and proper within each forest.
    fn assert_valid(g: &Graph, forest_of_edge: &[(u64, Vertex)], colors: &[Vec<(u64, u64)>]) {
        let lookup = |v: Vertex, fid: u64| -> u64 {
            colors[v]
                .iter()
                .find(|&&(f, _)| f == fid)
                .unwrap_or_else(|| panic!("vertex {v} missing color for forest {fid}"))
                .1
        };
        for (e, &(fid, parent)) in forest_of_edge.iter().enumerate() {
            let (u, v) = g.endpoints(e);
            let (cu, cv) = (lookup(u, fid), lookup(v, fid));
            assert!(cu < 3 && cv < 3, "colors must be in {{0,1,2}}");
            assert_ne!(cu, cv, "edge ({u},{v}) monochromatic in forest {fid}");
            let _ = parent;
        }
    }

    fn ident_forest(g: &Graph) -> Vec<(u64, Vertex)> {
        // Forest f = each vertex's f-th out-edge toward smaller-ident
        // neighbors; this is the Panconesi–Rizzi decomposition.
        let mut out: Vec<(u64, Vertex)> = vec![(0, 0); g.m()];
        for v in 0..g.n() {
            let mut parents: Vec<(u64, Vertex, usize)> = g
                .incident(v)
                .filter(|&(u, _)| g.ident(u) < g.ident(v))
                .map(|(u, e)| (g.ident(u), u, e))
                .collect();
            parents.sort_unstable();
            for (f, &(_, u, e)) in parents.iter().enumerate() {
                out[e] = (f as u64, u);
            }
        }
        out
    }

    #[test]
    fn colors_path_as_single_forest() {
        let g = generators::path(50);
        let net = Network::new(&g);
        let spec = ident_forest(&g);
        let (colors, stats) = cv_three_color(&net, &spec);
        assert_valid(&g, &spec, &colors);
        assert_eq!(stats.rounds, cv_rounds(50));
    }

    #[test]
    fn colors_cycles() {
        // In a cycle with idents along it, the largest-ident vertex has two
        // out-edges (forests 0 and 1); others form long chains.
        for n in [3usize, 4, 17, 60] {
            let g = generators::cycle(n);
            let net = Network::new(&g);
            let spec = ident_forest(&g);
            let (colors, _) = cv_three_color(&net, &spec);
            assert_valid(&g, &spec, &colors);
        }
    }

    #[test]
    fn colors_dense_decompositions() {
        for g in [
            generators::complete(9),
            generators::random_bounded_degree(100, 8, 33),
            generators::clique_with_pendants(7),
        ] {
            let net = Network::new(&g);
            let spec = ident_forest(&g);
            let (colors, stats) = cv_three_color(&net, &spec);
            assert_valid(&g, &spec, &colors);
            // O(log* n) + O(1) rounds.
            assert!(stats.rounds <= cv_rounds(g.n() as u64));
        }
    }

    #[test]
    fn shuffled_idents_remain_valid() {
        let g = generators::shuffle_idents(&generators::random_bounded_degree(70, 6, 4), 5);
        let net = Network::new(&g);
        let spec = ident_forest(&g);
        let (colors, _) = cv_three_color(&net, &spec);
        assert_valid(&g, &spec, &colors);
    }

    #[test]
    #[should_panic(expected = "not a pseudo-forest")]
    fn rejects_double_parent() {
        let g = generators::path(3); // edges (0,1), (1,2)
        let net = Network::new(&g);
        // Vertex 1 would have two parent edges in forest 0.
        let spec = vec![(0, 0), (0, 2)];
        let _ = cv_three_color(&net, &spec);
    }

    #[test]
    fn cv_rounds_is_log_star_like() {
        assert_eq!(cv_rounds(6), 9);
        assert!(cv_rounds(1 << 16) <= 9 + 4);
        assert!(cv_rounds(u64::MAX / 2) <= 9 + 6);
    }
}
