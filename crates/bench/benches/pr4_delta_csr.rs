//! **PR4 — delta-CSR commits**: the pr3_churn scenario re-run with the
//! patch-based commit path against the PR 3 rebuild path.
//!
//! The workload is identical to `pr3_churn` (`churn_trace(n = 50k, Δ ≤ 8)`,
//! 1% churn per commit, same seed), replayed as **split commits**: each
//! churn batch lands as its deletions first, then its insertions. The split
//! changes nothing about the outcome (asserted against an unsplit replay,
//! color for color) but separates the two costs a commit pays:
//!
//! * the **deletion commit** repairs nothing (deletions never invalidate a
//!   proper coloring) — its wall time *is* the commit machinery the
//!   delta-CSR replaced: snapshot maintenance, color carry, dirty
//!   detection. This is where the ≥5× acceptance target lives.
//! * the **insertion commit** carries the `O(region)` repair pipeline,
//!   which is byte-for-byte the same work on both paths — its timing shows
//!   the end-to-end commit, where the machinery win is diluted by the
//!   (already-local) repair.
//!
//! Every sub-commit is executed on both engines — `Recolorer::commit`
//! (delta) and `Recolorer::with_rebuild_commits(true)` (the PR 3 path) —
//! and their `CommitReport`s and colorings are asserted **bit-identical**
//! before timing. Timing interleaves the variants per sample and takes
//! per-variant medians (the required idiom on the noisy shared container);
//! clone and queueing are excluded from the timed section. Results land in
//! `BENCH_pr4.json` (override with `DECO_BENCH_OUT`;
//! `DECO_BENCH_SCALE=full` deepens the run).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, scale, Scale, Table};
use deco_graph::trace::{churn_trace_from, TraceOp};
use deco_stream::{queue_op, RecolorConfig, Recolorer, RepairStrategy};
use std::time::{Duration, Instant};

use deco_core::edge::legal::{edge_log_depth, MessageMode};

/// FNV-1a over one commit's colors (the stream_churn pin's hash function).
fn color_hash(colors: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(colors.len() as u64);
    for &c in colors {
        mix(c);
    }
    h
}

/// Median commit() wall time over `samples` runs from `base`'s state
/// (clone + queueing untimed).
fn time_commit(base: &Recolorer, ops: &[TraceOp], samples: usize) -> Duration {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..=samples {
        let mut r = base.clone();
        for &op in ops {
            queue_op(&mut r, op).expect("valid trace");
        }
        let t0 = Instant::now();
        r.commit().expect("valid trace");
        times.push(t0.elapsed());
    }
    times.remove(0); // warm-up
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    commit: usize,
    kind: &'static str,
    m: usize,
    dirty: usize,
    region_vertices: usize,
    rounds: usize,
    messages: usize,
    color_hash: u64,
    delta: Duration,
    rebuild: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.rebuild.as_secs_f64() / self.delta.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Value {
        Obj::new()
            .field("commit", self.commit)
            .field("kind", self.kind)
            .field("m", self.m)
            .field("repaired_edges", self.dirty)
            .field("region_vertices", self.region_vertices)
            .field("rounds", self.rounds)
            .field("messages", self.messages)
            .field("color_hash", format!("{:016x}", self.color_hash))
            .field("delta_ms", self.delta.as_secs_f64() * 1e3)
            .field("rebuild_ms", self.rebuild.as_secs_f64() * 1e3)
            .field("speedup_delta_vs_rebuild", self.speedup())
            .build()
    }
}

fn main() {
    banner("PR4 / delta-CSR", "patched commits vs the PR 3 rebuild path, per commit");
    let full = scale() == Scale::Full;
    let params = edge_log_depth(1);
    let mode = MessageMode::Long;
    let samples = if full { 5 } else { 3 };

    // The pr3_churn acceptance scenario, same seed: n = 50k, Δ ≤ 8, 1%.
    let (n, cap, commits) = if full { (50_000, 8, 6) } else { (50_000, 8, 3) };
    println!("generating churn_trace(n={n}, Δ≤{cap}, {commits} churn commits @ 1%) ...");
    let base = deco_graph::generators::random_bounded_degree(n, cap, 0x9126);
    let churn = base.m() / 100;
    let trace = churn_trace_from(&base, cap, commits, churn, 0x9126);
    drop(base);

    // Three engines share the initial build: delta, rebuild-oracle, and an
    // unsplit replica proving the split replay changes nothing.
    let batches = trace.batches();
    let mut delta_engine = Recolorer::new(trace.n0, params, mode).expect("preset params");
    let mut rebuild_engine = Recolorer::new_with(
        trace.n0,
        params,
        mode,
        RecolorConfig::default().with_rebuild_commits(true),
    )
    .expect("preset params");
    let mut unsplit_engine = Recolorer::new(trace.n0, params, mode).expect("preset params");
    for &op in batches[0] {
        queue_op(&mut delta_engine, op).expect("valid trace");
        queue_op(&mut rebuild_engine, op).expect("valid trace");
        queue_op(&mut unsplit_engine, op).expect("valid trace");
    }
    let initial = delta_engine.commit().expect("valid trace");
    assert_eq!(initial, rebuild_engine.commit().expect("valid trace"));
    unsplit_engine.commit().expect("valid trace");
    println!(
        "initial build: m = {}, Δ = {}, {} rounds, {} msgs",
        initial.m, initial.max_degree, initial.stats.rounds, initial.stats.messages
    );

    let mut rows: Vec<Row> = Vec::new();
    for (c, batch) in batches.iter().enumerate().skip(1) {
        // Split by *net* effect (the CommitDelta semantics): a pair deleted
        // and reinserted within the batch keeps its color in the unsplit
        // replay, so it must not be split into a real delete + insert.
        let mut seen: std::collections::HashMap<(usize, usize), (bool, bool)> =
            std::collections::HashMap::new();
        for op in batch.iter() {
            let (pair, is_insert) = match *op {
                TraceOp::Insert(u, v) => ((u.min(v), u.max(v)), true),
                TraceOp::Delete(u, v) => ((u.min(v), u.max(v)), false),
                _ => unreachable!("churn batches only insert/delete"),
            };
            seen.entry(pair)
                .and_modify(|(_, last)| *last = is_insert)
                .or_insert((is_insert, is_insert));
        }
        let mut dels: Vec<TraceOp> = Vec::new();
        let mut inss: Vec<TraceOp> = Vec::new();
        for (&(u, v), &(first, last)) in &seen {
            match (first, last) {
                (false, false) => dels.push(TraceOp::Delete(u, v)),
                (true, true) => inss.push(TraceOp::Insert(u, v)),
                _ => {} // toggled within the batch: net no-op
            }
        }
        // Deterministic queue order (HashMap iteration is not).
        let key = |op: &TraceOp| match *op {
            TraceOp::Insert(u, v) | TraceOp::Delete(u, v) => (u, v),
            _ => unreachable!(),
        };
        dels.sort_unstable_by_key(key);
        inss.sort_unstable_by_key(key);
        for &op in *batch {
            queue_op(&mut unsplit_engine, op).expect("valid trace");
        }
        unsplit_engine.commit().expect("valid trace");

        for (kind, ops, want) in [
            ("deletions (machinery only)", &dels, RepairStrategy::Clean),
            ("insertions (machinery + repair)", &inss, RepairStrategy::Incremental),
        ] {
            // Execute once on each path: fixes the post-commit state and
            // proves bit-identity (reports, colors) before any timing.
            let mut delta_probe = delta_engine.clone();
            let mut rebuild_probe = rebuild_engine.clone();
            for &op in ops {
                queue_op(&mut delta_probe, op).expect("valid trace");
                queue_op(&mut rebuild_probe, op).expect("valid trace");
            }
            let report = delta_probe.commit().expect("valid trace");
            let rebuild_report = rebuild_probe.commit().expect("valid trace");
            assert_eq!(report, rebuild_report, "commit {c} {kind}: reports diverge across paths");
            let colors = delta_probe.coloring().into_colors();
            assert_eq!(
                colors,
                rebuild_probe.coloring().into_colors(),
                "commit {c} {kind}: colors diverge across paths"
            );
            assert_eq!(report.strategy, want, "commit {c} {kind}");

            let delta_t = time_commit(&delta_engine, ops, samples);
            let rebuild_t = time_commit(&rebuild_engine, ops, samples);
            rows.push(Row {
                commit: c,
                kind,
                m: report.m,
                dirty: report.dirty,
                region_vertices: report.region_vertices,
                rounds: report.stats.rounds,
                messages: report.stats.messages,
                color_hash: color_hash(&colors),
                delta: delta_t,
                rebuild: rebuild_t,
            });
            delta_engine = delta_probe;
            rebuild_engine = rebuild_probe;
        }
        // The split replay is the same machine as the unsplit one.
        assert_eq!(
            delta_engine.coloring(),
            unsplit_engine.coloring(),
            "commit {c}: split replay diverged from the unsplit trace"
        );
    }

    println!();
    let table = Table::new(
        &["commit", "kind", "repaired", "delta ms", "rebuild ms", "speedup"],
        &[6, 31, 9, 10, 11, 8],
    );
    for r in &rows {
        table.row(&[
            r.commit.to_string(),
            r.kind.to_string(),
            r.dirty.to_string(),
            millis(r.delta),
            millis(r.rebuild),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("\n(deletion commits repair nothing, so they time exactly the commit machinery");
    println!(" the delta-CSR replaced; insertion commits add the O(region) repair pipeline,");
    println!(" which is identical work on both paths)");

    let machinery: Vec<&Row> = rows.iter().filter(|r| r.dirty == 0).collect();
    let repairing: Vec<&Row> = rows.iter().filter(|r| r.dirty > 0).collect();
    let machinery_min = machinery.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min);
    let machinery_median = {
        let mut s: Vec<f64> = machinery.iter().map(|r| r.speedup()).collect();
        s.sort_unstable_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    let end_to_end: f64 = {
        let d: f64 = rows.iter().map(|r| r.delta.as_secs_f64()).sum();
        let b: f64 = rows.iter().map(|r| r.rebuild.as_secs_f64()).sum();
        b / d.max(1e-9)
    };
    // Median across commits: single-sample minima are inside the container's
    // ±10% wall noise (ROADMAP), which deterministic counters — not
    // timings — are responsible for guarding.
    let met = machinery_median >= 5.0;
    if !met {
        eprintln!(
            "WARNING: machinery speedup (median) {machinery_median:.2}x below the 5x \
             target (wall-clock; see acceptance notes in the json)"
        );
    }
    let json = Obj::new()
        .field("bench", "pr4_delta_csr")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("churn_edges_per_commit", churn)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "delta-CSR commit machinery (snapshot patch + color carry + dirty \
                     detection; the deletion sub-commits, which repair nothing) is >=5x \
                     faster (median across commits) than the PR 3 rebuild path at \
                     n=50k/1% churn, with reports and colorings bit-identical on every \
                     sub-commit (asserted before timing) and the split replay equal to \
                     the unsplit trace",
                )
                .field("met", met)
                .field("machinery_median_speedup", machinery_median)
                .field("machinery_min_speedup", machinery_min)
                .field("end_to_end_speedup", end_to_end)
                .field(
                    "note",
                    "repair commits share the identical O(region) pipeline on both \
                     paths, so their speedup bounds toward 1 as the region grows; the \
                     machinery rows isolate what this PR changed",
                )
                .build(),
        )
        .field(
            "initial_build",
            Obj::new()
                .field("m", initial.m)
                .field("rounds", initial.stats.rounds)
                .field("messages", initial.stats.messages)
                .build(),
        )
        .field("commits", Value::Array(rows.iter().map(Row::to_json).collect()))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr4.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    println!(
        "machinery speedup over {} clean commits: median {machinery_median:.2}x, \
         min {machinery_min:.2}x; end-to-end {end_to_end:.2}x over {} commits",
        machinery.len(),
        machinery.len() + repairing.len()
    );
}
