//! **E3 — the Section 1.3 headline**: the defect × colors product of
//! Procedure Defective-Color is linear in Δ on bounded-NI graphs, versus
//! the superlinear `O(Δ·p)` of Kuhn's general-graph routine.
//!
//! "In all previous efficient distributed routines for m-defective
//! p-coloring the product m·p is super-linear in Δ. In our routine this
//! product is linear in Δ." We run both routines on the same line graph
//! (where `c = 2`) and print the measured products across `p`.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::code_reduction::{linial_coloring, run_code_reduction};
use deco_core::defective::defective_color;
use deco_core::math::kuhn_schedule;
use deco_graph::coloring::VertexColoring;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

fn main() {
    banner("E3 / §1.3", "defect × colors: Algorithm 1 (ours, p colors) vs Kuhn [19] (p² colors)");
    let (n, cap) = match scale() {
        Scale::Quick => (150usize, 14usize),
        Scale::Full => (400, 24),
    };
    let host = generators::random_bounded_degree(n, cap, 0xE3);
    let g = line_graph(&host);
    let delta = g.max_degree() as u64;
    println!("workload: line graph (c = 2), n_L = {}, Δ_L = {delta}\n", g.n());

    let table = Table::new(
        &["p", "routine", "colors", "defect", "product", "bound m·χ", "bound/Δ"],
        &[4, 26, 7, 7, 8, 10, 8],
    );
    for p in [2u64, 3, 4, 6, 8] {
        if p > delta {
            continue;
        }
        // Ours: Algorithm 1 with b = 2 (Corollary 3.8).
        let net = Network::new(&g);
        let run = defective_color(&net, 2, p, delta);
        let ours = VertexColoring::new(run.psi);
        let d_ours = ours.defect(&g);
        let c_ours = ours.palette_size();
        let bound_ours = deco_core::defective::theorem_3_7_defect(2, 2, p, delta) * p;
        table.row(&[
            p.to_string(),
            "ours (Defective-Color)".into(),
            c_ours.to_string(),
            d_ours.to_string(),
            (c_ours * d_ours).to_string(),
            bound_ours.to_string(),
            format!("{:.2}", bound_ours as f64 / delta as f64),
        ]);

        // Kuhn's general-graph routine: ⌊Δ/p⌋-defective O(p²)-coloring.
        let net = Network::new(&g);
        let (aux, palette, _) = linial_coloring(&net);
        let steps = kuhn_schedule(palette, delta, (delta / p).max(1));
        let groups = vec![0u64; g.n()];
        let (colors, _) = run_code_reduction(&net, &groups, 1, &aux, steps.clone());
        let kuhn = VertexColoring::new(colors);
        let d_kuhn = kuhn.defect(&g);
        let c_kuhn = kuhn.palette_size();
        // Guaranteed bound: ⌊Δ/p⌋ defect on the palette the schedule lands
        // on (or the input palette when it cannot shrink).
        let palette_bound = steps.last().map(|s| s.to_palette).unwrap_or(palette);
        let bound_kuhn = (delta / p).max(1) * palette_bound;
        table.row(&[
            p.to_string(),
            "Kuhn [19] (general graphs)".into(),
            c_kuhn.to_string(),
            d_kuhn.to_string(),
            (c_kuhn * d_kuhn).to_string(),
            bound_kuhn.to_string(),
            format!("{:.2}", bound_kuhn as f64 / delta as f64),
        ]);
        table.rule();
    }
    println!(
        "shape check: ours uses exactly p colors so the product tracks the defect\n\
         bound (c+ε)Δ + cp = O(Δ); Kuhn's palette is Θ(p²) while its defect is\n\
         Θ(Δ/p), so its product grows like Δ·p — superlinear in Δ as p grows."
    );
}
