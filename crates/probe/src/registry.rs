//! A small metrics registry: named counters and deterministic fixed-bucket
//! histograms, with a stable text exposition format.
//!
//! The registry is what [`report::Report`](crate::report::Report) builds
//! on, but it is usable on its own: counters and histograms are keyed by
//! name in a `BTreeMap`, so [`Registry::expose`] renders the same bytes
//! for the same observations regardless of insertion order — the
//! exposition itself is part of the deterministic surface.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram with fixed power-of-two bucket bounds.
///
/// Bounds are `1, 2, 4, …, 2^62` plus an implicit `+Inf` bucket; a value
/// `v` lands in the first bucket whose bound is `>= v` (zero lands in the
/// `1` bucket). Fixed bounds keep histograms mergeable and deterministic:
/// no adaptive resizing, no configuration to disagree on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// `counts[i]` observations fell in bucket `i` (bound `2^i`); the last
    /// slot is the `+Inf` bucket.
    counts: Vec<u64>,
    sum: u64,
    total: u64,
}

/// Number of finite buckets (bounds `2^0 ..= 2^62`).
const FINITE_BUCKETS: usize = 63;

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = if value <= 1 {
            0
        } else {
            let bits = 64 - u64::leading_zeros(value - 1) as usize;
            bits.min(FINITE_BUCKETS)
        };
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Occupied `(upper_bound, count)` buckets in ascending bound order;
    /// an upper bound of `u64::MAX` denotes the `+Inf` bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let bound = if i >= FINITE_BUCKETS { u64::MAX } else { 1u64 << i };
            (bound, c)
        })
    }
}

/// Named counters and histograms with a stable text exposition.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to `value` (for gauge-like facts that are
    /// not accumulated).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Records `value` in the histogram `name`, creating it if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// The counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stable text exposition: counters as `name value` lines, histograms
    /// as cumulative `name_bucket{le="bound"} count` lines plus `_sum` and
    /// `_count`, everything in name order. Same observations ⇒ same bytes.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let mut cum = 0u64;
            for (bound, count) in h.buckets() {
                cum += count;
                if bound == u64::MAX {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1024] {
            h.observe(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1), (1024, 1)]);
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1056);
    }

    #[test]
    fn huge_values_land_in_inf() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(u64::MAX, 1)]);
    }

    #[test]
    fn exposition_is_insertion_order_independent() {
        let mut a = Registry::new();
        a.inc("zeta", 2);
        a.inc("alpha", 1);
        a.observe("sizes", 3);
        a.observe("sizes", 100);

        let mut b = Registry::new();
        b.observe("sizes", 100);
        b.inc("alpha", 1);
        b.observe("sizes", 3);
        b.inc("zeta", 2);

        assert_eq!(a.expose(), b.expose());
        let text = a.expose();
        assert!(text.starts_with("alpha 1\nzeta 2\n"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"4\"} 1\n"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"128\"} 2\n"), "{text}");
        assert!(text.contains("sizes_sum 103\n"), "{text}");
        assert!(text.contains("sizes_count 2\n"), "{text}");
    }

    #[test]
    fn set_overwrites() {
        let mut r = Registry::new();
        r.set("g", 5);
        r.set("g", 3);
        assert_eq!(r.counter("g"), 3);
        assert_eq!(r.counter("missing"), 0);
    }
}
