//! **E6 — Figure 3 / Lemma 4.4**: the recursion tree of Procedure
//! Legal-Color.
//!
//! Verifies and prints the per-level invariants the figure illustrates:
//! the degree bound Λ⁽ʲ⁾ decays geometrically (equation (1)), all nodes of
//! a level return the same ϑ⁽ʲ⁾, and the root's palette is
//! ϑ⁽⁰⁾ = p^r·(Λ̂+1) = O(Δ).

use deco_bench::{banner, scale, Scale, Table};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

fn main() {
    banner("E6 / Figure 3", "Legal-Color recursion: Λ decay and ϑ accounting");
    let (n, cap) = match scale() {
        Scale::Quick => (260usize, 40usize),
        Scale::Full => (600, 80),
    };
    let host = generators::random_bounded_degree(n, cap, 0xE6);
    let g = line_graph(&host);
    let delta = g.max_degree() as u64;
    let params = LegalParams::log_depth(2, 1);
    println!(
        "workload: line graph, n_L = {}, Δ_L = {delta}; params b={} p={} λ={}\n",
        g.n(),
        params.b,
        params.p,
        params.lambda
    );

    let net = Network::new(&g);
    let run = legal_color(&net, 2, params).unwrap();
    assert!(run.coloring.is_proper(&g));

    let table = Table::new(
        &["level", "Λ_in", "Λ_out", "contraction", "classes", "ϑ(level)", "rounds"],
        &[6, 7, 7, 12, 9, 10, 7],
    );
    // ϑ at level j: (Λ̂+1)·p^(r-j), uniform across the level's classes.
    let r = run.levels.len() as u32;
    for t in &run.levels {
        let theta_j = (run.bottom_lambda + 1) * params.p.pow(r - t.level as u32);
        table.row(&[
            t.level.to_string(),
            t.lambda_in.to_string(),
            t.lambda_out.to_string(),
            format!("{:.2}x", t.lambda_in as f64 / t.lambda_out.max(1) as f64),
            t.classes.to_string(),
            theta_j.to_string(),
            t.rounds.to_string(),
        ]);
        // Equation (1): the contraction is at least bp/(c(b+1)) asymptotically;
        // check it is strict at every level.
        assert!(t.lambda_out < t.lambda_in);
    }
    table.rule();
    table.row(&[
        "bottom".to_string(),
        run.bottom_lambda.to_string(),
        "-".into(),
        "-".into(),
        (params.p.pow(r)).to_string(),
        (run.bottom_lambda + 1).to_string(),
        "-".into(),
    ]);

    println!(
        "\nϑ⁽⁰⁾ = p^r·(Λ̂+1) = {} (colors actually used: {}); ϑ⁽⁰⁾/Δ = {:.2}.\n\
         Lemma 4.4: every invocation of a level returns the same ϑ, and the\n\
         palettes of sibling classes are disjoint — verified by properness plus\n\
         the ϑ arithmetic above.",
        run.theta,
        run.coloring.palette_size(),
        run.theta as f64 / delta.max(1) as f64
    );
}
