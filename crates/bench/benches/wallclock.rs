//! Criterion wall-clock benchmarks of the simulator and the main colorers.
//!
//! These complement the table harnesses (which measure *rounds*, the
//! paper's cost metric) with implementation-level throughput numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deco_core::code_reduction::linial_coloring;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::line_graph::line_graph;
use deco_graph::generators;
use deco_local::Network;
use std::hint::black_box;

fn bench_linial(c: &mut Criterion) {
    let mut group = c.benchmark_group("linial");
    for &n in &[200usize, 800] {
        let g = generators::random_bounded_degree(n, 8, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let net = Network::new(black_box(g));
                black_box(linial_coloring(&net))
            })
        });
    }
    group.finish();
}

fn bench_pr(c: &mut Criterion) {
    let mut group = c.benchmark_group("panconesi_rizzi");
    for &delta in &[8usize, 32] {
        let g = generators::random_bounded_degree(300, delta, 2);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &g, |b, g| {
            b.iter(|| black_box(pr_edge_color(black_box(g))))
        });
    }
    group.finish();
}

fn bench_edge_color(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_color");
    group.sample_size(10);
    let params = edge_log_depth(1);
    for &delta in &[16usize, 48] {
        let g = generators::random_bounded_degree(300, delta, 3);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &g, |b, g| {
            b.iter(|| black_box(edge_color(black_box(g), params, MessageMode::Long)))
        });
    }
    group.finish();
}

fn bench_legal_color(c: &mut Criterion) {
    let mut group = c.benchmark_group("legal_color_line_graph");
    group.sample_size(10);
    let l = line_graph(&generators::random_bounded_degree(150, 12, 4));
    group.bench_function("c2", |b| {
        b.iter(|| {
            let net = Network::new(black_box(&l));
            black_box(legal_color(&net, 2, LegalParams::log_depth(2, 1)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_linial, bench_pr, bench_edge_color, bench_legal_color);
criterion_main!(benches);
