//! Parallelized color reduction to a `(Λ+1)`-coloring (Lemma 2.1(2)).
//!
//! Given a proper `m`-coloring of a (sub)graph with maximum degree `Λ`,
//! repeatedly halve the palette: split the palette into blocks of
//! `2(Λ+1)` colors; within each block, process its color classes one per
//! round, each vertex picking a free color from the block's private
//! `(Λ+1)`-color target palette. Blocks run in parallel on disjoint target
//! palettes, so one phase of `2(Λ+1)` rounds maps `m` colors to
//! `⌈m/(2(Λ+1))⌉·(Λ+1) ≈ m/2` colors. After `O(log(m/Λ))` phases the palette
//! is `Λ+1`.
//!
//! This is the Kuhn–Wattenhofer reduction; the paper cites the linear-in-Δ
//! algorithm of Barenboim–Elkin \[4\] for this lemma. Our variant costs
//! `O(Λ·log Λ)` instead of `O(Λ)` rounds from an `O(Λ²)` palette — a
//! substitution documented in DESIGN.md, absorbed by the paper's own
//! ε-rescaling argument.
//!
//! Like every subroutine of Procedure Legal-Color, the protocol is
//! group-aware: it reduces all classes of a partition simultaneously,
//! coloring each class from its own `(Λ+1)`-palette.

use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::Vertex;
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats, SharedConfig};
// tidy: allow(hash-iter) — nbr_colors is keyed per neighbor; its only
// iterations are commutative folds (set-union into a bool mask, uniform
// rebase), so hash order cannot reach colors or counters.
use std::collections::HashMap;

/// One palette-halving phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionPhase {
    /// Palette size entering the phase.
    pub m: u64,
    /// Block size `2(Λ+1)` (the last block may be smaller).
    pub block: u64,
    /// Number of blocks `⌈m/block⌉`.
    pub nblocks: u64,
    /// Rounds in the phase: `block` picking steps plus one sync step.
    pub rounds: u64,
}

/// The phase schedule reducing palette `m0` to `target = Λ+1`.
pub fn reduction_schedule(m0: u64, lambda: u64) -> Vec<ReductionPhase> {
    let target = lambda + 1;
    let block = 2 * target;
    let mut phases = Vec::new();
    let mut m = m0;
    while m > target {
        let nblocks = m.div_ceil(block);
        phases.push(ReductionPhase { m, block, nblocks, rounds: block + 1 });
        m = nblocks * target;
    }
    phases
}

/// Total rounds of [`reduction_schedule`] plus the initial sync round.
pub fn reduction_rounds(m0: u64, lambda: u64) -> u64 {
    let phases = reduction_schedule(m0, lambda);
    if phases.is_empty() {
        0
    } else {
        1 + phases.iter().map(|p| p.rounds).sum::<u64>()
    }
}

#[derive(Debug)]
struct KwReduce {
    group: u64,
    group_domain: u64,
    color: u64,
    lambda: u64,
    phases: SharedConfig<Vec<ReductionPhase>>,
    phase_idx: usize,
    /// Round at which the current phase started (its step 0).
    phase_start: usize,
    /// Current colors of same-group neighbors, on the same clock as ours:
    /// during a phase, values `>= m` encode `m + block·(Λ+1) + j` picks.
    // tidy: allow(hash-iter) — values() folds are order-insensitive (see
    // the module-head allow); keys are never enumerated.
    nbr_colors: HashMap<Vertex, u64>,
    picked: bool,
}

impl KwReduce {
    fn announce(&self, ctx: &NodeCtx<'_>, value: u64, domain: u64) -> Vec<(Vertex, FieldMsg)> {
        ctx.broadcast(FieldMsg::new(&[(self.group, self.group_domain), (value, domain)]))
    }
}

impl Protocol for KwReduce {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Initial sync: everyone learns same-group neighbors' colors.
        let m0 = self.phases[0].m;
        self.announce(ctx, self.color, m0)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        for (sender, m) in inbox {
            if m.field(0) == self.group {
                self.nbr_colors.insert(*sender, m.field(1));
            }
        }
        if ctx.round == 1 {
            // Colors learned; phases begin next round.
            self.phase_start = 2;
            return Action::idle();
        }
        let phase = self.phases[self.phase_idx];
        let target = self.lambda + 1;
        let step = (ctx.round - self.phase_start) as u64;
        let mut out = Vec::new();
        if step < phase.block {
            // Picking step: vertices whose in-block position equals `step`
            // choose a free color in their block's target palette.
            if !self.picked && self.color % phase.block == step {
                let my_block = self.color / phase.block;
                let mut used = vec![false; target as usize];
                for &c in self.nbr_colors.values() {
                    if c >= phase.m {
                        let rebased = c - phase.m;
                        if rebased / target == my_block {
                            used[(rebased % target) as usize] = true;
                        }
                    }
                }
                let j = (0..target)
                    .find(|&j| !used[j as usize])
                    // INVARIANT: within-group degree is at most the group bound by the partition property, so the block palette retains a free color.
                    .expect("within-group degree exceeds Λ: no free color in block palette");
                self.color = phase.m + my_block * target + j;
                self.picked = true;
                let domain = phase.m + phase.nblocks * target;
                out = self.announce(ctx, self.color, domain);
            }
            Action::Continue(out)
        } else {
            // Sync step: everyone picked; rebase to the new palette.
            debug_assert!(self.picked, "every position is scheduled within a phase");
            self.color -= phase.m;
            for c in self.nbr_colors.values_mut() {
                debug_assert!(*c >= phase.m, "neighbor failed to pick during phase");
                *c -= phase.m;
            }
            self.picked = false;
            self.phase_idx += 1;
            self.phase_start = ctx.round + 1;
            if self.phase_idx == self.phases.len() {
                Action::halt()
            } else {
                Action::idle()
            }
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.color
    }
}

/// Reduces a proper-within-groups `m0`-coloring to a proper-within-groups
/// `(Λ+1)`-coloring, all groups in parallel, each group on the palette
/// `{0, ..., Λ}`.
///
/// `lambda` must bound the maximum degree *within* every group.
///
/// # Panics
///
/// Panics (inside the protocol) if a vertex has more than `lambda`
/// same-group neighbors, or if `init` is not proper within groups.
pub fn reduce_colors_in_groups(
    net: &Network<'_>,
    groups: &[u64],
    group_domain: u64,
    init: &[u64],
    m0: u64,
    lambda: u64,
) -> (Vec<u64>, RunStats) {
    assert_eq!(groups.len(), net.graph().n());
    assert_eq!(init.len(), net.graph().n());
    let phases = reduction_schedule(m0, lambda);
    if phases.is_empty() {
        return (init.to_vec(), RunStats::zero());
    }
    let phases = SharedConfig::new(phases);
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("kuhn-wattenhofer-reduce", |ctx| KwReduce {
        group: groups[ctx.vertex],
        group_domain,
        color: init[ctx.vertex],
        lambda,
        phases: SharedConfig::clone(&phases),
        phase_idx: 0,
        phase_start: 0,
        // tidy: allow(hash-iter) — same order-insensitive map as above.
        nbr_colors: HashMap::new(),
        picked: false,
    });
    (outputs, pl.into_stats())
}

/// Lemma 2.1(2): a legal `(Δ+1)`-coloring of the whole graph, via Linial
/// followed by the Kuhn–Wattenhofer reduction, in
/// `O(Δ log Δ) + O(log* n)` rounds.
///
/// Returns `(colors, stats)` with colors in `{0, ..., Δ}`.
pub fn delta_plus_one_coloring(net: &Network<'_>) -> (Vec<u64>, RunStats) {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let (lin, palette, stats1) = crate::code_reduction::linial_coloring(net);
    let groups = vec![0u64; g.n()];
    let (colors, stats2) = reduce_colors_in_groups(net, &groups, 1, &lin, palette, delta);
    (colors, stats1 + stats2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::coloring::VertexColoring;
    use deco_graph::generators;

    #[test]
    fn schedule_halves_palette() {
        let phases = reduction_schedule(100, 4);
        let mut m = 100;
        for p in &phases {
            assert_eq!(p.m, m);
            assert!(p.nblocks * 5 <= m.div_ceil(2).max(5) + 5);
            m = p.nblocks * 5;
        }
        assert!(m <= 5);
        assert!(reduction_schedule(5, 4).is_empty());
        assert!(reduction_schedule(1, 0).is_empty());
    }

    #[test]
    fn delta_plus_one_on_families() {
        for g in [
            generators::complete(9),
            generators::cycle(12),
            generators::petersen(),
            generators::random_bounded_degree(120, 7, 13),
            generators::clique_with_pendants(8),
        ] {
            let net = Network::new(&g);
            let (colors, stats) = delta_plus_one_coloring(&net);
            let c = VertexColoring::new(colors);
            assert!(c.is_proper(&g));
            assert!(
                c.color_bound() <= g.max_degree() as u64 + 1,
                "palette {} exceeds Δ+1 = {}",
                c.color_bound(),
                g.max_degree() + 1
            );
            // O(Δ log Δ + log* n) rounds with explicit constants.
            let delta = g.max_degree() as u64;
            let bound =
                reduction_rounds(crate::math::linial_final_palette(g.n() as u64, delta), delta)
                    + crate::math::log_star(g.n() as u64) as u64
                    + 8;
            assert!((stats.rounds as u64) <= bound, "rounds {} > bound {bound}", stats.rounds);
        }
    }

    #[test]
    fn grouped_reduction_runs_in_parallel() {
        // Clique split into 3 groups: each group (within-group degree 3)
        // reduces to palette {0..3} independently.
        let g = generators::complete(12);
        let net = Network::new(&g);
        let groups: Vec<u64> = (0..12).map(|v| (v % 3) as u64).collect();
        // Start from a trivially proper coloring: ident-1 (palette 12).
        let init: Vec<u64> = (0..12).map(|v| g.ident(v) - 1).collect();
        let (colors, _) = reduce_colors_in_groups(&net, &groups, 3, &init, 12, 3);
        for v in 0..12 {
            assert!(colors[v] <= 3);
            for u in g.neighbors(v) {
                if groups[u] == groups[v] {
                    assert_ne!(colors[u], colors[v]);
                }
            }
        }
    }

    #[test]
    fn already_small_palette_is_free() {
        let g = generators::path(6);
        let net = Network::new(&g);
        let init = vec![0, 1, 2, 0, 1, 2];
        let groups = vec![0u64; 6];
        let (colors, stats) = reduce_colors_in_groups(&net, &groups, 1, &init, 3, 2);
        assert_eq!(colors, init);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn reduction_rounds_formula() {
        assert_eq!(reduction_rounds(5, 4), 0);
        let phases = reduction_schedule(200, 4);
        assert_eq!(reduction_rounds(200, 4), 1 + phases.iter().map(|p| p.rounds).sum::<u64>());
    }
}
