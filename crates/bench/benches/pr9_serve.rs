//! **PR9 — deco-serve**: multi-tenant streaming recoloring throughput and
//! shard-count invariance at fleet scale.
//!
//! One scenario, run three times: a 1000-tenant fleet (heterogeneous
//! engines, thresholds and trace seeds; n ≈ 36..68, Δ ≤ 4, a build commit
//! plus churn commits per tenant) streamed batch-interleaved through the
//! sharded worker pool at **shards ∈ {1, 2, 8}**. Before anything is
//! recorded, every tenant's `CommitReport` transcript fingerprint and
//! final snapshot fingerprint are **hard-asserted bit-identical across
//! the three shard counts** — the serve determinism theorem at the scale
//! the issue names. The deterministic aggregates (total commits,
//! node-rounds, messages, the fleet fingerprint) are gate counters;
//! commits/sec and the p50/p99 engine-side commit latency per shard count
//! are wall metrics, informational only (±10% container noise, ROADMAP).
//!
//! Results land in `BENCH_pr9.json` (override with `DECO_BENCH_OUT`;
//! `DECO_BENCH_SCALE=full` deepens the churn per tenant — the fleet stays
//! at 1000 tenants, the acceptance scale).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, scale, Scale, Table};
use deco_graph::trace::{churn_trace, Trace};
use deco_serve::{reports_fingerprint, EngineKind, Serve, ServeConfig, TenantSpec};
use deco_stream::RecolorConfig;
use std::time::{Duration, Instant};

const TENANTS: usize = 1000;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// One tenant's deterministic outcome: transcript and snapshot
/// fingerprints (the pair the invariance assertion compares).
#[derive(Clone, Copy, PartialEq, Eq)]
struct TenantPrint {
    reports: u64,
    snapshot: u64,
}

struct Run {
    shards: usize,
    wall: Duration,
    prints: Vec<TenantPrint>,
    fleet: u64,
    total_commits: usize,
    total_node_rounds: u64,
    total_messages: u64,
    /// Engine-side commit walls across the whole fleet, sorted.
    commit_walls: Vec<Duration>,
}

impl Run {
    fn commits_per_sec(&self) -> f64 {
        self.total_commits as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_ms(&self, p: f64) -> f64 {
        if self.commit_walls.is_empty() {
            return 0.0;
        }
        let idx = ((self.commit_walls.len() - 1) as f64 * p).round() as usize;
        self.commit_walls[idx].as_secs_f64() * 1e3
    }
}

/// The per-tenant trace: seeds, sizes and knobs all vary with the tenant
/// index so the fleet is genuinely heterogeneous.
fn tenant_trace(i: usize, commits: usize) -> Trace {
    churn_trace(36 + (i % 5) * 8, 4, commits, 4, 0x9e17e ^ i as u64)
}

/// Streams the whole fleet at one shard count and collects everything the
/// gate and the invariance assertion need.
fn run_fleet(shards: usize, commits: usize) -> Run {
    let traces: Vec<Trace> = (0..TENANTS).map(|i| tenant_trace(i, commits)).collect();
    let serve = Serve::start(ServeConfig::default().with_shards(shards));
    let ids: Vec<_> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let engine = if i % 2 == 0 { EngineKind::Legacy } else { EngineKind::Segmented };
            let threshold = [10, 25, 60][i % 3];
            let spec = TenantSpec::new(format!("t{i}"), t.n0)
                .with_engine(engine)
                .with_config(RecolorConfig::default().with_repair_threshold(threshold));
            serve.register(spec).expect("valid spec")
        })
        .collect();

    // Batch-interleaved submission: all tenants advance one commit at a
    // time, so the pool always has a fleet's worth of claims in flight
    // and work stealing is exercised for real.
    let t0 = Instant::now();
    let max_batches = traces.iter().map(|t| t.batches().len()).max().unwrap_or(0);
    for b in 0..max_batches {
        for (&id, trace) in ids.iter().zip(&traces) {
            let batches = trace.batches();
            let Some(batch) = batches.get(b) else { continue };
            for &op in *batch {
                serve.submit_blocking(id, op).expect("valid trace");
            }
            serve.commit_blocking(id).expect("valid trace");
        }
    }
    serve.drain();
    let wall = t0.elapsed();

    let mut prints = Vec::with_capacity(TENANTS);
    let mut total_commits = 0usize;
    let mut total_node_rounds = 0u64;
    let mut total_messages = 0u64;
    let mut commit_walls = Vec::new();
    for &id in &ids {
        assert!(serve.errors(id).expect("registered").is_empty(), "tenant {id} errored");
        let reports = serve.reports(id).expect("registered");
        let snap = serve.snapshot(id).expect("registered");
        assert!(snap.coloring.is_proper(&snap.graph), "tenant {id}: improper coloring");
        total_commits += reports.len();
        for r in &reports {
            total_node_rounds += r.stats.node_rounds as u64;
            total_messages += r.stats.messages as u64;
        }
        commit_walls.extend(serve.commit_walls(id).expect("registered"));
        prints.push(TenantPrint {
            reports: reports_fingerprint(&reports),
            snapshot: snap.fingerprint(),
        });
    }
    let fleet = serve.fleet_fingerprint();
    serve.shutdown();
    commit_walls.sort_unstable();
    Run {
        shards,
        wall,
        prints,
        fleet,
        total_commits,
        total_node_rounds,
        total_messages,
        commit_walls,
    }
}

fn main() {
    banner("PR9 / deco-serve", "1000-tenant fleet: shard-invariant transcripts, throughput");
    let full = scale() == Scale::Full;
    let commits = if full { 6 } else { 3 };
    println!(
        "{TENANTS} tenants x churn_trace(n=36..68, Δ≤4, {commits} churn commits), \
         shards {SHARD_COUNTS:?} ..."
    );

    let runs: Vec<Run> = SHARD_COUNTS.iter().map(|&s| run_fleet(s, commits)).collect();

    // The acceptance criterion, hard-asserted where it is measured:
    // per-tenant results are bit-identical whatever the shard count.
    let base = &runs[0];
    for run in &runs[1..] {
        for (t, (a, b)) in base.prints.iter().zip(&run.prints).enumerate() {
            assert!(
                a.reports == b.reports,
                "tenant {t}: transcript fingerprint moved between {} and {} shards",
                base.shards,
                run.shards
            );
            assert!(
                a.snapshot == b.snapshot,
                "tenant {t}: snapshot fingerprint moved between {} and {} shards",
                base.shards,
                run.shards
            );
        }
        assert!(
            base.fleet == run.fleet,
            "fleet fingerprint moved between {} and {} shards",
            base.shards,
            run.shards
        );
        assert_eq!(base.total_commits, run.total_commits);
        assert_eq!(base.total_node_rounds, run.total_node_rounds);
        assert_eq!(base.total_messages, run.total_messages);
    }
    println!();
    let table = Table::new(
        &["shards", "wall ms", "commits/s", "p50 commit", "p99 commit"],
        &[6, 9, 11, 12, 12],
    );
    for r in &runs {
        table.row(&[
            r.shards.to_string(),
            format!("{:.1}", r.wall.as_secs_f64() * 1e3),
            format!("{:.0}", r.commits_per_sec()),
            format!("{:.3} ms", r.percentile_ms(0.50)),
            format!("{:.3} ms", r.percentile_ms(0.99)),
        ]);
    }
    println!("\n(fingerprints and totals are deterministic and gate-guarded; wall,");
    println!(" throughput and latency percentiles are informational)");

    let mut acceptance = Obj::new()
        .field(
            "criterion",
            "1000 heterogeneous tenants streamed through the sharded worker pool \
             at shards 1, 2 and 8: every tenant's CommitReport transcript \
             fingerprint and snapshot fingerprint, the fleet fingerprint and the \
             aggregate totals are bit-identical across shard counts \
             (hard-asserted above); commits/sec and commit-latency percentiles \
             are informational",
        )
        .field("met", true)
        .field("tenant_fleet", TENANTS);
    for r in &runs {
        let wall_ms = format!("wall_ms_s{}", r.shards);
        let cps = format!("commits_per_sec_s{}", r.shards);
        let p50 = format!("p50_commit_ms_s{}", r.shards);
        let p99 = format!("p99_commit_ms_s{}", r.shards);
        acceptance = acceptance
            .field(&wall_ms, r.wall.as_secs_f64() * 1e3)
            .field(&cps, r.commits_per_sec())
            .field(&p50, r.percentile_ms(0.50))
            .field(&p99, r.percentile_ms(0.99));
    }
    let json = Obj::new()
        .field("bench", "pr9_serve")
        .field("scale", if full { "full" } else { "quick" })
        .field("tenants", TENANTS)
        .field("churn_commits_per_tenant", commits)
        .field("shard_counts", Value::Array(SHARD_COUNTS.iter().map(|&s| s.into()).collect()))
        .field("acceptance", acceptance.build())
        .field("total_commits", base.total_commits)
        .field("total_node_rounds", base.total_node_rounds)
        .field("total_messages", base.total_messages)
        .field("fleet_fingerprint", format!("{:016x}", base.fleet))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr9.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    println!(
        "fleet fingerprint {:016x}, {} commits, shard-invariant across {SHARD_COUNTS:?}",
        base.fleet, base.total_commits
    );
}
