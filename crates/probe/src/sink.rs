//! Event sinks: the [`Probe`] trait and its three implementations.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::Event;
use crate::fnv1a64;

/// A structured event sink.
///
/// Emit sites must gate event construction on [`Probe::enabled`]:
///
/// ```ignore
/// if probe.enabled() {
///     probe.emit(Event::Region { commit, dirty });
/// }
/// ```
///
/// so a disabled probe ([`NullProbe`], the default everywhere) costs one
/// predictable branch and never allocates.
///
/// # Determinism contract
///
/// Emitters may only put machine- or configuration-dependent data (wall
/// clock, thread/worker counts, chosen delivery modes, allocator
/// occupancy) into [`Event::Env`] entries. Every other event must be
/// byte-identical for a fixed scenario regardless of `DECO_THREADS`,
/// `DECO_DELIVERY`, the engine, or the commit path — the bench gate's
/// counters-over-wall policy extended to the event stream. Sinks must be
/// `Send + Sync` because parallel runners may emit from worker threads
/// (today all emission happens post-run on the driving thread, which is
/// what keeps the ordering deterministic).
pub trait Probe: std::fmt::Debug + Send + Sync {
    /// Whether events should be constructed and emitted at all.
    fn enabled(&self) -> bool;
    /// Records one event. Implementations must not reorder events.
    fn emit(&self, event: Event);
}

/// The disabled sink: [`Probe::enabled`] is `false` and [`Probe::emit`]
/// drops the event. The default probe of every `Network`, `Recolorer` and
/// graph; the pr8 bench pins this path at zero extra allocations.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn enabled(&self) -> bool {
        false
    }
    fn emit(&self, _event: Event) {}
}

/// The shared process-wide [`NullProbe`], so default-constructed networks
/// and graphs attach a probe without a per-instance allocation.
pub fn null() -> Arc<dyn Probe> {
    static NULL: OnceLock<Arc<dyn Probe>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullProbe)))
}

/// An in-memory sink for tests, benches and in-process report building.
#[derive(Debug, Default)]
pub struct RecordingProbe {
    events: Mutex<Vec<Event>>,
}

impl RecordingProbe {
    /// A fresh, empty recorder.
    pub fn new() -> RecordingProbe {
        RecordingProbe::default()
    }

    /// A clone of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.events.lock().expect("probe lock").clone()
    }

    /// Drains the recorder, returning everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        std::mem::take(&mut *self.events.lock().expect("probe lock"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.events.lock().expect("probe lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a fingerprint of the deterministic subsequence: each event with
    /// [`Event::is_deterministic`] contributes its JSONL line plus a
    /// newline. [`Event::Env`] entries are skipped entirely, so digests
    /// compare equal across thread counts and delivery modes — this is the
    /// value the determinism matrix and `BENCH_pr8.json` pin.
    pub fn digest(&self) -> u64 {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        digest_events(&self.events.lock().expect("probe lock"))
    }
}

impl Probe for RecordingProbe {
    fn enabled(&self) -> bool {
        true
    }
    fn emit(&self, event: Event) {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.events.lock().expect("probe lock").push(event);
    }
}

/// FNV-1a fingerprint of a slice of events under the same rules as
/// [`RecordingProbe::digest`] (deterministic events only, JSONL lines
/// separated by `\n`).
pub fn digest_events(events: &[Event]) -> u64 {
    let mut h = fnv1a64(b"");
    for ev in events.iter().filter(|e| e.is_deterministic()) {
        let line = ev.to_jsonl();
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A file sink: one JSON object per line, in emission order, including
/// [`Event::Env`] entries (consumers that need the deterministic stream
/// filter with [`Event::is_deterministic`] after re-parsing). Buffered;
/// flushed on drop and on [`JsonlProbe::flush`].
pub struct JsonlProbe {
    out: Mutex<BufWriter<File>>,
}

impl std::fmt::Debug for JsonlProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlProbe").finish_non_exhaustive()
    }
}

impl JsonlProbe {
    /// Creates (truncating) `path` and returns a probe streaming to it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlProbe> {
        let file = File::create(path)?;
        Ok(JsonlProbe { out: Mutex::new(BufWriter::new(file)) })
    }

    /// Flushes buffered lines to the file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn flush(&self) -> io::Result<()> {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.out.lock().expect("probe lock").flush()
    }
}

impl Probe for JsonlProbe {
    fn enabled(&self) -> bool {
        true
    }
    fn emit(&self, event: Event) {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut out = self.out.lock().expect("probe lock");
        // A full disk mid-profile should not abort the run it observes.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }
}

impl Drop for JsonlProbe {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Reads a JSONL profile written by [`JsonlProbe`] back into events.
/// Blank lines are skipped.
///
/// # Errors
///
/// Returns the first [`ParseError`](crate::ParseError), annotated with its
/// 1-based line number via the message.
pub fn read_jsonl(text: &str) -> Result<Vec<Event>, crate::ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(_, l)| Event::parse_jsonl(l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counters;

    #[test]
    fn null_probe_is_disabled() {
        assert!(!NullProbe.enabled());
        assert!(!null().enabled());
        null().emit(Event::CommitBytes { bytes: 1 });
    }

    #[test]
    fn null_is_shared() {
        let a = null();
        let b = null();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn recording_probe_preserves_order_and_digests_deterministically() {
        let p = RecordingProbe::new();
        p.emit(Event::PhaseEnter { name: "a".into() });
        p.emit(Event::env("threads", "8"));
        p.emit(Event::PhaseExit { name: "a".into(), stats: Counters::zero() });
        assert_eq!(p.len(), 3);
        let d1 = p.digest();

        let q = RecordingProbe::new();
        q.emit(Event::PhaseEnter { name: "a".into() });
        q.emit(Event::env("threads", "1"));
        q.emit(Event::env("wall_ms", "17"));
        q.emit(Event::PhaseExit { name: "a".into(), stats: Counters::zero() });
        assert_eq!(d1, q.digest(), "Env events must not affect the digest");

        let r = RecordingProbe::new();
        r.emit(Event::PhaseExit { name: "a".into(), stats: Counters::zero() });
        r.emit(Event::PhaseEnter { name: "a".into() });
        assert_ne!(d1, r.digest(), "order must affect the digest");
    }

    #[test]
    fn jsonl_probe_round_trips() {
        let dir = std::env::temp_dir().join("deco-probe-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let events = vec![
            Event::CommitEnter { commit: 0, inserted: 1, deleted: 0, n: 4, m: 3, max_degree: 2 },
            Event::env("wall_us", "12"),
            Event::CommitExit {
                commit: 0,
                strategy: "clean".into(),
                recolored: 0,
                schedule_classes: 0,
                color_bound: 7,
                region_vertices: 0,
                retries: 0,
                fallbacks: 0,
                stats: Counters::zero(),
            },
        ];
        {
            let p = JsonlProbe::create(&path).expect("create");
            assert!(p.enabled());
            for ev in &events {
                p.emit(ev.clone());
            }
        }
        let text = std::fs::read_to_string(&path).expect("read");
        let back = read_jsonl(&text).expect("parse");
        assert_eq!(back, events);
        assert_eq!(digest_events(&back), digest_events(&events));
        std::fs::remove_file(&path).ok();
    }
}
