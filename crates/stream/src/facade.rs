//! The object-safe engine facade.
//!
//! [`RegionRecolor`] is the one surface the replay machinery, the
//! `deco-stream` CLI, the benches and the `deco-serve` multi-tenant
//! service drive a recoloring engine through. Both engines implement it —
//! [`Recolorer`] (delta-CSR commits, lexicographic edge indices) and
//! [`SegRecolorer`] (segmented commits, stable edge ids) — so callers pick
//! a representation at construction time and stay representation-agnostic
//! afterwards, and future strategies (the Fuchs–Kuhn (Δ+1) line of work)
//! can slot in behind the same trait.

use crate::recolor::{CommitReport, Recolorer};
use crate::seg_recolor::SegRecolorer;
use deco_graph::coloring::EdgeColoring;
use deco_graph::trace::TraceOp;
use deco_graph::{Graph, GraphError};
use deco_probe::Probe;
use std::sync::Arc;

/// An incremental edge-recoloring engine driven through one object-safe
/// surface: queue trace operations, commit them in batches, read the
/// maintained coloring.
///
/// # Determinism contract
///
/// Every implementation extends the simulator's determinism contract over
/// mutation: for a fixed engine construction (same initial graph,
/// parameters, mode and [`RecolorConfig`](crate::RecolorConfig)), the same
/// sequence of [`queue_op`](RegionRecolor::queue_op) /
/// [`commit`](RegionRecolor::commit) /
/// [`request_compaction`](RegionRecolor::request_compaction) calls
/// produces **bit-identical** [`CommitReport`]s, colorings and snapshots —
/// at any thread count, any delivery mode, and regardless of what else
/// runs in the process. Across the two shipped engines the contract is
/// the parity contract of the `seg_recolor` module: identical reports up
/// to `stats.commit_bytes` (the quantity the segmented path improves) and
/// identical [`coloring`](RegionRecolor::coloring) on a perfect
/// transport; identical colorings with possibly differing message-bit
/// counters on a faulty one. Wall time is, obviously, excluded.
///
/// `deco-serve` leans on this contract for its own: per-tenant results
/// are independent of how tenants are sharded across worker threads,
/// because each tenant's call sequence is totally ordered and each call
/// is deterministic.
pub trait RegionRecolor {
    /// Queues one trace operation for the next commit.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] exactly when the underlying queueing call
    /// does; the already-queued prefix of the batch stays queued.
    fn queue_op(&mut self, op: TraceOp) -> Result<(), GraphError>;

    /// Applies the queued batch and repairs the coloring.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the batch is invalid; the previous
    /// snapshot and coloring are untouched and the batch is discarded.
    fn commit(&mut self) -> Result<CommitReport, GraphError>;

    /// Commits applied so far.
    fn commits(&self) -> usize;

    /// The current committed snapshot, materialized in lexicographic edge
    /// order (both engines agree bit for bit; for the segmented engine
    /// this clones through `SegmentedGraph::to_graph`).
    fn snapshot(&self) -> Graph;

    /// The current coloring in lexicographic edge order — index `i`
    /// colors edge `i` of [`snapshot`](RegionRecolor::snapshot), so
    /// results compare directly across engines.
    ///
    /// # Panics
    ///
    /// Panics if called before the first commit on an engine constructed
    /// over a non-empty graph (the initial coloring has not run yet).
    fn coloring(&self) -> EdgeColoring;

    /// The palette bound the current snapshot's colors are kept under.
    fn color_bound(&self) -> u64;

    /// Requests a palette compaction: the next successful
    /// [`commit`](RegionRecolor::commit) runs the from-scratch pipeline
    /// (reporting `FromScratch`) even if its batch alone would have been
    /// clean, then the request is consumed. Idempotent until consumed; a
    /// commit on an edgeless snapshot consumes it as a no-op. This is the
    /// demand-driven sibling of
    /// [`with_compaction_every`](crate::RecolorConfig::with_compaction_every) —
    /// `deco-serve` schedules it per tenant from accumulated
    /// `node_rounds` cost, deterministically.
    fn request_compaction(&mut self);

    /// Verifies the maintained coloring: complete, proper on the current
    /// snapshot, and within [`color_bound`](RegionRecolor::color_bound).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation. The
    /// engines uphold the invariant after every commit, so an `Err` here
    /// means a bug (or a caller inspecting an engine before its first
    /// commit over a non-empty graph).
    fn verify(&self) -> Result<(), String>;

    /// The engine's event sink.
    fn probe(&self) -> &Arc<dyn Probe>;
}

/// Shared `verify` body: both engines expose a lexicographic snapshot and
/// coloring, so the check is representation-agnostic.
fn verify_lex(engine: &(impl RegionRecolor + ?Sized)) -> Result<(), String> {
    let g = engine.snapshot();
    let coloring = engine.coloring();
    if coloring.colors().len() != g.m() {
        return Err(format!(
            "coloring covers {} edges, snapshot has {}",
            coloring.colors().len(),
            g.m()
        ));
    }
    if !coloring.is_proper(&g) {
        return Err("coloring is not proper on the committed snapshot".to_string());
    }
    let bound = engine.color_bound();
    if let Some(&worst) = coloring.colors().iter().max() {
        if worst >= bound {
            return Err(format!("color {worst} breaches the palette bound {bound}"));
        }
    }
    Ok(())
}

macro_rules! impl_region_recolor {
    ($engine:ty, $snapshot:expr) => {
        impl RegionRecolor for $engine {
            fn queue_op(&mut self, op: TraceOp) -> Result<(), GraphError> {
                match op {
                    TraceOp::Insert(u, v) => self.insert_edge(u, v),
                    TraceOp::Delete(u, v) => self.delete_edge(u, v),
                    TraceOp::AddVertices(k) => {
                        for _ in 0..k {
                            self.add_vertex();
                        }
                        Ok(())
                    }
                    TraceOp::SetIdent(v, ident) => self.set_ident(v, ident),
                    TraceOp::Shrink => {
                        self.shrink_isolated();
                        Ok(())
                    }
                    // `Trace::batches()` strips these; tolerate anyway.
                    TraceOp::Commit => Ok(()),
                }
            }

            fn commit(&mut self) -> Result<CommitReport, GraphError> {
                <$engine>::commit(self)
            }

            fn commits(&self) -> usize {
                <$engine>::commits(self)
            }

            fn snapshot(&self) -> Graph {
                #[allow(clippy::redundant_closure_call)]
                ($snapshot)(self)
            }

            fn coloring(&self) -> EdgeColoring {
                <$engine>::coloring(self)
            }

            fn color_bound(&self) -> u64 {
                <$engine>::color_bound(self)
            }

            fn request_compaction(&mut self) {
                <$engine>::request_compaction(self)
            }

            fn verify(&self) -> Result<(), String> {
                verify_lex(self)
            }

            fn probe(&self) -> &Arc<dyn Probe> {
                <$engine>::probe(self)
            }
        }
    };
}

impl_region_recolor!(Recolorer, |r: &Recolorer| r.graph().clone());
impl_region_recolor!(SegRecolorer, |r: &SegRecolorer| r.segmented().to_graph().0);
