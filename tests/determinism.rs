//! Determinism guarantees: identical inputs produce identical runs, and
//! identifier permutations change outcomes without breaking validity.

use deco_core::baselines::randomized_trial::randomized_trial_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_core::randomized::randomized_edge_color;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

#[test]
fn deterministic_edge_color_runs() {
    let g = generators::random_bounded_degree(200, 55, 1);
    let a = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    let b = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.levels, b.levels);
}

#[test]
fn deterministic_vertex_color_runs() {
    let l = line_graph(&generators::random_bounded_degree(80, 10, 2));
    let net = Network::new(&l);
    let a = legal_color(&net, 2, LegalParams::log_depth(2, 1)).unwrap();
    let b = legal_color(&net, 2, LegalParams::log_depth(2, 1)).unwrap();
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn deterministic_pr_runs() {
    let g = generators::random_bounded_degree(150, 12, 3);
    let a = pr_edge_color(&g);
    let b = pr_edge_color(&g);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn randomized_algorithms_are_seed_deterministic() {
    let g = generators::random_bounded_degree(150, 10, 4);
    let a = randomized_trial_edge_color(&g, 11);
    let b = randomized_trial_edge_color(&g, 11);
    assert_eq!(a.0, b.0);
    let c = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 11).unwrap();
    let d = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 11).unwrap();
    assert_eq!(c.inner.coloring, d.inner.coloring);
}

#[test]
fn ident_permutation_preserves_validity() {
    // Identifiers drive every tie-break; permuting them may change colors
    // but never validity or declared palette bounds.
    let base = generators::random_bounded_degree(120, 50, 5);
    let params = edge_log_depth(1);
    let reference = edge_color(&base, params, MessageMode::Long).unwrap();
    for seed in [6u64, 7, 8] {
        let g = generators::shuffle_idents(&base, seed);
        let run = edge_color(&g, params, MessageMode::Long).unwrap();
        assert!(run.coloring.is_proper(&g));
        assert_eq!(run.theta, reference.theta, "ϑ depends only on Δ and params");
    }
}

#[test]
fn vertex_index_order_does_not_leak() {
    // Build the same graph with a different edge insertion order: the
    // normalized Graph is equal, so runs must be identical.
    let mut edges: Vec<(usize, usize)> =
        generators::random_bounded_degree(90, 8, 9).edges().collect();
    let g1 = deco_graph::Graph::from_edges(90, &edges).unwrap();
    edges.reverse();
    let g2 = deco_graph::Graph::from_edges(90, &edges).unwrap();
    assert_eq!(g1, g2);
    let a = pr_edge_color(&g1);
    let b = pr_edge_color(&g2);
    assert_eq!(a.0, b.0);
}
