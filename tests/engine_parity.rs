//! The simulator's determinism contract, pinned across delivery engines:
//! the slot-arena engine (sequential), the threaded engine at several
//! thread budgets, and the pre-refactor naive reference must produce
//! bit-identical outputs, `RunStats` and per-round `RoundLoad` profiles.

use deco_graph::generators;
use deco_local::{Action, Network, NodeCtx, Protocol, RoundLoad, Run};

/// A gossip protocol with data-dependent fan-out and staggered halting:
/// every branch of the delivery machinery (broadcasts, selective sends,
/// silent rounds, mid-run halts with a final send) is exercised, and the
/// output hashes the entire message history, so any reordering or lost or
/// duplicated delivery changes it.
struct Gossip {
    acc: u64,
    rounds_left: usize,
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
        self.acc = ctx.ident.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ctx.broadcast(self.acc)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
        for &(s, m) in inbox {
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_add(m ^ (s as u64).wrapping_mul(0xd134_2543_de82_ef95));
        }
        if self.rounds_left == 0 || (ctx.vertex + ctx.round) % 11 == 0 {
            return Action::Halt(ctx.broadcast(self.acc));
        }
        self.rounds_left -= 1;
        match self.acc % 3 {
            0 => Action::Broadcast(self.acc),
            1 => Action::Continue(
                ctx.neighbors
                    .iter()
                    .filter(|&&u| (u ^ ctx.vertex) % 2 == 0)
                    .map(|&u| (u, self.acc ^ u as u64))
                    .collect(),
            ),
            _ => Action::idle(),
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.acc
    }
}

/// A profiled run: outputs/stats plus the per-round load profile.
type ProfiledRun = (Run<u64>, Vec<RoundLoad>);

fn run_all_engines(net: &Network<'_>) -> Vec<(&'static str, ProfiledRun)> {
    let mk = |_: &NodeCtx<'_>| Gossip { acc: 0, rounds_left: 20 };
    let mut runs = vec![("slot-seq", net.run_profiled(mk)), ("naive", net.run_profiled_naive(mk))];
    for threads in [1usize, 2, 3, 8] {
        let net = Network::new(net.graph()).with_threads(threads);
        runs.push(("slot-threaded", net.run_profiled_threaded(mk)));
    }
    runs
}

#[test]
fn all_engines_bit_identical_on_random_graphs() {
    for (n, m, seed) in [(60, 150, 1u64), (500, 2000, 2), (3000, 12000, 3)] {
        let g = generators::random_graph(n, m, seed);
        let net = Network::new(&g);
        let runs = run_all_engines(&net);
        let (name0, reference) = &runs[0];
        assert_eq!(*name0, "slot-seq");
        for (name, run) in &runs[1..] {
            assert_eq!(reference.0.outputs, run.0.outputs, "{name} outputs diverged");
            assert_eq!(reference.0.stats, run.0.stats, "{name} stats diverged");
            assert_eq!(reference.1, run.1, "{name} profile diverged");
        }
        // Identifier permutations must not be able to hide behind vertex
        // indices: a shuffled-ident copy diverges, deterministically.
        let h = generators::shuffle_idents(&g, seed ^ 0xabcd);
        let h_runs =
            Network::new(&h).run_profiled(|_: &NodeCtx<'_>| Gossip { acc: 0, rounds_left: 20 });
        assert_ne!(reference.0.outputs, h_runs.0.outputs);
    }
}

#[test]
fn delivered_never_exceeds_sent_with_mid_run_halts() {
    let g = generators::random_graph(800, 4000, 7);
    for (name, (run, profile)) in run_all_engines(&Network::new(&g)) {
        assert_eq!(profile.len(), run.stats.rounds, "{name}");
        let mut sent_total = 0usize;
        for (i, r) in profile.iter().enumerate() {
            assert!(
                r.messages <= r.sent_messages,
                "{name} round {}: delivered {} > sent {}",
                i + 1,
                r.messages,
                r.sent_messages
            );
            assert!(r.bits <= r.sent_bits, "{name} round {}", i + 1);
            sent_total += r.sent_messages;
        }
        // Everything due for delivery was sent at some point (final-round
        // sends are due after the run ends, hence <=).
        assert!(sent_total <= run.stats.messages, "{name}");
        let delivered: usize = profile.iter().map(|r| r.messages).sum();
        assert!(delivered < run.stats.messages, "{name}: staggered halts must drop messages");
        // Live-node counts are non-increasing.
        for w in profile.windows(2) {
            assert!(w[0].live_nodes >= w[1].live_nodes, "{name}");
        }
    }
}

/// The PR 5 differential pin: early node halting in the Panconesi–Rizzi
/// assignment phase must be **color- and message-identical** to the
/// worst-case `2 + 6W` schedule — across every thread budget and delivery
/// mode — with only round totals allowed to move (downward). This is the
/// contract that lets the repair pipeline halt nodes at their own last
/// `(forest, CV)` step without perturbing a single pinned coloring.
#[test]
fn early_halting_bit_identical_across_thread_and_delivery_matrix() {
    use deco_core::edge::legal::{edge_color_in_groups, edge_log_depth, MessageMode};
    use deco_local::Delivery;

    let g = generators::random_bounded_degree(1500, 16, 0x5a11);
    let groups = vec![0u64; g.m()];
    let params = edge_log_depth(1);
    let w0 = g.max_degree() as u64;
    let mut pinned: Option<(Vec<u64>, usize, usize, usize)> = None;
    for threads in [1usize, 2, 8] {
        for delivery in [Delivery::Scan, Delivery::Push, Delivery::Adaptive] {
            let run_with = |early: bool| {
                let net = Network::new(&g)
                    .with_threads(threads)
                    .with_delivery(delivery)
                    .with_early_halt(early);
                edge_color_in_groups(&net, &groups, 1, params, w0, MessageMode::Long)
                    .expect("preset params are valid")
            };
            let on = run_with(true);
            let off = run_with(false);
            let case = format!("threads={threads} delivery={delivery:?}");
            assert_eq!(on.coloring, off.coloring, "{case}: colorings diverged");
            assert_eq!(on.stats.messages, off.stats.messages, "{case}: messages diverged");
            assert_eq!(
                on.stats.total_message_bits, off.stats.total_message_bits,
                "{case}: traffic diverged"
            );
            assert_eq!(
                on.stats.max_message_bits, off.stats.max_message_bits,
                "{case}: max message diverged"
            );
            // Rounds may tie when some node's last (forest, CV) step sits at
            // the schedule's worst case; stepped node-rounds always shrink.
            assert!(
                on.stats.rounds <= off.stats.rounds,
                "{case}: early halting must not lengthen the run ({} vs {})",
                on.stats.rounds,
                off.stats.rounds
            );
            assert!(
                on.stats.node_rounds < off.stats.node_rounds,
                "{case}: early halting must cut stepped node-rounds ({} vs {})",
                on.stats.node_rounds,
                off.stats.node_rounds
            );
            // Every matrix cell agrees with the first one, both modes.
            let key = (
                on.coloring.colors().to_vec(),
                on.stats.messages,
                on.stats.rounds,
                off.stats.rounds,
            );
            match &pinned {
                None => pinned = Some(key),
                Some(p) => assert_eq!(*p, key, "{case}: matrix cell diverged"),
            }
        }
    }
}

/// The same pin end-to-end through the streaming engine: a repair-heavy
/// churn run with halting off reproduces the exact colorings and reports of
/// the default engine, apart from round counters.
#[test]
fn early_halting_off_recolorer_matches_default() {
    use deco_core::edge::legal::{edge_log_depth, MessageMode};
    use deco_graph::trace::churn_trace;
    use deco_stream::{queue_op, RecolorConfig, Recolorer};

    let trace = churn_trace(800, 8, 3, 20, 0x0ff);
    let params = edge_log_depth(1);
    let mut on = Recolorer::new(trace.n0, params, MessageMode::Long).unwrap();
    let mut off = Recolorer::new_with(
        trace.n0,
        params,
        MessageMode::Long,
        RecolorConfig::default().with_early_halt(false),
    )
    .unwrap();
    for batch in trace.batches() {
        for &op in batch {
            queue_op(&mut on, op).unwrap();
            queue_op(&mut off, op).unwrap();
        }
        let a = on.commit().unwrap();
        let b = off.commit().unwrap();
        assert_eq!(on.coloring(), off.coloring(), "commit {}: colors diverged", a.commit);
        assert_eq!(a.stats.messages, b.stats.messages, "commit {}", a.commit);
        assert!(a.stats.rounds <= b.stats.rounds, "commit {}", a.commit);
        let strip = |mut r: deco_stream::CommitReport| {
            r.stats = deco_local::RunStats::zero();
            r
        };
        assert_eq!(strip(a), strip(b), "reports diverged beyond stats");
    }
}

#[test]
fn threaded_runner_on_line_graph_workload() {
    // The Lemma 5.2 workload shape: Legal-Color style traffic runs on
    // L(G), which is much denser than G — a good stress for chunked
    // parallel delivery.
    let host = generators::random_bounded_degree(600, 12, 9);
    let l = deco_graph::line_graph::line_graph(&host);
    let mk = |_: &NodeCtx<'_>| Gossip { acc: 0, rounds_left: 12 };
    let seq = Network::new(&l).run_profiled(mk);
    let par = Network::new(&l).with_threads(4).run_profiled_threaded(mk);
    assert_eq!(seq.0.outputs, par.0.outputs);
    assert_eq!(seq.0.stats, par.0.stats);
    assert_eq!(seq.1, par.1);
}
