//! **Algorithm 2 — Procedure Legal-Color** (Section 4): legal vertex
//! coloring of graphs with bounded neighborhood independence.
//!
//! The recursion of Algorithm 2 is executed iteratively and synchronously:
//! all classes of the current partition run Procedure Defective-Color
//! simultaneously (they are vertex-disjoint), each level refining the
//! partition by a factor `p` and shrinking the degree bound from `Λ` to
//! `Λ' = ⌊(Λ/(b·p) + Λ/p)·c⌋ + c` (line 6). When the bound reaches the
//! threshold `λ`, every class is colored with `Λ̂+1` colors directly
//! (Lemma 2.1(2)), and the class label and bottom color combine into the
//! final color exactly as in lines 9–11: vertices of class `i` use the
//! palette `{i·ϑ', ..., (i+1)·ϑ' - 1}`, so the total palette is
//! `ϑ⁽⁰⁾ = p^r · (Λ̂+1)` (Lemma 4.4).
//!
//! Following Section 4.2, the auxiliary `O(Δ²)`-coloring ρ is computed once
//! (`log* n` rounds) and re-used by every level's defective coloring, which
//! therefore costs only `O((b·p)² + log* Δ)` per level.

use crate::code_reduction::linial_coloring;
use crate::defective::defective_color_in_groups;
use crate::math::linial_schedule;
use crate::params::{next_lambda, LegalParams, ParamError};
use crate::pipeline::Pipeline;
use crate::reduction::reduce_colors_in_groups;
use deco_graph::coloring::VertexColoring;
use deco_local::{Network, RunStats};

/// Trace of one recursion level, used by the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTrace {
    /// Level index (0 = the root invocation).
    pub level: usize,
    /// Degree bound `Λ` entering the level.
    pub lambda_in: u64,
    /// Degree bound `Λ'` after the level (line 6).
    pub lambda_out: u64,
    /// Size of the level's internal φ palette (bounds its round count).
    pub phi_palette: u64,
    /// Rounds spent in this level.
    pub rounds: usize,
    /// Number of classes after the level (`p^{level+1}` at the root).
    pub classes: u64,
}

/// Result of Procedure Legal-Color.
#[derive(Debug, Clone)]
pub struct LegalRun {
    /// The final coloring (proper on the whole graph for a root invocation,
    /// proper within the initial groups for a grouped one).
    pub coloring: VertexColoring,
    /// The returned palette bound ϑ: colors lie in `0..theta`.
    pub theta: u64,
    /// Per-level traces (empty when the recursion never fires).
    pub levels: Vec<LevelTrace>,
    /// Degree bound `Λ̂` at the bottom of the recursion.
    pub bottom_lambda: u64,
    /// Total statistics, including the auxiliary coloring.
    pub stats: RunStats,
}

/// How the recursion seeds the per-level defective colorings — the
/// Section 4.2 design choice this crate ablates in `benches/ablation.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuxPolicy {
    /// Compute the auxiliary `O(Δ²)`-coloring ρ once and reuse it at every
    /// level (Section 4.2): each level's defective coloring costs
    /// `O((b·p)² + log* Δ)`.
    #[default]
    ReusePerLevel,
    /// Seed every level from the raw identifiers (palette `n`), as the
    /// unimproved Section 4.1 algorithm would: each level pays `log* n`.
    FreshPerLevel,
}

/// Runs Procedure Legal-Color on every class of an initial partition
/// simultaneously; classes keep disjoint palettes. For a whole-graph run use
/// [`legal_color`].
///
/// * `c` — bound on the neighborhood independence of (every class of) the
///   graph;
/// * `lambda0` — degree bound within the initial groups (Δ for the whole
///   graph);
/// * `aux` — optionally, a precomputed auxiliary proper coloring
///   `(colors, palette)`; when absent, Linial's coloring is computed first.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters cannot contract for this `c`.
pub fn legal_color_in_groups(
    net: &Network<'_>,
    groups0: &[u64],
    group_domain0: u64,
    c: u64,
    params: LegalParams,
    lambda0: u64,
    aux: Option<(&[u64], u64)>,
) -> Result<LegalRun, ParamError> {
    legal_color_in_groups_with_policy(
        net,
        groups0,
        group_domain0,
        c,
        params,
        lambda0,
        aux,
        AuxPolicy::ReusePerLevel,
    )
}

/// [`legal_color_in_groups`] with an explicit [`AuxPolicy`], exposed for the
/// Section 4.2 ablation.
///
/// # Errors
///
/// Returns [`ParamError`] if the parameters cannot contract for this `c`.
#[allow(clippy::too_many_arguments)]
pub fn legal_color_in_groups_with_policy(
    net: &Network<'_>,
    groups0: &[u64],
    group_domain0: u64,
    c: u64,
    params: LegalParams,
    lambda0: u64,
    aux: Option<(&[u64], u64)>,
    policy: AuxPolicy,
) -> Result<LegalRun, ParamError> {
    params.validate(c)?;
    let g = net.graph();
    let mut pl = Pipeline::new(net);

    // Section 4.2: one auxiliary O(Δ²) coloring, reused at every level —
    // or, under `FreshPerLevel`, the raw identifier coloring (palette n),
    // which forces every level back to a log* n-length schedule.
    let (aux_colors, aux_palette) = match (policy, aux) {
        (AuxPolicy::FreshPerLevel, _) => {
            let colors: Vec<u64> = (0..g.n()).map(|v| g.ident(v) - 1).collect();
            (colors, g.n().max(1) as u64)
        }
        (AuxPolicy::ReusePerLevel, Some((colors, palette))) => (colors.to_vec(), palette),
        (AuxPolicy::ReusePerLevel, None) => {
            let (colors, palette, lin_stats) = linial_coloring(net);
            pl.absorb("aux/linial", lin_stats);
            (colors, palette)
        }
    };

    let mut groups: Vec<u64> = groups0.to_vec();
    let mut group_domain = group_domain0.max(1);
    let mut lambda = lambda0;
    let mut levels = Vec::new();

    while lambda > params.lambda && params.b * params.p <= lambda {
        let next = next_lambda(c, params.b, params.p, lambda);
        if next >= lambda {
            break; // safety: parameters stopped contracting
        }
        let run = defective_color_in_groups(
            net,
            &groups,
            group_domain,
            &aux_colors,
            aux_palette,
            params.b,
            params.p,
            lambda,
        );
        for (group, &psi) in groups.iter_mut().zip(&run.psi) {
            *group = *group * params.p + psi;
        }
        group_domain *= params.p;
        pl.absorb("level/defective-color", run.stats);
        levels.push(LevelTrace {
            level: levels.len(),
            lambda_in: lambda,
            lambda_out: next,
            phi_palette: run.phi_palette,
            rounds: run.stats.rounds,
            classes: group_domain,
        });
        lambda = next;
    }

    // Bottom of the recursion: a legal (Λ̂+1)-coloring of every class, via
    // Linial within classes (seeded by ρ, so O(log* Δ) rounds) followed by
    // the Kuhn–Wattenhofer reduction.
    let bottom_lambda = lambda;
    let lin_steps = linial_schedule(aux_palette, bottom_lambda);
    let bottom_palette = lin_steps.last().map(|s| s.to_palette).unwrap_or(aux_palette);
    let (bottom_lin, s1) = crate::code_reduction::run_code_reduction(
        net,
        &groups,
        group_domain,
        &aux_colors,
        lin_steps,
    );
    pl.absorb("bottom/linial-in-classes", s1);
    let (bottom, s2) = reduce_colors_in_groups(
        net,
        &groups,
        group_domain,
        &bottom_lin,
        bottom_palette,
        bottom_lambda,
    );
    pl.absorb("bottom/kw-reduction", s2);

    let theta_bottom = bottom_lambda + 1;
    let colors: Vec<u64> = (0..g.n()).map(|v| groups[v] * theta_bottom + bottom[v]).collect();
    Ok(LegalRun {
        coloring: VertexColoring::new(colors),
        theta: group_domain * theta_bottom,
        levels,
        bottom_lambda,
        stats: pl.into_stats(),
    })
}

/// Procedure Legal-Color on the whole graph: a legal `ϑ⁽⁰⁾`-coloring with
/// `ϑ⁽⁰⁾ = p^r·(Λ̂+1) = O(Δ)` or `O(Δ^{1+η})` colors depending on the
/// parameter regime (Theorems 4.5, 4.6, 4.8).
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for this `c`.
///
/// # Example
///
/// ```
/// use deco_core::params::LegalParams;
/// use deco_core::legal::legal_color;
/// use deco_graph::generators;
/// use deco_local::Network;
///
/// // Figure 1's graph has neighborhood independence 2.
/// let g = generators::clique_with_pendants(20);
/// let net = Network::new(&g);
/// let run = legal_color(&net, 2, LegalParams::log_depth(2, 1))?;
/// assert!(run.coloring.is_proper(&g));
/// assert!(run.theta >= run.coloring.color_bound());
/// # Ok::<(), deco_core::params::ParamError>(())
/// ```
pub fn legal_color(net: &Network<'_>, c: u64, params: LegalParams) -> Result<LegalRun, ParamError> {
    let g = net.graph();
    let groups = vec![0u64; g.n()];
    legal_color_in_groups(net, &groups, 1, c, params, g.max_degree() as u64, None)
}

/// [`legal_color`] with an explicit [`AuxPolicy`] (Section 4.2 ablation).
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for this `c`.
pub fn legal_color_with_policy(
    net: &Network<'_>,
    c: u64,
    params: LegalParams,
    policy: AuxPolicy,
) -> Result<LegalRun, ParamError> {
    let g = net.graph();
    let groups = vec![0u64; g.n()];
    legal_color_in_groups_with_policy(
        net,
        &groups,
        1,
        c,
        params,
        g.max_degree() as u64,
        None,
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_graph::line_graph::line_graph;
    use deco_graph::properties::neighborhood_independence;

    fn check(g: &deco_graph::Graph, c: u64, params: LegalParams) -> LegalRun {
        let net = Network::new(g);
        let run = legal_color(&net, c, params).expect("valid params");
        assert!(run.coloring.is_proper(g), "Legal-Color output must be proper");
        assert!(
            run.coloring.color_bound() <= run.theta,
            "colors exceed declared ϑ = {}",
            run.theta
        );
        assert_eq!(
            run.theta,
            params.color_bound(c, g.max_degree() as u64),
            "ϑ must match the Lemma 4.4 formula"
        );
        run
    }

    #[test]
    fn legal_color_on_line_graph() {
        let host = generators::random_bounded_degree(70, 10, 21);
        let l = line_graph(&host);
        assert!(neighborhood_independence(&l) <= 2);
        let run = check(&l, 2, LegalParams::log_depth(2, 1));
        // With Δ(L) ≈ 18 > λ = 18... recursion may or may not fire; the
        // trace must be consistent either way.
        let mut lam = l.max_degree() as u64;
        for t in &run.levels {
            assert_eq!(t.lambda_in, lam);
            assert!(t.lambda_out < t.lambda_in, "levels must contract");
            lam = t.lambda_out;
        }
        assert_eq!(run.bottom_lambda, lam);
    }

    #[test]
    fn recursion_fires_on_figure_1() {
        let g = generators::clique_with_pendants(40); // Δ = 40
        let params = LegalParams::log_depth(2, 1); // λ = 18
        let run = check(&g, 2, params);
        assert!(!run.levels.is_empty(), "Δ=40 > λ=18 must recurse");
        // Lemma 4.4 shape: ϑ ≤ (Λ̂+1)·p^r.
        assert_eq!(run.theta, (run.bottom_lambda + 1) * params.p.pow(run.levels.len() as u32));
    }

    #[test]
    fn no_recursion_below_threshold() {
        let g = generators::cycle(20); // Δ = 2 < λ
        let run = check(&g, 2, LegalParams::log_depth(2, 1));
        assert!(run.levels.is_empty());
        assert_eq!(run.theta, 3); // (Δ+1)-coloring
    }

    #[test]
    fn unit_disk_with_c5() {
        let g = generators::unit_disk(150, 0.2, 8);
        let c = neighborhood_independence(&g).max(1) as u64;
        let run = check(&g, c, LegalParams::log_depth(c, 1));
        assert!(run.coloring.is_proper(&g));
    }

    #[test]
    fn grouped_runs_stay_disjoint() {
        // Two groups on a clique: each colored from its own palette.
        let g = generators::complete(16);
        let net = Network::new(&g);
        let groups: Vec<u64> = (0..16).map(|v| (v % 2) as u64).collect();
        let run = legal_color_in_groups(
            &net,
            &groups,
            2,
            1,
            LegalParams::log_depth(1, 1),
            7, // within-group degree
            None,
        )
        .unwrap();
        for u in 0..16 {
            for v in 0..16 {
                if u != v && groups[u] == groups[v] {
                    assert_ne!(run.coloring.color(u), run.coloring.color(v));
                }
            }
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let g = generators::path(5);
        let net = Network::new(&g);
        assert!(legal_color(&net, 2, LegalParams::new(1, 4, 50)).is_err());
    }

    #[test]
    fn aux_policy_ablation_changes_rounds_not_validity() {
        let host = generators::random_bounded_degree(90, 10, 61);
        let l = line_graph(&host);
        let net = Network::new(&l);
        let params = LegalParams::log_depth(2, 1);
        let reuse = legal_color_with_policy(&net, 2, params, AuxPolicy::ReusePerLevel).unwrap();
        let fresh = legal_color_with_policy(&net, 2, params, AuxPolicy::FreshPerLevel).unwrap();
        assert!(reuse.coloring.is_proper(&l));
        assert!(fresh.coloring.is_proper(&l));
        assert_eq!(reuse.theta, fresh.theta, "ϑ depends only on Δ and params");
        // Fresh seeding can only lengthen the per-level schedules.
        assert!(fresh.stats.rounds + 4 >= reuse.stats.rounds);
    }

    #[test]
    fn theorem_4_5_params_work_end_to_end() {
        let host = generators::random_bounded_degree(60, 12, 2);
        let l = line_graph(&host);
        let params = LegalParams::theorem_4_5(l.max_degree() as u64, 2, 0.8);
        check(&l, 2, params);
    }
}
