//! The structured event vocabulary and its JSONL wire format.

use std::borrow::Cow;
use std::fmt::{self, Write as _};

/// A [`RunStats`](../deco_local/struct.RunStats.html)-shaped counter
/// snapshot, decoupled from `deco-local` so the probe crate stays at the
/// bottom of the dependency graph (`deco-local` provides the
/// `From<RunStats>` conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Synchronous communication rounds.
    pub rounds: u64,
    /// Stepped node-rounds (live nodes summed over delivery rounds).
    pub node_rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Aggregate delivered traffic, in bits.
    pub total_message_bits: u64,
    /// Messages destroyed in flight by the transport.
    pub transport_dropped: u64,
    /// Bytes written into the committed graph representation.
    pub commit_bytes: u64,
}

impl Counters {
    /// All-zero counters.
    pub fn zero() -> Counters {
        Counters::default()
    }

    /// Sequential composition: sums every field, maxing the message-size
    /// maximum — the same semantics as `RunStats + RunStats`.
    pub fn absorb(&mut self, other: &Counters) {
        self.rounds += other.rounds;
        self.node_rounds += other.node_rounds;
        self.messages += other.messages;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.total_message_bits += other.total_message_bits;
        self.transport_dropped += other.transport_dropped;
        self.commit_bytes += other.commit_bytes;
    }
}

/// One structured observability event. See the crate docs for the
/// determinism contract; every variant except [`Event::Env`] is part of
/// the deterministic stream.
///
/// Names are `Cow<'static, str>` so emit sites pass static strings without
/// allocating; parsed events own their strings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A named pipeline phase is about to run.
    PhaseEnter {
        /// Phase name (the `Pipeline` phase label).
        name: Cow<'static, str>,
    },
    /// A named pipeline phase finished, with its own stats delta.
    PhaseExit {
        /// Phase name, matching the preceding [`Event::PhaseEnter`].
        name: Cow<'static, str>,
        /// The phase's counters (its `RunStats`, not a running total).
        stats: Counters,
    },
    /// One delivery round of a simulator run (subsumes the engine's
    /// `RoundLoad` profile entries). Rounds are numbered from 1 within
    /// each run; the enclosing phase events give the attribution.
    Round {
        /// 1-based round number within the run.
        round: u64,
        /// Nodes still live at the start of the round.
        live_nodes: u64,
        /// Messages delivered in the round.
        messages: u64,
        /// Bits delivered in the round.
        bits: u64,
        /// Messages sent toward the round in the preceding step phase.
        sent_messages: u64,
        /// Bits sent toward the round.
        sent_bits: u64,
        /// Messages destroyed by the transport on the way to this round.
        transport_dropped: u64,
    },
    /// A streaming commit started (batch applied, colors carried).
    CommitEnter {
        /// 0-based commit index.
        commit: u64,
        /// Edges inserted by the batch.
        inserted: u64,
        /// Edges deleted by the batch.
        deleted: u64,
        /// Vertex count after the commit.
        n: u64,
        /// Edge count after the commit.
        m: u64,
        /// Maximum degree after the commit.
        max_degree: u64,
    },
    /// The repair region was extracted for a commit.
    Region {
        /// 0-based commit index.
        commit: u64,
        /// Region size in edges.
        dirty: u64,
    },
    /// The repair strategy decided for a commit (`clean`, `incremental`,
    /// `from-scratch`); the *outcome* — which can differ after fault-era
    /// fallbacks — is on [`Event::CommitExit`].
    Strategy {
        /// 0-based commit index.
        commit: u64,
        /// The decided strategy.
        strategy: Cow<'static, str>,
    },
    /// A fault-era repair attempt failed verification (or its round cap)
    /// and will be retried.
    Retry {
        /// 0-based commit index.
        commit: u64,
        /// 0-based attempt that failed.
        attempt: u64,
        /// The round cap the attempt ran under.
        round_cap: u64,
    },
    /// Every bounded fault-era attempt failed; the commit degraded to the
    /// fault-free from-scratch pipeline.
    Fallback {
        /// 0-based commit index.
        commit: u64,
    },
    /// A palette-drift compaction was due: the commit recolors from
    /// scratch regardless of its region.
    Compaction {
        /// 0-based commit index.
        commit: u64,
    },
    /// A streaming commit finished, with its full accounting (the
    /// `CommitReport` in event form).
    CommitExit {
        /// 0-based commit index.
        commit: u64,
        /// How the repair actually ran.
        strategy: Cow<'static, str>,
        /// Edges whose color was (re)assigned.
        recolored: u64,
        /// Schedule classes the finalize stepped through.
        schedule_classes: u64,
        /// Palette bound in force for the snapshot.
        color_bound: u64,
        /// Vertices of the repair sub-network.
        region_vertices: u64,
        /// Failed attempts retried under a faulty transport.
        retries: u64,
        /// 1 when the commit degraded to from-scratch, else 0.
        fallbacks: u64,
        /// Simulator statistics of all repair phases of the commit,
        /// commit machinery bytes included.
        stats: Counters,
    },
    /// The commit machinery wrote bytes into the committed representation
    /// (emitted by the graph layer as the write happens, so it precedes
    /// the enclosing [`Event::CommitEnter`]).
    CommitBytes {
        /// Bytes written.
        bytes: u64,
    },
    /// A machine- or configuration-dependent fact: wall clock, worker
    /// counts, per-round delivery choices, spill-arena occupancy. The only
    /// variant excluded from the deterministic stream — the probe's
    /// equivalent of the bench gate's non-fatal `environment` blocks.
    Env {
        /// Fact name.
        key: Cow<'static, str>,
        /// Fact value, stringly typed (never interpreted by the gate).
        value: String,
    },
}

impl Event {
    /// Convenience constructor for [`Event::Env`].
    pub fn env(key: impl Into<Cow<'static, str>>, value: impl Into<String>) -> Event {
        Event::Env { key: key.into(), value: value.into() }
    }

    /// Whether the event belongs to the deterministic stream (everything
    /// but [`Event::Env`]). See the crate-level determinism contract.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Event::Env { .. })
    }

    /// Serializes the event as one flat JSON object (no trailing newline),
    /// the JSONL wire format [`Event::parse_jsonl`] reads back.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::PhaseEnter { name } => push_str_field(&mut s, "name", name),
            Event::PhaseExit { name, stats } => {
                push_str_field(&mut s, "name", name);
                push_counters(&mut s, stats);
            }
            Event::Round {
                round,
                live_nodes,
                messages,
                bits,
                sent_messages,
                sent_bits,
                transport_dropped,
            } => {
                push_int_field(&mut s, "round", *round);
                push_int_field(&mut s, "live_nodes", *live_nodes);
                push_int_field(&mut s, "messages", *messages);
                push_int_field(&mut s, "bits", *bits);
                push_int_field(&mut s, "sent_messages", *sent_messages);
                push_int_field(&mut s, "sent_bits", *sent_bits);
                push_int_field(&mut s, "transport_dropped", *transport_dropped);
            }
            Event::CommitEnter { commit, inserted, deleted, n, m, max_degree } => {
                push_int_field(&mut s, "commit", *commit);
                push_int_field(&mut s, "inserted", *inserted);
                push_int_field(&mut s, "deleted", *deleted);
                push_int_field(&mut s, "n", *n);
                push_int_field(&mut s, "m", *m);
                push_int_field(&mut s, "max_degree", *max_degree);
            }
            Event::Region { commit, dirty } => {
                push_int_field(&mut s, "commit", *commit);
                push_int_field(&mut s, "dirty", *dirty);
            }
            Event::Strategy { commit, strategy } => {
                push_int_field(&mut s, "commit", *commit);
                push_str_field(&mut s, "strategy", strategy);
            }
            Event::Retry { commit, attempt, round_cap } => {
                push_int_field(&mut s, "commit", *commit);
                push_int_field(&mut s, "attempt", *attempt);
                push_int_field(&mut s, "round_cap", *round_cap);
            }
            Event::Fallback { commit } | Event::Compaction { commit } => {
                push_int_field(&mut s, "commit", *commit);
            }
            Event::CommitExit {
                commit,
                strategy,
                recolored,
                schedule_classes,
                color_bound,
                region_vertices,
                retries,
                fallbacks,
                stats,
            } => {
                push_int_field(&mut s, "commit", *commit);
                push_str_field(&mut s, "strategy", strategy);
                push_int_field(&mut s, "recolored", *recolored);
                push_int_field(&mut s, "schedule_classes", *schedule_classes);
                push_int_field(&mut s, "color_bound", *color_bound);
                push_int_field(&mut s, "region_vertices", *region_vertices);
                push_int_field(&mut s, "retries", *retries);
                push_int_field(&mut s, "fallbacks", *fallbacks);
                push_counters(&mut s, stats);
            }
            Event::CommitBytes { bytes } => push_int_field(&mut s, "bytes", *bytes),
            Event::Env { key, value } => {
                push_str_field(&mut s, "key", key);
                push_str_field(&mut s, "value", value);
            }
        }
        s.push('}');
        s
    }

    /// The wire name of the variant (the JSONL `"type"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseEnter { .. } => "phase_enter",
            Event::PhaseExit { .. } => "phase_exit",
            Event::Round { .. } => "round",
            Event::CommitEnter { .. } => "commit_enter",
            Event::Region { .. } => "region",
            Event::Strategy { .. } => "strategy",
            Event::Retry { .. } => "retry",
            Event::Fallback { .. } => "fallback",
            Event::Compaction { .. } => "compaction",
            Event::CommitExit { .. } => "commit_exit",
            Event::CommitBytes { .. } => "commit_bytes",
            Event::Env { .. } => "env",
        }
    }

    /// Parses one JSONL line produced by [`Event::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed JSON, an unknown `type`, or a
    /// missing field.
    pub fn parse_jsonl(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let kind = fields.str_field("type")?;
        let ev = match kind {
            "phase_enter" => Event::PhaseEnter { name: fields.owned_str("name")? },
            "phase_exit" => {
                Event::PhaseExit { name: fields.owned_str("name")?, stats: fields.counters()? }
            }
            "round" => Event::Round {
                round: fields.int("round")?,
                live_nodes: fields.int("live_nodes")?,
                messages: fields.int("messages")?,
                bits: fields.int("bits")?,
                sent_messages: fields.int("sent_messages")?,
                sent_bits: fields.int("sent_bits")?,
                transport_dropped: fields.int("transport_dropped")?,
            },
            "commit_enter" => Event::CommitEnter {
                commit: fields.int("commit")?,
                inserted: fields.int("inserted")?,
                deleted: fields.int("deleted")?,
                n: fields.int("n")?,
                m: fields.int("m")?,
                max_degree: fields.int("max_degree")?,
            },
            "region" => {
                Event::Region { commit: fields.int("commit")?, dirty: fields.int("dirty")? }
            }
            "strategy" => Event::Strategy {
                commit: fields.int("commit")?,
                strategy: fields.owned_str("strategy")?,
            },
            "retry" => Event::Retry {
                commit: fields.int("commit")?,
                attempt: fields.int("attempt")?,
                round_cap: fields.int("round_cap")?,
            },
            "fallback" => Event::Fallback { commit: fields.int("commit")? },
            "compaction" => Event::Compaction { commit: fields.int("commit")? },
            "commit_exit" => Event::CommitExit {
                commit: fields.int("commit")?,
                strategy: fields.owned_str("strategy")?,
                recolored: fields.int("recolored")?,
                schedule_classes: fields.int("schedule_classes")?,
                color_bound: fields.int("color_bound")?,
                region_vertices: fields.int("region_vertices")?,
                retries: fields.int("retries")?,
                fallbacks: fields.int("fallbacks")?,
                stats: fields.counters()?,
            },
            "commit_bytes" => Event::CommitBytes { bytes: fields.int("bytes")? },
            "env" => Event::Env {
                key: fields.owned_str("key")?,
                value: fields.owned_str("value")?.into_owned(),
            },
            other => return Err(ParseError::new(format!("unknown event type {other:?}"))),
        };
        Ok(ev)
    }
}

fn push_counters(s: &mut String, c: &Counters) {
    push_int_field(s, "rounds", c.rounds);
    push_int_field(s, "node_rounds", c.node_rounds);
    push_int_field(s, "messages", c.messages);
    push_int_field(s, "max_message_bits", c.max_message_bits);
    push_int_field(s, "total_message_bits", c.total_message_bits);
    push_int_field(s, "transport_dropped", c.transport_dropped);
    push_int_field(s, "commit_bytes", c.commit_bytes);
}

fn push_int_field(s: &mut String, key: &str, v: u64) {
    let _ = write!(s, ",\"{key}\":{v}");
}

fn push_str_field(s: &mut String, key: &str, v: &str) {
    let _ = write!(s, ",\"{key}\":");
    push_json_string(s, v);
}

/// Writes `v` as a JSON string literal (quotes, backslashes and control
/// characters escaped).
pub(crate) fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Failure to parse a JSONL event line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid event line: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed flat JSON object: string and integer fields only — exactly the
/// shape [`Event::to_jsonl`] emits, so no general JSON tree is needed.
struct Fields {
    entries: Vec<(String, FieldValue)>,
}

enum FieldValue {
    Int(u64),
    Str(String),
}

impl Fields {
    fn get(&self, key: &str) -> Option<&FieldValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn int(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key) {
            Some(FieldValue::Int(v)) => Ok(*v),
            Some(FieldValue::Str(_)) => Err(ParseError::new(format!("field {key:?} not an int"))),
            None => Err(ParseError::new(format!("missing field {key:?}"))),
        }
    }

    fn str_field(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key) {
            Some(FieldValue::Str(v)) => Ok(v),
            Some(FieldValue::Int(_)) => Err(ParseError::new(format!("field {key:?} not a string"))),
            None => Err(ParseError::new(format!("missing field {key:?}"))),
        }
    }

    fn owned_str(&self, key: &str) -> Result<Cow<'static, str>, ParseError> {
        Ok(Cow::Owned(self.str_field(key)?.to_string()))
    }

    fn counters(&self) -> Result<Counters, ParseError> {
        Ok(Counters {
            rounds: self.int("rounds")?,
            node_rounds: self.int("node_rounds")?,
            messages: self.int("messages")?,
            max_message_bits: self.int("max_message_bits")?,
            total_message_bits: self.int("total_message_bits")?,
            transport_dropped: self.int("transport_dropped")?,
            commit_bytes: self.int("commit_bytes")?,
        })
    }
}

fn parse_flat_object(line: &str) -> Result<Fields, ParseError> {
    let mut chars = line.trim().char_indices().peekable();
    let src = line.trim();
    let mut entries = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err(ParseError::new("expected '{'")),
    }
    loop {
        match chars.peek() {
            Some(&(_, '}')) => {
                chars.next();
                break;
            }
            Some(&(_, ',')) if !entries.is_empty() => {
                chars.next();
            }
            Some(_) if entries.is_empty() => {}
            _ => return Err(ParseError::new("expected ',' or '}'")),
        }
        let key = parse_string(src, &mut chars)?;
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(ParseError::new("expected ':'")),
        }
        let value = match chars.peek() {
            Some(&(_, '"')) => FieldValue::Str(parse_string(src, &mut chars)?),
            Some(&(start, c)) if c.is_ascii_digit() => {
                let mut end = start;
                while chars.peek().is_some_and(|&(_, c)| c.is_ascii_digit()) {
                    // INVARIANT: extraction follows a successful peek on the same source.
                    end = chars.next().expect("peeked digit").0;
                }
                let v: u64 = src[start..=end]
                    .parse()
                    .map_err(|_| ParseError::new("integer out of range"))?;
                FieldValue::Int(v)
            }
            _ => return Err(ParseError::new("expected a string or integer value")),
        };
        entries.push((key, value));
    }
    if chars.next().is_some() {
        return Err(ParseError::new("trailing characters after '}'"));
    }
    Ok(Fields { entries })
}

fn parse_string(
    src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Result<String, ParseError> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(ParseError::new("expected '\"'")),
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((start, 'u')) => {
                    let mut end = start;
                    for _ in 0..4 {
                        end =
                            chars.next().ok_or_else(|| ParseError::new("truncated \\u escape"))?.0;
                    }
                    let hex = &src[start + 1..=end];
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| ParseError::new("bad \\u escape"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| ParseError::new("bad \\u code point"))?,
                    );
                }
                _ => return Err(ParseError::new("unknown escape")),
            },
            Some((_, c)) => out.push(c),
            None => return Err(ParseError::new("unterminated string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CommitBytes { bytes: 640 },
            Event::CommitEnter {
                commit: 0,
                inserted: 5,
                deleted: 2,
                n: 100,
                m: 300,
                max_degree: 8,
            },
            Event::Region { commit: 0, dirty: 5 },
            Event::Strategy { commit: 0, strategy: "incremental".into() },
            Event::PhaseEnter { name: "repair/finalize".into() },
            Event::Round {
                round: 1,
                live_nodes: 10,
                messages: 20,
                bits: 60,
                sent_messages: 22,
                sent_bits: 66,
                transport_dropped: 0,
            },
            Event::PhaseExit {
                name: "repair/finalize".into(),
                stats: Counters { rounds: 3, node_rounds: 30, messages: 20, ..Counters::zero() },
            },
            Event::Retry { commit: 0, attempt: 0, round_cap: 36 },
            Event::Fallback { commit: 0 },
            Event::Compaction { commit: 3 },
            Event::CommitExit {
                commit: 0,
                strategy: "incremental".into(),
                recolored: 5,
                schedule_classes: 3,
                color_bound: 15,
                region_vertices: 9,
                retries: 0,
                fallbacks: 0,
                stats: Counters { rounds: 7, commit_bytes: 640, ..Counters::zero() },
            },
            Event::env("delivery_trace", "s3,p1x4"),
            Event::env("weird \"value\"", "tab\t\u{430}\u{43c}\n"),
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            let back = Event::parse_jsonl(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn env_is_the_only_nondeterministic_variant() {
        let det: Vec<bool> = sample_events().iter().map(Event::is_deterministic).collect();
        assert_eq!(det.iter().filter(|&&d| !d).count(), 2);
        assert!(sample_events()
            .iter()
            .all(|e| e.is_deterministic() != matches!(e, Event::Env { .. })));
    }

    #[test]
    fn malformed_lines_error() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"type\":\"nope\"}",
            "{\"type\":\"round\"}",
            "{\"type\":\"env\",\"key\":\"k\",\"value\":3}",
            "{\"type\":\"commit_bytes\",\"bytes\":640}x",
        ] {
            assert!(Event::parse_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn counters_absorb_matches_runstats_addition() {
        let mut a = Counters { rounds: 3, max_message_bits: 16, messages: 2, ..Counters::zero() };
        let b = Counters { rounds: 2, max_message_bits: 12, messages: 1, ..Counters::zero() };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 3);
        assert_eq!(a.max_message_bits, 16);
    }
}
