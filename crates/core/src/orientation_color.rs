//! Lemma 3.4: distributed `(d+1)`-coloring along an acyclic orientation.
//!
//! Given an acyclic orientation with out-degree at most `d`, every vertex
//! waits for all its out-neighbors (its *parents*) to pick, then picks a
//! color from `{0, ..., d}` unused by them. The process terminates after
//! `longest directed path + O(1)` rounds and is legal because every edge's
//! tail picks after (and avoids) its head.
//!
//! The orientation is specified by per-vertex ranks: every edge points
//! toward the endpoint with the smaller `(rank, ident)` pair, which is
//! always acyclic. Lemma 3.5 orients each ψ-color class this way (by
//! φ-color, then by identifier); the forest-decomposition baseline orients
//! by H-partition layer.

use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::Vertex;
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

#[derive(Debug)]
struct OrientationColor {
    rank: u64,
    rank_domain: u64,
    d: u64,
    color: u64,
    used: Vec<bool>,
    awaiting: Vec<Vertex>,
    learned: bool,
}

impl OrientationColor {
    fn try_pick(&mut self, ctx: &NodeCtx<'_>) -> Action<FieldMsg> {
        if !self.awaiting.is_empty() {
            return Action::idle();
        }
        self.color = (0..=self.d)
            .find(|&c| !self.used[c as usize])
            // INVARIANT: out-degree is bounded by d, so at most d colors are blocked and {0..=d} retains a free one.
            .expect("out-degree exceeds d: no free color in {0..d}");
        let msg = FieldMsg::new(&[(1, 2), (self.color, self.d + 1)]);
        Action::Halt(ctx.broadcast(msg))
    }
}

impl Protocol for OrientationColor {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Announce the rank so both endpoints orient each edge identically.
        ctx.broadcast(FieldMsg::new(&[(0, 2), (self.rank, self.rank_domain)]))
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        if !self.learned {
            self.learned = true;
            // Out-neighbors: smaller (rank, ident) than ours.
            let mine = (self.rank, ctx.ident);
            self.awaiting = inbox
                .iter()
                .filter(|(sender, m)| m.field(0) == 0 && (m.field(1), ctx.ident_of(*sender)) < mine)
                .map(|&(sender, _)| sender)
                .collect();
            return self.try_pick(ctx);
        }
        for (sender, m) in inbox {
            if m.field(0) == 1 {
                if let Some(i) = self.awaiting.iter().position(|s| s == sender) {
                    self.awaiting.swap_remove(i);
                    self.used[m.field(1) as usize] = true;
                }
            }
        }
        self.try_pick(ctx)
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.color
    }
}

/// Lemma 3.4: a legal `(d+1)`-coloring along the acyclic orientation induced
/// by `ranks` (toward smaller `(rank, ident)`), where `d` bounds the
/// out-degree of that orientation.
///
/// Returns `(colors, stats)`; colors lie in `{0, ..., d}`. The round count
/// equals the longest directed path plus `O(1)` — Figure 2's process.
///
/// # Panics
///
/// Panics (inside the protocol) if some vertex has more than `d`
/// out-neighbors.
pub fn orientation_coloring(
    net: &Network<'_>,
    ranks: &[u64],
    rank_domain: u64,
    d: u64,
) -> (Vec<u64>, RunStats) {
    assert_eq!(ranks.len(), net.graph().n(), "one rank per vertex");
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("orientation-coloring", |ctx| OrientationColor {
        rank: ranks[ctx.vertex],
        rank_domain: rank_domain.max(1),
        d,
        color: 0,
        used: vec![false; d as usize + 1],
        awaiting: Vec::new(),
        learned: false,
    });
    (outputs, pl.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::coloring::VertexColoring;
    use deco_graph::generators;
    use deco_graph::orientation::Orientation;

    #[test]
    fn colors_along_ident_orientation() {
        for g in [
            generators::complete(7),
            generators::petersen(),
            generators::random_bounded_degree(80, 6, 9),
        ] {
            let net = Network::new(&g);
            let ranks = vec![0u64; g.n()];
            let o = Orientation::toward_smaller_rank(&g, &ranks);
            let d = o.max_out_degree(&g) as u64;
            let (colors, stats) = orientation_coloring(&net, &ranks, 1, d);
            let c = VertexColoring::new(colors);
            assert!(c.is_proper(&g), "Lemma 3.4 coloring must be legal");
            assert!(c.color_bound() <= d + 1);
            // Rounds = longest directed path + O(1) (Figure 2).
            let lp = o.longest_path(&g).expect("ident orientation is acyclic");
            assert!(stats.rounds <= lp + 3, "rounds {} vs path {lp}", stats.rounds);
        }
    }

    #[test]
    fn layered_ranks_shorten_paths() {
        // A path graph ranked by parity has directed paths of length <= 1,
        // so coloring completes in O(1) rounds despite n being large.
        let g = generators::path(200);
        let ranks: Vec<u64> = (0..200).map(|v| (v % 2) as u64).collect();
        let net = Network::new(&g);
        let (colors, stats) = orientation_coloring(&net, &ranks, 2, 2);
        assert!(VertexColoring::new(colors).is_proper(&g));
        assert!(stats.rounds <= 4);
    }

    #[test]
    fn isolated_vertices_color_immediately() {
        let g = deco_graph::Graph::empty(5);
        let net = Network::new(&g);
        let (colors, stats) = orientation_coloring(&net, &[0; 5], 1, 0);
        assert_eq!(colors, vec![0; 5]);
        assert!(stats.rounds <= 1);
    }
}
