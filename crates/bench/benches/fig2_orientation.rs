//! **E5 — Figure 2 / Lemma 3.4**: coloring along an acyclic orientation.
//!
//! A vertex waits for all neighbors across outgoing edges, then picks a
//! free color in `{0, ..., d}`: the round count is the longest directed
//! path plus O(1), and the palette is `d+1`. We measure both on
//! orientations with very different path structure — by identifier (long
//! chains) and by layer ranks (constant-length chains) — the distinction
//! Lemma 3.5 exploits when orienting each ψ-class by φ-color.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::orientation_color::orientation_coloring;
use deco_graph::coloring::VertexColoring;
use deco_graph::generators;
use deco_graph::orientation::Orientation;
use deco_local::Network;

fn main() {
    banner("E5 / Figure 2", "Lemma 3.4: (d+1)-coloring along acyclic orientations");
    let n = match scale() {
        Scale::Quick => 1_000,
        Scale::Full => 10_000,
    };
    let table = Table::new(
        &["graph", "orientation", "d", "longest path", "colors", "rounds"],
        &[18, 14, 5, 13, 7, 7],
    );

    let cases: Vec<(&str, deco_graph::Graph)> = vec![
        ("path", generators::path(n)),
        ("random Δ<=8", generators::random_bounded_degree(n, 8, 0xE5)),
        ("grid", generators::grid(40, n / 40)),
    ];
    for (name, g) in cases {
        // Identifier orientation: potentially long monotone chains.
        let ranks = vec![0u64; g.n()];
        let o = Orientation::toward_smaller_rank(&g, &ranks);
        let d = o.max_out_degree(&g) as u64;
        let lp = o.longest_path(&g).expect("ident orientation is acyclic");
        let net = Network::new(&g);
        let (colors, stats) = orientation_coloring(&net, &ranks, 1, d);
        let c = VertexColoring::new(colors);
        assert!(c.is_proper(&g));
        assert!(c.color_bound() <= d + 1);
        assert!(stats.rounds <= lp + 3);
        table.row(&[
            name.to_string(),
            "by ident".into(),
            d.to_string(),
            lp.to_string(),
            c.palette_size().to_string(),
            stats.rounds.to_string(),
        ]);

        // Layered orientation (ranks = BFS-ish parity layers): short chains.
        let ranks: Vec<u64> = (0..g.n()).map(|v| (v % 3) as u64).collect();
        let o = Orientation::toward_smaller_rank(&g, &ranks);
        let d = o.max_out_degree(&g) as u64;
        let lp = o.longest_path(&g).expect("layered orientation is acyclic");
        let net = Network::new(&g);
        let (colors, stats) = orientation_coloring(&net, &ranks, 3, d);
        let c = VertexColoring::new(colors);
        assert!(c.is_proper(&g));
        table.row(&[
            name.to_string(),
            "by 3 layers".into(),
            d.to_string(),
            lp.to_string(),
            c.palette_size().to_string(),
            stats.rounds.to_string(),
        ]);
        table.rule();
    }
    println!(
        "shape check: rounds track the longest directed path, not n — with\n\
         layered ranks the same graphs color in O(1) rounds. This is exactly\n\
         why Lemma 3.5 orients ψ-classes by (φ-color, Id)."
    );
}
