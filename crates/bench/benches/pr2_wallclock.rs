//! **PR2 — send-everywhere pipelines**: wall-clock of the adaptive
//! scan/push delivery and the threaded pipeline drivers, on the scenario
//! PR 1 left flat: the edge-coloring pipeline's long sparse tail, where the
//! slot engine's O(deg) inbox sweeps only tied the naive engine
//! (`BENCH_pr1.json`, `edge-color/random-bounded-degree`).
//!
//! Measured workloads:
//!
//! 1. the full edge-coloring pipeline (Theorem 5.5) under the naive engine,
//!    forced-scan delivery, and adaptive delivery — the acceptance row:
//!    adaptive must beat (not tie) naive;
//! 2. Legal-Color on a bounded-NI torus across the same three engines;
//! 3. an epoch-wave protocol (the Algorithm 1 while-loop shape: one φ-class
//!    speaks per round) traced per round — records the scan/push choice and
//!    worker count of every round, the observability the ROADMAP asked for;
//! 4. FloodMax thread-scaling at 1/2/4/8 workers (threaded pipelines are
//!    deterministic at any budget; on a 1-core container the numbers are
//!    noise, recorded with `threads_available` so readers can judge).
//!
//! Every comparison asserts bit-identical outputs and stats across engines
//! and modes. Results go to `BENCH_pr2.json` (override with
//! `DECO_BENCH_OUT`); `DECO_BENCH_SCALE=full` grows the sweeps.

use deco_bench::json::{array, run_length, Obj, Value};
use deco_bench::{banner, millis, scale, time_interleaved, Scale, Table};
use deco_core::edge::legal::{edge_color_in_groups, edge_log_depth, MessageMode};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::{generators, Graph};
use deco_local::{
    Action, Delivery, DeliveryChoice, Engine, Network, NodeCtx, Protocol, RoundTrace,
};
use std::time::Duration;

/// One engine-comparison row: naive vs forced-scan vs adaptive delivery.
struct Row {
    name: String,
    n: usize,
    m: usize,
    rounds: usize,
    messages: usize,
    naive: Duration,
    scan: Duration,
    adaptive: Duration,
}

impl Row {
    fn speedup_vs_naive(&self) -> f64 {
        self.naive.as_secs_f64() / self.adaptive.as_secs_f64().max(1e-9)
    }

    fn speedup_vs_scan(&self) -> f64 {
        self.scan.as_secs_f64() / self.adaptive.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Value {
        Obj::new()
            .field("workload", self.name.as_str())
            .field("n", self.n)
            .field("m", self.m)
            .field("rounds", self.rounds)
            .field("messages", self.messages)
            .field("naive_ms", self.naive.as_secs_f64() * 1e3)
            .field("scan_ms", self.scan.as_secs_f64() * 1e3)
            .field("adaptive_ms", self.adaptive.as_secs_f64() * 1e3)
            .field("speedup_adaptive_vs_naive", self.speedup_vs_naive())
            .field("speedup_adaptive_vs_scan", self.speedup_vs_scan())
            .build()
    }
}

/// Times one pipeline driver under adaptive delivery, forced-scan delivery
/// and the naive engine, asserting all three agree bit for bit (outputs and
/// stats) before the interleaved timing passes.
fn pipeline_row<T, D>(name: &str, g: &Graph, samples: usize, driver: D) -> Row
where
    T: PartialEq + std::fmt::Debug,
    D: Fn(&Network<'_>) -> (T, deco_local::RunStats),
{
    let adaptive_net = Network::new(g).with_delivery(Delivery::Adaptive);
    let scan_net = Network::new(g).with_delivery(Delivery::Scan);
    let naive_net = Network::new(g).with_engine(Engine::Naive);
    let adaptive_run = driver(&adaptive_net);
    let scan_run = driver(&scan_net);
    let naive_run = driver(&naive_net);
    assert_eq!(adaptive_run, scan_run, "{name}: scan diverged");
    assert_eq!(adaptive_run, naive_run, "{name}: naive diverged");
    let times = time_interleaved(
        samples,
        &mut [&mut || driver(&adaptive_net), &mut || driver(&scan_net), &mut || driver(&naive_net)],
    );
    Row {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        rounds: adaptive_run.1.rounds,
        messages: adaptive_run.1.messages,
        naive: times[2],
        scan: times[1],
        adaptive: times[0],
    }
}

/// The full edge pipeline (Theorem 5.5) as a comparison row.
fn edge_pipeline_row(name: &str, g: &Graph, samples: usize) -> Row {
    let params = edge_log_depth(1);
    let groups = vec![0u64; g.m()];
    pipeline_row(name, g, samples, |net| {
        let run =
            edge_color_in_groups(net, &groups, 1, params, g.max_degree() as u64, MessageMode::Long)
                .expect("params are valid");
        assert!(run.coloring.is_proper(g), "{name}: improper coloring");
        (run.coloring, run.stats)
    })
}

/// The Legal-Color pipeline as a comparison row.
fn legal_pipeline_row(name: &str, g: &Graph, c: u64, samples: usize) -> Row {
    let params = LegalParams::log_depth(c, 1);
    pipeline_row(name, g, samples, |net| {
        let run = legal_color(net, c, params).expect("params are valid");
        (run.coloring, run.stats)
    })
}

/// The Algorithm 1 while-loop traffic shape: vertices carry a class in
/// `0..classes`; each round only the matching class broadcasts (everyone
/// else idles), for `epochs` sweeps — a dense start followed by a long
/// sparse tail, the adaptive engine's target regime.
struct EpochWave {
    classes: u64,
    epochs: usize,
    acc: u64,
}

impl Protocol for EpochWave {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
        self.acc = ctx.ident;
        ctx.broadcast(ctx.ident)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
        for &(_, m) in inbox {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(m);
        }
        if ctx.round >= self.epochs * self.classes as usize {
            Action::halt()
        } else if ctx.ident % self.classes == (ctx.round as u64) % self.classes {
            Action::Broadcast(self.acc)
        } else {
            Action::idle()
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.acc
    }
}

/// Runs the epoch wave traced and returns its JSON record: per-round
/// delivery choices (run-length encoded), per-round worker counts, and the
/// push-round share.
fn traced_epoch_wave(g: &Graph, classes: u64, epochs: usize) -> Value {
    // Adaptive delivery is pinned explicitly: the per-round delivery trace
    // below is part of the deterministic gate surface, so it must not
    // depend on a DECO_DELIVERY override in the runner's environment.
    let net = Network::new(g).with_delivery(Delivery::Adaptive);
    let (run, _, trace) = net.run_traced(|_| EpochWave { classes, epochs, acc: 0 });
    // Scan delivery must agree bit for bit.
    let scan = Network::new(g).with_delivery(Delivery::Scan).run(|_| EpochWave {
        classes,
        epochs,
        acc: 0,
    });
    assert_eq!(run.outputs, scan.outputs, "epoch wave: delivery modes diverged");
    assert_eq!(run.stats, scan.stats);
    let push_rounds = trace.iter().filter(|t| t.delivery == DeliveryChoice::Push).count();
    let labels = trace.iter().map(|t: &RoundTrace| match t.delivery {
        DeliveryChoice::Scan => "scan",
        DeliveryChoice::Push => "push",
    });
    Obj::new()
        .field("workload", "delivery-trace/epoch-wave")
        .field("n", g.n())
        .field("classes", classes)
        .field("rounds", run.stats.rounds)
        .field("push_rounds", push_rounds)
        .field("push_share", push_rounds as f64 / trace.len().max(1) as f64)
        .field("per_round_delivery", run_length(labels))
        // Worker counts depend on the host's thread budget: environment
        // blocks are outside the gate's deterministic surface.
        .field(
            "environment",
            Obj::new().field("per_round_workers", array(trace.iter().map(|t| t.workers))).build(),
        )
        .build()
}

/// FloodMax wall-clock at several thread budgets (bit-identity asserted).
fn thread_scaling(g: &Graph, samples: usize) -> Value {
    struct FloodMax {
        radius: usize,
        best: u64,
    }
    impl Protocol for FloodMax {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
            self.best = ctx.ident;
            ctx.broadcast(self.best)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
            for &(_, v) in inbox {
                self.best = self.best.max(v);
            }
            if ctx.round >= self.radius {
                Action::halt()
            } else {
                Action::Broadcast(self.best)
            }
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
            self.best
        }
    }
    let mk = |_: &NodeCtx<'_>| FloodMax { radius: 4, best: 0 };
    const BUDGETS: [usize; 4] = [1, 2, 4, 8];
    let nets: Vec<Network<'_>> = BUDGETS.iter().map(|&t| Network::new(g).with_threads(t)).collect();
    let reference = nets[0].run_profiled_threaded(mk);
    for (net, &threads) in nets.iter().zip(&BUDGETS) {
        let run = net.run_profiled_threaded(mk);
        assert_eq!(run.0.outputs, reference.0.outputs, "threads={threads} diverged");
        assert_eq!(run.0.stats, reference.0.stats);
    }
    // Interleave the budgets so machine-load drift is shared fairly instead
    // of being read as thread-scaling signal.
    let mut runners: Vec<_> = nets.iter().map(|net| || net.run_profiled_threaded(mk)).collect();
    let mut variants: Vec<&mut dyn FnMut() -> _> =
        runners.iter_mut().map(|r| r as &mut dyn FnMut() -> _).collect();
    let times = time_interleaved(samples, &mut variants);
    let rows: Vec<Value> = BUDGETS
        .iter()
        .zip(&times)
        .map(|(&threads, t)| {
            Obj::new().field("threads", threads).field("ms", t.as_secs_f64() * 1e3).build()
        })
        .collect();
    Obj::new()
        .field("workload", "thread-scaling/floodmax")
        .field("n", g.n())
        .field("samples", samples)
        .field("per_thread_budget", Value::Array(rows))
        .build()
}

fn main() {
    banner("PR2 / wallclock", "adaptive push/scan delivery vs scan-only and naive");
    let full = scale() == Scale::Full;
    let samples = 3;

    // 1. The acceptance scenario: the edge pipeline's sparse tail.
    let (edge_n, edge_d) = if full { (30_000, 40) } else { (6_000, 40) };
    println!("generating random_bounded_degree(n={edge_n}, Δ={edge_d}) ...");
    let g = generators::random_bounded_degree(edge_n, edge_d, 0x9124);
    let edge_row = edge_pipeline_row("edge-color/random-bounded-degree", &g, samples);
    drop(g);

    // 2. Legal-Color on a bounded-NI torus.
    let side = if full { 1000 } else { 320 };
    println!("generating torus({side}x{side}) ...");
    let t = generators::torus(side, side);
    let legal_row = legal_pipeline_row("legal-color/torus-bounded-ni", &t, 4, 1);
    drop(t);

    // 3. Per-round delivery trace on the epoch-wave shape.
    let wave_n = if full { 200_000 } else { 50_000 };
    println!("generating random_bounded_degree(n={wave_n}, Δ=8) ...");
    let g = generators::random_bounded_degree(wave_n, 8, 0x9125);
    let wave_json = traced_epoch_wave(&g, 16, 3);

    // 4. Thread scaling on the same graph.
    let scaling_json = thread_scaling(&g, samples);
    drop(g);

    let rows = [&edge_row, &legal_row];
    println!();
    let table = Table::new(
        &["workload", "n", "rounds", "naive ms", "scan ms", "adapt ms", "vs naive", "vs scan"],
        &[34, 9, 7, 10, 10, 10, 9, 8],
    );
    for r in rows {
        table.row(&[
            r.name.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            millis(r.naive),
            millis(r.scan),
            millis(r.adaptive),
            format!("{:.2}x", r.speedup_vs_naive()),
            format!("{:.2}x", r.speedup_vs_scan()),
        ]);
    }
    println!("\n(adaptive = per-round scan/push choice; all engines verified bit-identical)");

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(16);
    let json = Obj::new()
        .field("bench", "pr2_wallclock")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        // Machine facts under "environment" stay outside the deterministic
        // gate surface (see the gate module docs).
        .field("environment", Obj::new().field("threads_available", threads).build())
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "adaptive delivery >= naive engine on the sparse edge-color scenario \
                     that was flat in BENCH_pr1.json",
                )
                .field("met", edge_row.speedup_vs_naive() >= 1.0)
                .field("speedup_adaptive_vs_naive", edge_row.speedup_vs_naive())
                .build(),
        )
        .field("workloads", vec![edge_row.to_json(), legal_row.to_json(), wave_json, scaling_json])
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr2.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
}
