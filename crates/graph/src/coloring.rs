//! Vertex and edge coloring containers with validity and defect checkers.
//!
//! The paper works with three kinds of colorings:
//!
//! * a **legal vertex coloring** ψ assigns every vertex a color distinct from
//!   all its neighbors;
//! * a **legal edge coloring** φ assigns every edge a color distinct from all
//!   incident edges (Section 1.1);
//! * an **`m`-defective `χ`-vertex-coloring** allows every vertex up to `m`
//!   neighbors of its own color (Section 1.3) — the defect of an edge
//!   coloring is defined analogously on incident edges.
//!
//! Checkers here are centralized oracles used by tests and benches, not by
//! the distributed algorithms themselves.

use crate::{EdgeIdx, Graph, Vertex};
use std::collections::BTreeSet;

/// A color. Algorithms in this workspace use dense small palettes, but the
/// container does not require contiguity.
pub type Color = u64;

/// An assignment of a color to every vertex of a graph.
///
/// # Example
///
/// ```
/// use deco_graph::{coloring::VertexColoring, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let c = VertexColoring::new(vec![0, 1, 0]);
/// assert!(c.is_proper(&g));
/// assert_eq!(c.defect(&g), 0);
/// assert_eq!(c.palette_size(), 2);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexColoring {
    colors: Vec<Color>,
}

impl VertexColoring {
    /// Wraps a color vector (index = vertex).
    pub fn new(colors: Vec<Color>) -> VertexColoring {
        VertexColoring { colors }
    }

    /// The color of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: Vertex) -> Color {
        self.colors[v]
    }

    /// The underlying color vector.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// Consumes the coloring, returning the color vector.
    pub fn into_colors(self) -> Vec<Color> {
        self.colors
    }

    /// Number of vertices colored.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring is empty.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of distinct colors used.
    pub fn palette_size(&self) -> usize {
        self.colors.iter().collect::<BTreeSet<_>>().len()
    }

    /// Largest color value used plus one (`0` for an empty graph); an upper
    /// bound on the palette size when colors are dense.
    pub fn color_bound(&self) -> u64 {
        self.colors.iter().map(|&c| c + 1).max().unwrap_or(0)
    }

    /// Whether no edge of `g` is monochromatic.
    ///
    /// # Panics
    ///
    /// Panics if the coloring and graph sizes disagree.
    pub fn is_proper(&self, g: &Graph) -> bool {
        assert_eq!(self.colors.len(), g.n(), "coloring size must match graph");
        g.edges().all(|(u, v)| self.colors[u] != self.colors[v])
    }

    /// Number of neighbors of `v` sharing `v`'s color.
    pub fn defect_of(&self, g: &Graph, v: Vertex) -> usize {
        g.neighbors(v).filter(|&u| self.colors[u] == self.colors[v]).count()
    }

    /// The defect of the coloring: the maximum over vertices of
    /// [`VertexColoring::defect_of`]. A coloring is proper iff its defect is 0.
    ///
    /// # Panics
    ///
    /// Panics if the coloring and graph sizes disagree.
    pub fn defect(&self, g: &Graph) -> usize {
        assert_eq!(self.colors.len(), g.n(), "coloring size must match graph");
        (0..g.n()).map(|v| self.defect_of(g, v)).max().unwrap_or(0)
    }

    /// The vertices of each color class, keyed by color value.
    pub fn classes(&self) -> Vec<(Color, Vec<Vertex>)> {
        let mut sorted: Vec<(Color, Vertex)> =
            self.colors.iter().enumerate().map(|(v, &c)| (c, v)).collect();
        sorted.sort_unstable();
        let mut out: Vec<(Color, Vec<Vertex>)> = Vec::new();
        for (c, v) in sorted {
            match out.last_mut() {
                Some((lc, vs)) if *lc == c => vs.push(v),
                _ => out.push((c, vec![v])),
            }
        }
        out
    }
}

/// An assignment of a color to every edge of a graph (indexed by edge index).
///
/// # Example
///
/// ```
/// use deco_graph::{coloring::EdgeColoring, Graph};
///
/// // Path 0-1-2: the two edges are incident and need distinct colors.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// assert!(EdgeColoring::new(vec![0, 1]).is_proper(&g));
/// assert!(!EdgeColoring::new(vec![0, 0]).is_proper(&g));
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<Color>,
}

impl EdgeColoring {
    /// Wraps a color vector (index = edge index).
    pub fn new(colors: Vec<Color>) -> EdgeColoring {
        EdgeColoring { colors }
    }

    /// The color of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn color(&self, e: EdgeIdx) -> Color {
        self.colors[e]
    }

    /// The underlying color vector.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// Consumes the coloring, returning the color vector.
    pub fn into_colors(self) -> Vec<Color> {
        self.colors
    }

    /// Number of edges colored.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring is empty.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of distinct colors used.
    pub fn palette_size(&self) -> usize {
        self.colors.iter().collect::<BTreeSet<_>>().len()
    }

    /// Whether no two incident edges share a color.
    ///
    /// # Panics
    ///
    /// Panics if the coloring and graph sizes disagree.
    pub fn is_proper(&self, g: &Graph) -> bool {
        assert_eq!(self.colors.len(), g.m(), "coloring size must match edge count");
        (0..g.n()).all(|v| {
            let mut seen: Vec<Color> = g.incident(v).map(|(_, e)| self.colors[e]).collect();
            seen.sort_unstable();
            seen.windows(2).all(|w| w[0] != w[1])
        })
    }

    /// Number of edges incident to `e` (sharing an endpoint) with `e`'s color.
    pub fn defect_of(&self, g: &Graph, e: EdgeIdx) -> usize {
        let (u, v) = g.endpoints(e);
        let c = self.colors[e];
        let at = |w: Vertex| g.incident(w).filter(|&(_, f)| f != e && self.colors[f] == c).count();
        at(u) + at(v)
    }

    /// The defect of the edge coloring: maximum over edges of
    /// [`EdgeColoring::defect_of`]. Proper iff 0.
    ///
    /// # Panics
    ///
    /// Panics if the coloring and graph sizes disagree.
    pub fn defect(&self, g: &Graph) -> usize {
        assert_eq!(self.colors.len(), g.m(), "coloring size must match edge count");
        (0..g.m()).map(|e| self.defect_of(g, e)).max().unwrap_or(0)
    }

    /// Reinterprets this edge coloring of `g` as a vertex coloring of the
    /// line graph `L(g)` built by [`crate::line_graph::line_graph`], whose
    /// vertex `i` corresponds to edge `i`.
    pub fn as_line_graph_coloring(&self) -> VertexColoring {
        VertexColoring::new(self.colors.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn vertex_defect_counts() {
        let g = triangle();
        let c = VertexColoring::new(vec![1, 1, 2]);
        assert!(!c.is_proper(&g));
        assert_eq!(c.defect(&g), 1);
        assert_eq!(c.defect_of(&g, 2), 0);
        assert_eq!(c.palette_size(), 2);
        assert_eq!(c.color_bound(), 3);
    }

    #[test]
    fn classes_are_sorted() {
        let c = VertexColoring::new(vec![2, 0, 2, 1]);
        assert_eq!(c.classes(), vec![(0, vec![1]), (1, vec![3]), (2, vec![0, 2])]);
    }

    #[test]
    fn triangle_needs_three_edge_colors() {
        let g = triangle();
        assert!(!EdgeColoring::new(vec![0, 1, 0]).is_proper(&g));
        assert!(EdgeColoring::new(vec![0, 1, 2]).is_proper(&g));
    }

    #[test]
    fn edge_defect_counts_both_endpoints() {
        // Star with 3 leaves: all edges pairwise incident at the center.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = EdgeColoring::new(vec![5, 5, 5]);
        assert_eq!(c.defect(&g), 2);
        assert_eq!(c.defect_of(&g, 0), 2);
    }

    #[test]
    fn empty_colorings() {
        let g = Graph::empty(0);
        assert!(VertexColoring::new(vec![]).is_proper(&g));
        assert_eq!(VertexColoring::new(vec![]).defect(&g), 0);
        assert!(EdgeColoring::new(vec![]).is_proper(&g));
        assert!(VertexColoring::new(vec![]).is_empty());
        assert!(EdgeColoring::new(vec![]).is_empty());
    }
}
