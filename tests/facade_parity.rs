//! The [`RegionRecolor`] facade must be a zero-cost veneer: driving either
//! engine through `&mut dyn RegionRecolor` produces bit-identical reports,
//! colorings and snapshots to driving the concrete type directly, on both
//! the delta-CSR sweep and a churn trace. [`RecolorConfig`] is the one
//! configuration surface: the deprecated per-engine `with_*` builder shims
//! served their one grace-period PR and are gone.

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace, Trace};
use deco_stream::{
    queue_op, replay_trace_on, CommitReport, RecolorConfig, Recolorer, RegionRecolor, SegRecolorer,
};

const THRESHOLD: u32 = 25;

/// Drives a trace through the concrete engine API (no facade anywhere).
fn run_direct_legacy(trace: &Trace) -> (Vec<CommitReport>, Vec<u64>) {
    let cfg = RecolorConfig::default().with_repair_threshold(THRESHOLD);
    let mut r = Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap();
    let mut reports = Vec::new();
    for batch in trace.batches() {
        for &op in batch {
            queue_op(&mut r, op).unwrap();
        }
        reports.push(r.commit().unwrap());
    }
    (reports, r.coloring().into_colors())
}

fn run_direct_segmented(trace: &Trace) -> (Vec<CommitReport>, Vec<u64>) {
    let cfg = RecolorConfig::default().with_repair_threshold(THRESHOLD);
    let mut r =
        SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap();
    let mut reports = Vec::new();
    for batch in trace.batches() {
        for &op in batch {
            r.queue_op(op).unwrap();
        }
        reports.push(r.commit().unwrap());
    }
    (reports, r.coloring().into_colors())
}

/// Drives the same trace through `&mut dyn RegionRecolor` via
/// [`replay_trace_on`] — the path the CLI, the benches and `deco-serve`
/// all take.
fn run_facade(trace: &Trace, segmented: bool) -> (Vec<CommitReport>, Vec<u64>) {
    let cfg = RecolorConfig::default().with_repair_threshold(THRESHOLD);
    let mut engine: Box<dyn RegionRecolor> = if segmented {
        Box::new(
            SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap(),
        )
    } else {
        Box::new(Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap())
    };
    let run = replay_trace_on(engine.as_mut(), trace).unwrap();
    engine.verify().expect("facade verify must pass after the last commit");
    assert_eq!(engine.commits(), run.reports.len());
    (run.reports, engine.coloring().into_colors())
}

#[test]
fn facade_matches_direct_api_on_churn_for_both_engines() {
    for seed in [0xfacade, 0xfacadd] {
        let trace = churn_trace(220, 6, 5, 9, seed);
        assert_eq!(run_facade(&trace, false), run_direct_legacy(&trace), "legacy diverged");
        assert_eq!(run_facade(&trace, true), run_direct_segmented(&trace), "segmented diverged");
    }
}

#[test]
fn facade_engines_agree_with_each_other() {
    // Cross-engine parity through the facade alone: identical colorings,
    // and identical reports up to `stats.commit_bytes` (the quantity the
    // segmented representation exists to improve).
    let trace = churn_trace(200, 5, 6, 8, 0xd1ff);
    let (legacy_reports, legacy_colors) = run_facade(&trace, false);
    let (seg_reports, seg_colors) = run_facade(&trace, true);
    assert_eq!(legacy_colors, seg_colors);
    for (a, b) in legacy_reports.iter().zip(&seg_reports) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.stats.commit_bytes = 0;
        b.stats.commit_bytes = 0;
        assert_eq!(a, b, "commit {}: reports diverged beyond commit_bytes", a.commit);
    }
}

#[test]
fn facade_snapshots_are_lexicographic_on_both_engines() {
    let trace = churn_trace(150, 5, 4, 7, 0x51ab);
    let engines: [Box<dyn RegionRecolor>; 2] = [
        Box::new(
            Recolorer::new_with(
                trace.n0,
                edge_log_depth(1),
                MessageMode::Long,
                RecolorConfig::default(),
            )
            .unwrap(),
        ),
        Box::new(
            SegRecolorer::new_with(
                trace.n0,
                edge_log_depth(1),
                MessageMode::Long,
                RecolorConfig::default(),
            )
            .unwrap(),
        ),
    ];
    let mut snaps = Vec::new();
    for mut engine in engines {
        replay_trace_on(engine.as_mut(), &trace).unwrap();
        snaps.push((engine.snapshot(), engine.coloring(), engine.color_bound()));
    }
    assert_eq!(snaps[0].0, snaps[1].0, "lexicographic snapshots diverged");
    assert_eq!(snaps[0].1, snaps[1].1, "lexicographic colorings diverged");
    assert_eq!(snaps[0].2, snaps[1].2, "palette bounds diverged");
    assert!(snaps[0].1.is_proper(&snaps[0].0));
}

#[test]
fn request_compaction_forces_one_from_scratch_commit() {
    use deco_stream::RepairStrategy;
    for segmented in [false, true] {
        let trace = churn_trace(140, 5, 4, 6, 0xc0de);
        let cfg = RecolorConfig::default();
        let mut engine: Box<dyn RegionRecolor> = if segmented {
            Box::new(
                SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg)
                    .unwrap(),
            )
        } else {
            Box::new(
                Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap(),
            )
        };
        replay_trace_on(engine.as_mut(), &trace).unwrap();
        // An empty batch is clean...
        let clean = engine.commit().unwrap();
        assert_eq!(clean.strategy, RepairStrategy::Clean);
        // ...until a compaction is requested: the next commit recolors
        // from scratch, and the request is consumed by it.
        engine.request_compaction();
        engine.request_compaction(); // idempotent until consumed
        let compacted = engine.commit().unwrap();
        assert_eq!(compacted.strategy, RepairStrategy::FromScratch, "segmented={segmented}");
        assert_eq!(compacted.recolored, compacted.m);
        let after = engine.commit().unwrap();
        assert_eq!(after.strategy, RepairStrategy::Clean, "request must be consumed");
        engine.verify().unwrap();
    }
}

/// `RecolorConfig` is the one configuration surface: a config built once
/// drives both engines identically through [`set_config`], covering the
/// knobs the deleted per-engine `with_*` shims used to forward.
///
/// [`set_config`]: Recolorer::set_config
#[test]
fn recolor_config_is_the_single_config_surface() {
    use deco_stream::FaultyTransport;
    use std::sync::Arc;

    let trace = churn_trace(160, 5, 4, 8, 0x5111);
    let cfg = RecolorConfig::default()
        .with_repair_threshold(40)
        .with_compaction_every(3)
        .with_early_halt(false);
    let constructed = {
        let mut r =
            Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg.clone())
                .unwrap();
        replay_trace_on(&mut r, &trace).unwrap();
        (r.config().threshold_pct(), r.config().compaction_every(), r.coloring())
    };
    let reconfigured = {
        let mut r = Recolorer::new(trace.n0, edge_log_depth(1), MessageMode::Long).unwrap();
        r.set_config(cfg.clone());
        replay_trace_on(&mut r, &trace).unwrap();
        (r.config().threshold_pct(), r.config().compaction_every(), r.coloring())
    };
    assert_eq!(constructed, reconfigured);

    // Every config knob lands in both engines' live configuration.
    let seg_cfg = cfg
        .with_transport(Arc::new(FaultyTransport::new(1)))
        .with_max_repair_attempts(0) // clamped to 1 by the builder
        .with_rebuild_commits(true);
    let r =
        SegRecolorer::new_with(20, edge_log_depth(1), MessageMode::Long, seg_cfg.clone()).unwrap();
    assert!(!r.config().transport().is_perfect());
    assert_eq!(r.config().max_attempts(), 1);
    let r = Recolorer::new_with(20, edge_log_depth(1), MessageMode::Long, seg_cfg).unwrap();
    assert!(!r.config().transport().is_perfect());
    assert!(r.config().rebuild_commits());
}
