//! Per-instance engine configuration.
//!
//! [`RecolorConfig`] gathers every knob the two recoloring engines accept —
//! repair threshold, compaction cadence, early halting, transport, retry
//! budget, probe, and the simulator's thread/delivery settings — into one
//! value owned by the engine instance. Historically each knob was a
//! hand-duplicated `with_*` builder on both [`Recolorer`] and
//! [`SegRecolorer`], and the thread/delivery pair was process-global (the
//! `DECO_THREADS` / `DECO_DELIVERY` environment read, frozen at first
//! use). Neither shape works for a fleet of heterogeneous tenants in one
//! process — `deco-serve` registers thousands of engines, each with its
//! own config — so the knobs now travel with the instance and the env read
//! is merely the *default* for the unset fields.
//!
//! The old builders survive one PR as deprecated forwarding shims; see the
//! README migration note.
//!
//! [`Recolorer`]: crate::Recolorer
//! [`SegRecolorer`]: crate::SegRecolorer

use deco_local::{Delivery, InProcess, Transport};
use deco_probe::Probe;
use std::sync::Arc;

/// Every per-instance knob of a recoloring engine, with the workspace-wide
/// defaults. Construct with [`RecolorConfig::default`], refine with the
/// builder methods, hand to [`Recolorer::new_with`] /
/// [`SegRecolorer::new_with`] (or their `from_graph_with` variants).
///
/// None of the fields participate in the determinism contract except
/// through their documented semantics: colorings and [`CommitReport`]s are
/// bit-identical at any `threads` / `delivery` setting and with any probe,
/// while `threshold_pct`, `compaction_every`, `transport` and
/// `max_attempts` legitimately select *which* deterministic outcome runs.
///
/// [`Recolorer::new_with`]: crate::Recolorer::new_with
/// [`SegRecolorer::new_with`]: crate::SegRecolorer::new_with
/// [`CommitReport`]: crate::CommitReport
#[derive(Debug, Clone)]
pub struct RecolorConfig {
    /// Repair-region density (percent of `m`) above which a commit falls
    /// back to the from-scratch pipeline.
    pub(crate) threshold_pct: u32,
    /// Force a from-scratch recolor every `k`-th commit (0 = never).
    pub(crate) compaction_every: usize,
    /// Differential oracle: commit via the pre-delta-CSR rebuild path.
    /// Only meaningful on [`Recolorer`](crate::Recolorer); the segmented
    /// engine has no rebuild path and ignores it.
    pub(crate) rebuild_commits: bool,
    /// Early node halting in the repair pipelines (default on).
    pub(crate) early_halt: bool,
    /// Transport under the incremental repair sub-networks.
    pub(crate) transport: Arc<dyn Transport>,
    /// Bounded self-stabilization budget for fault-era repairs.
    pub(crate) max_attempts: u32,
    /// Structured event sink (default: the shared no-op probe).
    pub(crate) probe: Arc<dyn Probe>,
    /// Worker-thread budget for every network the engine builds; `None`
    /// defers to the process default (`DECO_THREADS` or available
    /// parallelism).
    pub(crate) threads: Option<usize>,
    /// Delivery mode for every network the engine builds; `None` defers to
    /// the process default (`DECO_DELIVERY` or adaptive).
    pub(crate) delivery: Option<Delivery>,
}

impl Default for RecolorConfig {
    fn default() -> Self {
        RecolorConfig {
            threshold_pct: 25,
            compaction_every: 0,
            rebuild_commits: false,
            early_halt: true,
            transport: Arc::new(InProcess),
            max_attempts: 5,
            probe: deco_probe::null(),
            threads: None,
            delivery: None,
        }
    }
}

impl RecolorConfig {
    /// Sets the repair-region density threshold in percent of `m` (default
    /// 25): a commit whose region is larger falls back to from-scratch.
    pub fn with_repair_threshold(mut self, pct: u32) -> RecolorConfig {
        self.threshold_pct = pct;
        self
    }

    /// Forces a from-scratch recolor on every `k`-th commit (`0`, the
    /// default, never compacts): the steady-state **palette-drift**
    /// mitigation. Greedy incremental repairs only promise colors below
    /// the cap `2Δ - 1`, so over many churn epochs the palette in use can
    /// creep upward from the tight coloring the from-scratch pipeline
    /// produces; a periodic compaction commit re-runs the whole pipeline
    /// and resets the palette toward its ϑ. Compaction commits report
    /// `FromScratch` even when the batch alone would have been `Clean`.
    ///
    /// Commits are counted from the engine's first: with `k = 4`, commits
    /// 3, 7, 11, ... (0-based) compact. For demand-driven compaction (the
    /// `deco-serve` cost budgets) see
    /// [`RegionRecolor::request_compaction`](crate::RegionRecolor::request_compaction).
    pub fn with_compaction_every(mut self, k: usize) -> RecolorConfig {
        self.compaction_every = k;
        self
    }

    /// Selects the pre-delta-CSR commit path (default `false`): snapshots
    /// rebuilt by `Graph::from_edges`, colors carried by an `O(m)`
    /// endpoint-pair merge, dirty edges found by full sweeps. Outcomes are
    /// bit-identical to the default path; only wall-clock differs. This is
    /// the differential oracle the delta-CSR benches and tests compare
    /// against. Ignored by [`SegRecolorer`](crate::SegRecolorer), which
    /// has no rebuild commit path.
    pub fn with_rebuild_commits(mut self, on: bool) -> RecolorConfig {
        self.rebuild_commits = on;
        self
    }

    /// Enables or disables early node halting inside the repair pipelines
    /// (default on; see [`deco_local::Network::with_early_halt`]).
    /// Colorings and reports are bit-identical either way apart from round
    /// counters.
    pub fn with_early_halt(mut self, on: bool) -> RecolorConfig {
        self.early_halt = on;
        self
    }

    /// Plugs a [`Transport`] under the incremental repair sub-networks
    /// (default: the perfect in-process transport). Any non-perfect
    /// transport switches incremental repairs to the loss-tolerant
    /// self-stabilizing path; from-scratch recolors always run in-process.
    /// See the [`recolor`](crate::Recolorer) module docs.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> RecolorConfig {
        self.transport = transport;
        self
    }

    /// Sets the bounded self-stabilization budget (default 5, clamped to
    /// at least 1): how many repair attempts a fault-era commit runs —
    /// each under a doubled round cap — before degrading to the
    /// fault-free from-scratch pipeline.
    pub fn with_max_repair_attempts(mut self, attempts: u32) -> RecolorConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Plugs a structured event sink under the engine (default: the shared
    /// no-op probe). Shared with the commit machinery and every repair
    /// sub-network, so commit decisions, phase spans and round samples
    /// land in one stream.
    pub fn with_probe(mut self, probe: Arc<dyn Probe>) -> RecolorConfig {
        self.probe = probe;
        self
    }

    /// Pins the worker-thread budget of every network this engine builds
    /// (clamped to at least 1 downstream). Unset, the process default
    /// applies — `DECO_THREADS` or available parallelism, re-read per
    /// network. Results never depend on this value; two tenants in one
    /// process may differ.
    pub fn with_threads(mut self, threads: usize) -> RecolorConfig {
        self.threads = Some(threads);
        self
    }

    /// Pins the delivery mode of every network this engine builds. Unset,
    /// the process default applies — `DECO_DELIVERY` or
    /// [`Delivery::Adaptive`], re-read per network. Results are identical
    /// in every mode; only wall-clock differs.
    pub fn with_delivery(mut self, delivery: Delivery) -> RecolorConfig {
        self.delivery = Some(delivery);
        self
    }

    /// The repair-region density threshold in percent of `m`.
    pub fn threshold_pct(&self) -> u32 {
        self.threshold_pct
    }

    /// The scheduled compaction cadence (0 = never).
    pub fn compaction_every(&self) -> usize {
        self.compaction_every
    }

    /// Whether the differential rebuild-commit oracle path is selected.
    pub fn rebuild_commits(&self) -> bool {
        self.rebuild_commits
    }

    /// Whether early node halting is enabled.
    pub fn early_halt(&self) -> bool {
        self.early_halt
    }

    /// The transport under the incremental repair sub-networks.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The bounded self-stabilization budget.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The engine's event sink.
    pub fn probe(&self) -> &Arc<dyn Probe> {
        &self.probe
    }

    /// The pinned worker-thread budget, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The pinned delivery mode, if any.
    pub fn delivery(&self) -> Option<Delivery> {
        self.delivery
    }
}
