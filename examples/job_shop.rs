//! Job-shop scheduling via distributed edge coloring — one of the paper's
//! motivating applications (Section 1.1 cites job-shop scheduling, packet
//! routing and resource allocation).
//!
//! Jobs must run on machines; each (job, machine) task takes one unit slot,
//! and neither a job nor a machine can do two things at once. Tasks are the
//! edges of a job–machine bipartite graph, and a legal edge coloring is a
//! conflict-free schedule whose makespan is the number of colors. The
//! optimum is Δ (Vizing/König: bipartite graphs are Δ-edge-colorable); the
//! distributed algorithms trade schedule length for coordination rounds.
//!
//! Run with `cargo run --example job_shop [jobs] [machines] [tasks] [seed]`.

use deco_core::baselines::greedy::greedy_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random job–machine task graph: bipartite, no duplicate tasks.
fn task_graph(jobs: usize, machines: usize, tasks: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Graph::builder(jobs + machines);
    let mut added = 0;
    let mut attempts = 0;
    while added < tasks && attempts < 50 * tasks {
        attempts += 1;
        let j = rng.gen_range(0..jobs);
        let m = jobs + rng.gen_range(0..machines);
        if b.add_edge_dedup(j, m).expect("vertices in range") {
            added += 1;
        }
    }
    generators::shuffle_idents(&b.build().expect("deduplicated"), seed ^ 0xbeef)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let machines: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let tasks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_400);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let g = task_graph(jobs, machines, tasks, seed);
    let delta = g.max_degree();
    println!("job shop: {jobs} jobs × {machines} machines, {} tasks, max load Δ = {delta}", g.m());
    println!("lower bound on makespan: Δ = {delta} slots\n");

    println!("{:<28} {:>9} {:>10} {:>14}", "scheduler", "makespan", "rounds", "max msg bits");
    let greedy = greedy_edge_color(&g);
    assert!(greedy.is_proper(&g));
    println!("{:<28} {:>9} {:>10} {:>14}", "centralized greedy", greedy.palette_size(), "-", "-");

    let (pr, pr_stats) = pr_edge_color(&g);
    assert!(pr.is_proper(&g));
    println!(
        "{:<28} {:>9} {:>10} {:>14}",
        "Panconesi–Rizzi (2Δ-1)",
        pr.palette_size(),
        pr_stats.rounds,
        pr_stats.max_message_bits
    );

    for b in [1u64, 2] {
        let params = edge_log_depth(b);
        let run = edge_color(&g, params, MessageMode::Long).expect("valid preset");
        assert!(run.coloring.is_proper(&g), "schedule must be conflict-free");
        println!(
            "{:<28} {:>9} {:>10} {:>14}",
            format!("ours (b={b}, {} levels)", run.levels.len()),
            run.coloring.palette_size(),
            run.stats.rounds,
            run.stats.max_message_bits
        );
    }

    println!(
        "\nEvery schedule is verified conflict-free: no job or machine is double-booked\n\
         in any slot. The paper's algorithm pays a constant-factor longer makespan\n\
         for exponentially fewer coordination rounds at large Δ."
    );
}
