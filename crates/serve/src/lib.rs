//! `deco-serve` — multi-tenant streaming recoloring as a service.
//!
//! One process, thousands of independent recoloring instances: each
//! **tenant** registers with its own topology, paper parameters, engine
//! representation and [`RecolorConfig`](deco_stream::RecolorConfig), then
//! streams trace operations in; a sharded worker pool applies them as
//! batched commits through the object-safe
//! [`RegionRecolor`](deco_stream::RegionRecolor) facade, and every commit
//! publishes an epoch-stamped immutable snapshot readers grab lock-free.
//! This is the serving shape the streaming layer was built toward — the
//! paper's machinery as a long-lived, always-legal coloring service for a
//! fleet of mutating graphs (TDMA cells, job-shop floors), not a
//! one-graph CLI.
//!
//! ```
//! use deco_graph::trace::TraceOp;
//! use deco_serve::{Serve, ServeConfig, TenantSpec};
//!
//! let serve = Serve::start(ServeConfig::default().with_shards(2));
//! let a = serve.register(TenantSpec::new("cell-a", 4)).unwrap();
//! serve.submit(a, TraceOp::Insert(0, 1)).unwrap();
//! serve.submit(a, TraceOp::Insert(1, 2)).unwrap();
//! serve.commit(a).unwrap();
//! serve.drain();
//! let snap = serve.snapshot(a).unwrap(); // lock-free epoch-stamped read
//! assert_eq!((snap.epoch, snap.m), (1, 2));
//! assert!(snap.coloring.is_proper(&snap.graph));
//! serve.shutdown();
//! ```
//!
//! # Determinism
//!
//! Per-tenant commit order is total — one worker drains a tenant at a
//! time (the `scheduled` claim flag), the inbox is FIFO, and each commit
//! is deterministic by the [`RegionRecolor`](deco_stream::RegionRecolor)
//! contract — so per-tenant [`CommitReport`](deco_stream::CommitReport)
//! transcripts, colorings and snapshots are **bit-identical at any shard
//! count**. The `serve_determinism` integration test and the `pr9_serve`
//! bench gate pin exactly that, fingerprint by fingerprint.
//!
//! # Module map
//!
//! * [`service`](Serve) — the worker pool, admission and flow control;
//! * [`tenant`](TenantSpec) — specs, snapshots, fingerprints;
//! * [`snapshot`] — the lock-free [`Swap`](snapshot::Swap) publication
//!   cell (the crate's only unsafe code, documented and stress-tested).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod service;
pub mod snapshot;
mod tenant;

pub use service::{Serve, ServeConfig, ServeError, TenantId};
pub use tenant::{reports_fingerprint, EngineKind, Fnv, TenantError, TenantSnapshot, TenantSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::trace::{churn_trace, TraceOp};
    use deco_stream::RecolorConfig;

    fn feed_trace(serve: &Serve, id: TenantId, trace: &deco_graph::trace::Trace) {
        for batch in trace.batches() {
            for &op in batch {
                serve.submit_blocking(id, op).unwrap();
            }
            serve.commit_blocking(id).unwrap();
        }
    }

    #[test]
    fn single_tenant_matches_direct_replay() {
        let trace = churn_trace(80, 4, 3, 5, 0x5e11);
        let serve = Serve::start(ServeConfig::default().with_shards(2));
        let id = serve.register(TenantSpec::new("solo", trace.n0)).unwrap();
        feed_trace(&serve, id, &trace);
        serve.drain();
        let reports = serve.reports(id).unwrap();
        let snap = serve.snapshot(id).unwrap();
        serve.shutdown();

        let direct = deco_stream::replay_trace(
            &trace,
            deco_core::edge::legal::edge_log_depth(1),
            deco_core::edge::legal::MessageMode::Long,
            25,
        )
        .unwrap();
        assert_eq!(reports, direct.reports);
        assert_eq!(snap.coloring, direct.recolorer.coloring());
        assert_eq!(snap.epoch as usize, direct.reports.len());
        assert!(snap.coloring.is_proper(&snap.graph));
    }

    #[test]
    fn backpressure_rejects_then_blocking_succeeds() {
        let serve = Serve::start(ServeConfig::default().with_shards(1).with_queue_depth(1));
        let id = serve.register(TenantSpec::new("tight", 8)).unwrap();
        // Keep pushing non-blocking until the 1-slot inbox rejects; the
        // worker drains concurrently so a rejection may take a few tries,
        // but with a steady stream one must eventually bounce.
        let mut saw_backpressure = false;
        for i in 0..10_000 {
            match serve.submit(id, TraceOp::Insert(i % 8, (i + 1) % 8)) {
                Ok(()) => {}
                Err(ServeError::Backpressure(t)) => {
                    assert_eq!(t, id);
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(saw_backpressure, "a 1-deep inbox must bounce a tight loop");
        // The blocking path always lands.
        serve.submit_blocking(id, TraceOp::Insert(0, 1)).unwrap();
        serve.drain();
    }

    #[test]
    fn cost_quota_rejects_hot_tenants() {
        let serve = Serve::start(ServeConfig::default().with_shards(1).with_cost_quota(1));
        let id = serve.register(TenantSpec::new("hot", 30)).unwrap();
        for v in 1..10 {
            serve.submit_blocking(id, TraceOp::Insert(0, v)).unwrap();
        }
        serve.commit_blocking(id).unwrap();
        serve.drain();
        assert!(serve.cost(id).unwrap() >= 1, "a real commit must cost node-rounds");
        let err = serve.submit(id, TraceOp::Insert(0, 10)).unwrap_err();
        assert_eq!(err, ServeError::QuotaExhausted(id));
        // The transcript survives; the tenant just stops admitting.
        assert_eq!(serve.reports(id).unwrap().len(), 1);
    }

    #[test]
    fn compact_cost_budget_schedules_from_scratch_commits() {
        use deco_stream::RepairStrategy;
        // A tiny budget forces a compaction request after every commit:
        // each subsequent commit must run from scratch even though the
        // churn batches are small.
        let serve = Serve::start(ServeConfig::default().with_shards(1).with_compact_cost_budget(1));
        let trace = churn_trace(60, 4, 3, 3, 0xb06e7);
        let id = serve.register(TenantSpec::new("budgeted", trace.n0)).unwrap();
        feed_trace(&serve, id, &trace);
        serve.drain();
        let reports = serve.reports(id).unwrap();
        assert!(reports.len() >= 3);
        for rep in &reports[1..] {
            assert_eq!(
                rep.strategy,
                RepairStrategy::FromScratch,
                "commit {}: the budget must force compaction",
                rep.commit
            );
        }
        serve.shutdown();
    }

    #[test]
    fn commit_errors_keep_the_tenant_alive() {
        let serve = Serve::start(ServeConfig::default().with_shards(1));
        let id = serve.register(TenantSpec::new("oops", 8)).unwrap();
        serve.submit_blocking(id, TraceOp::Insert(0, 1)).unwrap();
        serve.commit_blocking(id).unwrap();
        // A duplicate insert makes the *commit* fail; the engine discards
        // the batch and keeps serving.
        serve.submit_blocking(id, TraceOp::Insert(1, 2)).unwrap();
        serve.submit_blocking(id, TraceOp::Insert(1, 2)).unwrap();
        serve.commit_blocking(id).unwrap();
        serve.submit_blocking(id, TraceOp::Insert(2, 3)).unwrap();
        serve.commit_blocking(id).unwrap();
        serve.drain();
        let errors = serve.errors(id).unwrap();
        assert_eq!(errors.len(), 1, "exactly the duplicate-insert commit fails: {errors:?}");
        let reports = serve.reports(id).unwrap();
        assert_eq!(reports.len(), 2, "the surviving commits both land");
        let snap = serve.snapshot(id).unwrap();
        assert_eq!(snap.m, 2);
        assert!(snap.coloring.is_proper(&snap.graph));
    }

    #[test]
    fn queue_errors_quarantine_the_tenant() {
        let serve = Serve::start(ServeConfig::default().with_shards(1));
        let id = serve.register(TenantSpec::new("poisoned", 4)).unwrap();
        serve.submit_blocking(id, TraceOp::Insert(0, 99)).unwrap(); // out of range: queue error
        serve.submit_blocking(id, TraceOp::Insert(0, 1)).unwrap(); // discarded
        serve.commit_blocking(id).unwrap(); // discarded
        serve.drain();
        assert_eq!(serve.errors(id).unwrap().len(), 1);
        assert!(serve.reports(id).unwrap().is_empty(), "no commit ran after the poison");
        let err = serve.submit(id, TraceOp::Insert(0, 1)).unwrap_err();
        assert_eq!(err, ServeError::Quarantined(id));
        // Other tenants are untouched.
        let ok = serve.register(TenantSpec::new("fine", 4)).unwrap();
        serve.submit_blocking(ok, TraceOp::Insert(0, 1)).unwrap();
        serve.commit_blocking(ok).unwrap();
        serve.drain();
        assert_eq!(serve.reports(ok).unwrap().len(), 1);
    }

    #[test]
    fn heterogeneous_tenants_run_side_by_side() {
        let serve = Serve::start(ServeConfig::default().with_shards(3));
        let traces: Vec<_> =
            (0..6u64).map(|i| churn_trace(40 + 10 * i as usize, 4, 2, 4, 0xfeed ^ i)).collect();
        let ids: Vec<_> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let spec = TenantSpec::new(format!("t{i}"), t.n0)
                    .with_engine(if i % 2 == 0 {
                        EngineKind::Legacy
                    } else {
                        EngineKind::Segmented
                    })
                    .with_config(RecolorConfig::default().with_repair_threshold(if i % 3 == 0 {
                        10
                    } else {
                        25
                    }));
                serve.register(spec).unwrap()
            })
            .collect();
        for (&id, trace) in ids.iter().zip(&traces) {
            feed_trace(&serve, id, trace);
        }
        serve.drain();
        for (&id, trace) in ids.iter().zip(&traces) {
            let snap = serve.snapshot(id).unwrap();
            assert_eq!(snap.commits, trace.commit_count());
            assert!(snap.coloring.is_proper(&snap.graph), "tenant {id}");
            assert!(serve.errors(id).unwrap().is_empty(), "tenant {id}");
        }
        let fp = serve.fleet_fingerprint();
        assert_ne!(fp, Fnv::new().digest());
        serve.shutdown();
    }
}
