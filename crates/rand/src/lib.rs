//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (small) slice of the `rand 0.8` API that the
//! workspace actually uses, under the same crate name and module paths:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable PRNG (xoshiro256\*\*
//!   seeded via SplitMix64 rather than `rand`'s ChaCha12, so the *streams*
//!   differ from upstream `rand` — regression pins in `tests/` are pinned
//!   against this implementation);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open integer ranges, [`Rng::gen`] for
//!   `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! Everything here is pure, allocation-free, and bit-for-bit reproducible
//! across platforms: all the determinism guarantees the workspace's
//! generators advertise rest on this file, so treat any change to the
//! output streams as a breaking change that invalidates the regression
//! pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable uniformly from their whole domain (the shim's analogue
/// of sampling from `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` endpoints.
pub trait UniformInt: Copy + PartialOrd {
    /// Lossless widening to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrowing back; the value is always in range by construction.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Convenience sampling methods over an entropy source.
pub trait Rng: RngCore {
    /// A uniform value from the half-open `range`.
    ///
    /// Uses the widening-multiply bound mapping; the bias is at most
    /// `len / 2^64`, indistinguishable at the range sizes this workspace
    /// draws from.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "cannot sample from empty range");
        let span = hi - lo;
        let offset = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        T::from_u64(lo + offset)
    }

    /// One value drawn uniformly from `T`'s domain (use as `rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named RNGs (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256\*\* with
    /// SplitMix64 seed expansion.
    ///
    /// Not cryptographic, and deliberately so: it is fast, has a 2^256-1
    /// period, passes BigCrush, and — most importantly here — produces an
    /// identical stream on every platform for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle, deterministic for a fixed RNG state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        // Width-1 ranges are a fixed point.
        assert_eq!(rng.gen_range(5u64..6), 5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_and_gen_bool() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }
}
