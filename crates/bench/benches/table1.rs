//! **E1 — Table 1**: deterministic edge-coloring comparison at fixed `n`,
//! sweeping Δ.
//!
//! Paper's claim (Table 1): previous deterministic algorithms pay either
//! `O(Δ) + log* n` rounds for `2Δ-1` colors (Panconesi–Rizzi \[24\]) or an
//! inherent multiplicative `log n` (the forest-decomposition route of \[5\]);
//! the new algorithm pays `O(Δ^ε) + log* n` for `O(Δ)` colors, or
//! `O(log Δ) + log* n` for `O(Δ^{1+ε})` colors. At fixed `n` the measured
//! shape should be: PR rounds grow linearly in Δ, the new algorithm's
//! rounds stay near-flat (recursion depth grows like `log Δ`), and the
//! crossover appears at moderate Δ.

use deco_bench::{banner, ratio, scale, Scale, Table};
use deco_core::baselines::forest_decomposition::forest_decomposition_edge_coloring;
use deco_core::baselines::misra_gries::misra_gries_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_graph::generators;

fn main() {
    banner("E1 / Table 1", "deterministic edge coloring: rounds & colors vs Δ at fixed n");
    let (n, deltas, fd_cap): (usize, Vec<usize>, usize) = match scale() {
        Scale::Quick => (1024, vec![8, 16, 32, 64, 96], 24),
        Scale::Full => (2048, vec![8, 16, 32, 64, 96, 128, 160], 32),
    };
    println!("workload: random bounded-degree graphs, n = {n}\n");
    let table = Table::new(
        &["Δ", "algorithm", "colors", "rounds", "levels", "maxmsg(b)", "col/Vizing"],
        &[4, 34, 7, 7, 7, 10, 10],
    );

    for &delta in &deltas {
        let g = generators::random_bounded_degree(n, delta, 0xE1);
        let delta_real = g.max_degree();
        // Vizing-quality reference: Misra–Gries uses at most Δ+1 colors.
        let greedy = misra_gries_edge_color(&g).palette_size();

        let (pr, pr_stats) = pr_edge_color(&g);
        assert!(pr.is_proper(&g));
        table.row(&[
            delta_real.to_string(),
            "Panconesi–Rizzi (2Δ-1) [24]".into(),
            pr.palette_size().to_string(),
            pr_stats.rounds.to_string(),
            "-".into(),
            pr_stats.max_message_bits.to_string(),
            ratio(pr.palette_size(), greedy),
        ]);

        if delta <= fd_cap {
            let (fd, fd_stats, _) = forest_decomposition_edge_coloring(&g);
            assert!(fd.is_proper(&g));
            table.row(&[
                delta_real.to_string(),
                "forest decomposition [5]-style".into(),
                fd.palette_size().to_string(),
                fd_stats.rounds.to_string(),
                "-".into(),
                fd_stats.max_message_bits.to_string(),
                ratio(fd.palette_size(), greedy),
            ]);
        }

        for b in [1u64, 2] {
            let params = edge_log_depth(b);
            let run = edge_color(&g, params, MessageMode::Long).expect("valid preset");
            assert!(run.coloring.is_proper(&g));
            table.row(&[
                delta_real.to_string(),
                format!("ours (b={b}, p={}, λ={})", params.p, params.lambda),
                run.coloring.palette_size().to_string(),
                run.stats.rounds.to_string(),
                run.levels.len().to_string(),
                run.stats.max_message_bits.to_string(),
                ratio(run.coloring.palette_size(), greedy),
            ]);
        }
        table.rule();
    }
    println!(
        "shape check: PR rounds grow ~6Δ; ours grow with the recursion depth\n\
         (log Δ) only — the crossover sits where 6Δ exceeds levels·(b·p)² + 6λ."
    );
}
