//! The forest-decomposition baseline (Barenboim–Elkin \[5\], simplified).
//!
//! The paper's Table 1 contrasts its new `O(log Δ) + log* n` edge coloring
//! against the previous best deterministic approach, which goes through
//! Nash-Williams forest decompositions and therefore pays an inherent
//! multiplicative `Ω(log n)` (by the lower bound of \[3\]). This module
//! reimplements that approach in its simplest form:
//!
//! 1. **H-partition** (BE08): repeatedly peel all vertices whose remaining
//!    degree is at most `(2+ε)·a` (`a` ≥ the arboricity; we use the
//!    degeneracy, computed centrally — the paper's model assumes `a` is
//!    known). Each peel is one round; `O(log n)` rounds total.
//! 2. **Orient** every edge toward the later layer (ties toward the larger
//!    identifier): acyclic, out-degree at most `(2+ε)·a`.
//! 3. **Oriented Linial**: an `O(a²)`-coloring in `O(log* n)` further
//!    rounds, every vertex avoiding only its out-neighbors.
//!
//! The full machinery of \[5\] (arbdefective colorings) reaches `O(a^{1+ε})`
//! colors; this simplified baseline stops at `O(a²)`, which preserves the
//! *shape* Table 1 cares about — rounds that grow with `log n` at fixed Δ —
//! while staying a faithful member of the same algorithm family.

use crate::code_reduction::run_oriented_code_reduction;
use crate::math::linial_schedule;
use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::coloring::{EdgeColoring, VertexColoring};
use deco_graph::line_graph::line_graph;
use deco_graph::properties::degeneracy;
use deco_graph::{Graph, Vertex};
use deco_local::line_sim::lemma_5_2_host_stats;
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

/// Result of the forest-decomposition baseline.
#[derive(Debug, Clone)]
pub struct ForestDecompositionRun {
    /// The legal vertex coloring produced.
    pub coloring: VertexColoring,
    /// Palette bound (`O(a²)`).
    pub palette: u64,
    /// Number of H-partition layers (`O(log n)`).
    pub layers: u64,
    /// The degree threshold used for peeling.
    pub threshold: u64,
    /// Total statistics; `rounds ≈ layers + O(log* n)`.
    pub stats: RunStats,
}

#[derive(Debug)]
struct Peel {
    threshold: usize,
    active_neighbors: usize,
    layer: u64,
}

impl Protocol for Peel {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        self.active_neighbors = ctx.degree();
        Vec::new()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        self.active_neighbors -= inbox.len();
        if self.active_neighbors <= self.threshold {
            self.layer = ctx.round as u64;
            Action::Halt(ctx.broadcast(FieldMsg::new(&[(1, 2)])))
        } else {
            Action::idle()
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.layer
    }
}

/// The H-partition: peels at threshold `threshold`, returning per-vertex
/// layers (1-based) and stats. The number of distinct layers is `O(log n)`
/// whenever `threshold >= (2+ε)·arboricity`.
pub fn h_partition(net: &Network<'_>, threshold: u64) -> (Vec<u64>, RunStats) {
    let mut pl = Pipeline::new(net);
    let layers = pl.run("h-partition", |_| Peel {
        threshold: threshold as usize,
        active_neighbors: 0,
        layer: 0,
    });
    (layers, pl.into_stats())
}

/// Runs the baseline on `g`. Uses `a = degeneracy(g)` (an upper bound on
/// arboricity within a factor 2) and peeling threshold `⌈2.5·a⌉`, which
/// guarantees at least a 1/5 fraction of remaining vertices leaves per
/// round.
pub fn forest_decomposition_coloring(g: &Graph) -> ForestDecompositionRun {
    let net = Network::new(g);
    let a = degeneracy(g).max(1) as u64;
    let threshold = (5 * a).div_ceil(2);
    let (layers, peel_stats) = h_partition(&net, threshold);
    let max_layer = layers.iter().copied().max().unwrap_or(1);

    // Orient toward later layers: rank = max_layer - layer, so smaller rank
    // = later layer, matching "toward smaller (rank, ident)".
    let ranks: Vec<u64> = layers.iter().map(|&l| max_layer - l).collect();
    let steps = linial_schedule(g.n().max(1) as u64, threshold);
    let palette = steps.last().map(|s| s.to_palette).unwrap_or(g.n().max(1) as u64);
    let init: Vec<u64> = (0..g.n()).map(|v| g.ident(v) - 1).collect();
    let (colors, color_stats) =
        run_oriented_code_reduction(&net, &ranks, max_layer + 1, &init, steps);

    ForestDecompositionRun {
        coloring: VertexColoring::new(colors),
        palette,
        layers: max_layer,
        threshold,
        stats: peel_stats + color_stats,
    }
}

/// The edge-coloring form of the baseline: run on the line graph and map
/// the cost back through Lemma 5.2. This is the Table 1 "\[5\]" row: its
/// round count is dominated by the `O(log n)` peeling, for any Δ.
pub fn forest_decomposition_edge_coloring(g: &Graph) -> (EdgeColoring, RunStats, u64) {
    let l = line_graph(g);
    let run = forest_decomposition_coloring(&l);
    let host = lemma_5_2_host_stats(g, run.stats);
    (EdgeColoring::new(run.coloring.into_colors()), host, run.palette)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn peeling_layers_logarithmic() {
        let g = generators::random_bounded_degree(500, 8, 3);
        let run = forest_decomposition_coloring(&g);
        assert!(run.coloring.is_proper(&g));
        assert!(run.layers as usize <= 64, "layers {} not logarithmic", run.layers);
        assert!(run.coloring.color_bound() <= run.palette);
    }

    #[test]
    fn trees_peel_fast_and_get_few_colors() {
        let g = generators::random_tree(300, 7);
        let run = forest_decomposition_coloring(&g);
        assert!(run.coloring.is_proper(&g));
        // a = 1, threshold 3: O(threshold²) colors regardless of Δ.
        assert!(run.palette <= 64);
    }

    #[test]
    fn rounds_grow_with_n_at_fixed_delta() {
        // The Table 1 contrast: fixed Δ, growing n => more peel layers.
        let small = forest_decomposition_coloring(&generators::random_bounded_degree(64, 6, 11));
        let large = forest_decomposition_coloring(&generators::random_bounded_degree(4096, 6, 11));
        assert!(
            large.stats.rounds > small.stats.rounds,
            "expected log n growth: {} vs {}",
            small.stats.rounds,
            large.stats.rounds
        );
    }

    #[test]
    fn edge_variant_proper() {
        let g = generators::random_bounded_degree(80, 7, 19);
        let (coloring, stats, _) = forest_decomposition_edge_coloring(&g);
        assert!(coloring.is_proper(&g));
        assert!(stats.rounds > 0);
    }

    #[test]
    fn clique_single_layer() {
        let g = generators::complete(10);
        let run = forest_decomposition_coloring(&g);
        assert!(run.coloring.is_proper(&g));
        assert_eq!(run.layers, 1, "threshold >= 2.5·(n-1)/... peels a clique at once");
    }
}
