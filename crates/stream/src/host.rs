//! The **region host** seam: what a repair pass needs from a graph store.
//!
//! The incremental repair machinery (the Theorem 5.5 schedule pipeline on
//! the edge-induced region, the class-per-round finalize, the
//! self-stabilizing fault-era loop) never looks at the host graph as a
//! whole — it extracts a region sub-network, reads the colors of the
//! region's line-graph boundary, and scatters results back through an
//! edge map. [`RegionHost`] captures exactly that contract, so the same
//! repair code runs over both committed representations:
//!
//! * [`Graph`] — the contiguous CSR snapshot with lexicographic edge
//!   indices (the legacy engine and the differential oracle);
//! * [`SegmentedGraph`] — the segmented layout with stable edge ids and
//!   O(region) commits.
//!
//! Edge indices handed to the trait are *host edge handles*: lexicographic
//! indices for [`Graph`], stable ids for [`SegmentedGraph`]. Color stores
//! are indexed by handle and sized [`RegionHost::edge_bound`].
//!
//! # Priority isomorphism
//!
//! The fault-era protocol breaks symmetry with a total order on region
//! edges ([`RegionHost::robust_prio`]). The legacy engine uses the host's
//! lexicographic edge index. Stable ids are *not* pair-ordered, so the
//! segmented host uses the region rank instead — the index of the edge in
//! the pair-sorted region, which is **order-isomorphic** to the host
//! lexicographic order among region edges. Comparisons, and therefore
//! every protocol decision and final color, are bit-identical across
//! hosts; only the message *bit-width* accounting of the priority fields
//! can differ.

use crate::config::RecolorConfig;
use crate::recolor::{full_recolor, UNCOLORED};
use deco_core::edge::legal::MessageMode;
use deco_core::params::LegalParams;
use deco_graph::coloring::Color;
use deco_graph::{EdgeIdx, Graph, SegmentedGraph, Vertex};
use deco_local::RunStats;

/// A graph store the repair machinery can run over. See the module docs;
/// implemented for [`Graph`] and [`SegmentedGraph`].
pub trait RegionHost {
    /// Live edge count.
    fn live_m(&self) -> usize;

    /// Exclusive upper bound on host edge handles: size handle-indexed
    /// stores (colors, dirty flags) to this. Equals [`RegionHost::live_m`]
    /// for [`Graph`]; for [`SegmentedGraph`] it also covers freed ids.
    fn edge_bound(&self) -> usize;

    /// Maximum degree Δ of the host graph.
    fn host_max_degree(&self) -> usize;

    /// Extracts the sub-network induced by exactly the given host edges:
    /// `(subgraph, vertex_map, edge_map)` with `edge_map[sub_e]` the host
    /// handle of subgraph edge `sub_e`. Both implementations order kept
    /// edges by endpoint pair, so the subgraph is byte-identical across
    /// hosts for the same edge set.
    fn region_subgraph(&self, keep_edges: &[EdgeIdx]) -> (Graph, Vec<Vertex>, Vec<EdgeIdx>);

    /// Calls `f(neighbor, edge_handle)` for every edge incident to `v`, in
    /// increasing neighbor order.
    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Vertex, EdgeIdx));

    /// The symmetry-breaking priority of a region edge in the fault-era
    /// protocol, given its host handle and its rank in the pair-sorted
    /// region. Must induce the same total order on any region as the
    /// host's lexicographic edge order (module docs).
    fn robust_prio(&self, host_e: EdgeIdx, region_rank: usize) -> u64;

    /// Runs the fault-free from-scratch pipeline on the whole host graph
    /// and replaces `colors` (handle-indexed, resized to
    /// [`RegionHost::edge_bound`]) with the result. The shared reset path
    /// of threshold fallbacks, compactions and exhausted fault-era
    /// retries. The pipeline's phase spans and round samples are emitted
    /// into the config's probe; the config also supplies the early-halt
    /// flag and any pinned threads/delivery (its transport is ignored —
    /// the reset path models a centralized rebuild).
    fn full_recolor_into(
        &self,
        colors: &mut Vec<Color>,
        params: LegalParams,
        mode: MessageMode,
        cfg: &RecolorConfig,
    ) -> RunStats;
}

impl RegionHost for Graph {
    fn live_m(&self) -> usize {
        self.m()
    }

    fn edge_bound(&self) -> usize {
        self.m()
    }

    fn host_max_degree(&self) -> usize {
        self.max_degree()
    }

    fn region_subgraph(&self, keep_edges: &[EdgeIdx]) -> (Graph, Vec<Vertex>, Vec<EdgeIdx>) {
        self.edge_induced(keep_edges)
    }

    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Vertex, EdgeIdx)) {
        for (nbr, e) in self.incident(v) {
            f(nbr, e);
        }
    }

    fn robust_prio(&self, host_e: EdgeIdx, _region_rank: usize) -> u64 {
        // Lexicographic edge indices are already a pair-ordered total
        // order — the legacy priority, kept bit-identical.
        host_e as u64
    }

    fn full_recolor_into(
        &self,
        colors: &mut Vec<Color>,
        params: LegalParams,
        mode: MessageMode,
        cfg: &RecolorConfig,
    ) -> RunStats {
        let (new_colors, stats) = full_recolor(self, params, mode, cfg);
        *colors = new_colors;
        stats
    }
}

impl RegionHost for SegmentedGraph {
    fn live_m(&self) -> usize {
        self.m()
    }

    fn edge_bound(&self) -> usize {
        self.edge_bound()
    }

    fn host_max_degree(&self) -> usize {
        self.max_degree()
    }

    fn region_subgraph(&self, keep_edges: &[EdgeIdx]) -> (Graph, Vec<Vertex>, Vec<EdgeIdx>) {
        self.edge_induced(keep_edges)
    }

    fn for_each_incident(&self, v: Vertex, f: &mut dyn FnMut(Vertex, EdgeIdx)) {
        for (nbr, e) in self.incident(v) {
            f(nbr, e);
        }
    }

    fn robust_prio(&self, _host_e: EdgeIdx, region_rank: usize) -> u64 {
        // Stable ids are not pair-ordered; the region rank is, and is
        // order-isomorphic to the host lexicographic order among region
        // edges (module docs) — decisions match the legacy engine bit for
        // bit.
        region_rank as u64
    }

    fn full_recolor_into(
        &self,
        colors: &mut Vec<Color>,
        params: LegalParams,
        mode: MessageMode,
        cfg: &RecolorConfig,
    ) -> RunStats {
        // Color on the materialized lexicographic snapshot, then scatter
        // back to stable ids; freed ids stay uncolored holes.
        let (g, idmap) = self.to_graph();
        let (new_colors, stats) = full_recolor(&g, params, mode, cfg);
        colors.clear();
        colors.resize(self.edge_bound(), UNCOLORED);
        for (lex, &id) in idmap.iter().enumerate() {
            colors[id as usize] = new_colors[lex];
        }
        stats
    }
}
