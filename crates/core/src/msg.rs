//! Compact message encoding shared by the coloring protocols.

use deco_local::{bits_for_range, spill, Message};
use std::sync::Arc;

/// Fields of up to `INLINE_FIELDS` values live inline (no heap); longer
/// payloads (e.g. the Panconesi–Rizzi used-color lists and the long-mode
/// ψ-count vectors) spill to the pooled arena ([`deco_local::spill`]).
/// Three is the largest count any fixed-layout protocol message uses, and
/// it keeps the struct at 40 bytes — the delivery arenas hold two
/// `Option<FieldMsg>` slots per directed edge, so every byte here is paid
/// `4m` times per network, and the spill arena decouples the slot size
/// from the largest message variant.
const INLINE_FIELDS: usize = 3;

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        vals: [u64; INLINE_FIELDS],
    },
    /// Span `[0, len)` of a pooled spill chunk. Constructing one takes a
    /// recycled chunk (no allocation when the arena is warm), cloning bumps
    /// a refcount, and the last owner's drop returns the chunk to the pool.
    Spill {
        chunk: Arc<[u64]>,
        len: u32,
    },
}

impl std::fmt::Debug for Repr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Repr::Inline { len, vals } => {
                f.debug_tuple("Inline").field(&&vals[..*len as usize]).finish()
            }
            Repr::Spill { chunk, len } => {
                f.debug_tuple("Spill").field(&&chunk[..*len as usize]).finish()
            }
        }
    }
}

/// A message consisting of a few bounded integer fields.
///
/// Each field is accounted at the bit width of its *domain* (not its value),
/// which is how the paper measures message size: a color from a palette of
/// `m` colors costs `⌈log₂ m⌉` bits regardless of its value.
///
/// Nearly every protocol message in this workspace has at most three
/// fields, which are stored inline; longer payloads borrow a pooled chunk
/// from the spill arena. Either way, constructing and cloning a message in
/// the steady state allocates nothing, keeping the simulators' per-message
/// cost flat on the hot paths (millions of messages per run).
#[derive(Debug, Clone)]
pub struct FieldMsg {
    repr: Repr,
    /// Bit size of the wire encoding (`u32`: sizes are `O(Δ log n)`).
    bits: u32,
}

impl Drop for FieldMsg {
    fn drop(&mut self) {
        if let Repr::Spill { chunk, .. } = &mut self.repr {
            spill::recycle(chunk);
        }
    }
}

impl FieldMsg {
    /// Builds a message from `(value, domain_size)` pairs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a value lies outside its declared domain.
    pub fn new(fields: &[(u64, u64)]) -> FieldMsg {
        let mut bits = 0;
        for &(value, domain) in fields {
            debug_assert!(value < domain.max(1), "field value {value} outside domain {domain}");
            bits += bits_for_range(domain);
        }
        let repr = if fields.len() <= INLINE_FIELDS {
            let mut vals = [0u64; INLINE_FIELDS];
            for (slot, &(value, _)) in vals.iter_mut().zip(fields) {
                *slot = value;
            }
            Repr::Inline { len: fields.len() as u8, vals }
        } else {
            let chunk = spill::with_payload(fields.len(), |dst| {
                for (slot, &(value, _)) in dst.iter_mut().zip(fields) {
                    *slot = value;
                }
            });
            Repr::Spill { chunk, len: fields.len() as u32 }
        };
        FieldMsg { repr, bits: bits.max(1) as u32 }
    }

    /// Builds a message with an explicit bit size, for payloads whose wire
    /// encoding is not a sequence of bounded integers (e.g. a used-color
    /// bitmap of `palette` bits carrying the listed values).
    pub fn with_bits(fields: &[u64], bits: usize) -> FieldMsg {
        let repr = if fields.len() <= INLINE_FIELDS {
            let mut vals = [0u64; INLINE_FIELDS];
            vals[..fields.len()].copy_from_slice(fields);
            Repr::Inline { len: fields.len() as u8, vals }
        } else {
            Repr::Spill { chunk: spill::take(fields), len: fields.len() as u32 }
        };
        FieldMsg { repr, bits: bits.max(1) as u32 }
    }

    /// The `i`-th field value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> u64 {
        self.fields()[i]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields().len()
    }

    /// Whether the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields().is_empty()
    }

    /// All field values.
    pub fn fields(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Spill { chunk, len } => &chunk[..*len as usize],
        }
    }

    /// Whether the payload lives in the spill arena (more fields than the
    /// inline buffer holds) — observability for the zero-allocation tests.
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, Repr::Spill { .. })
    }
}

impl PartialEq for FieldMsg {
    fn eq(&self, other: &FieldMsg) -> bool {
        self.bits == other.bits && self.fields() == other.fields()
    }
}

impl Eq for FieldMsg {}

impl Message for FieldMsg {
    fn size_bits(&self) -> usize {
        self.bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accounting_uses_domains() {
        let m = FieldMsg::new(&[(0, 1024), (3, 8)]);
        assert_eq!(m.size_bits(), 10 + 3);
        assert_eq!(m.field(0), 0);
        assert_eq!(m.fields(), &[0, 3]);
        assert!(!m.is_spilled());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let _ = FieldMsg::new(&[(9, 8)]);
    }

    #[test]
    fn minimum_one_bit() {
        assert_eq!(FieldMsg::new(&[]).size_bits(), 1);
    }

    #[test]
    fn long_payloads_spill_and_compare_by_value() {
        // 6 fields exceed the inline capacity; accessors and equality are
        // representation-agnostic.
        let long = FieldMsg::new(&[(1, 2), (2, 4), (3, 4), (0, 2), (1, 2), (1, 2)]);
        assert!(long.is_spilled());
        assert_eq!(long.len(), 6);
        assert_eq!(long.fields(), &[1, 2, 3, 0, 1, 1]);
        assert_eq!(long.size_bits(), 1 + 2 + 2 + 1 + 1 + 1);
        let same = FieldMsg::with_bits(&[1, 2, 3, 0, 1, 1], 8);
        assert_eq!(long, same);
        let inline = FieldMsg::with_bits(&[1, 2], 3);
        assert_eq!(inline, FieldMsg::new(&[(1, 2), (2, 4)]));
    }

    #[test]
    fn spilled_clones_share_storage_and_recycle() {
        // A warm construct → clone → drop cycle must not touch the
        // allocator: clones share the chunk, and the last drop returns it
        // to the pool for the next construction to reuse.
        let vals: Vec<u64> = (0..17).collect();
        let a = FieldMsg::with_bits(&vals, 64);
        let b = a.clone();
        assert_eq!(a, b);
        drop(a);
        assert_eq!(b.fields(), &vals[..]);
        drop(b); // last owner: chunk goes back to the pool
        let before = deco_local::spill::stats();
        let c = FieldMsg::with_bits(&vals, 64);
        assert_eq!(deco_local::spill::stats(), before, "warm spill must not allocate");
        assert_eq!(c.fields(), &vals[..]);
    }
}
