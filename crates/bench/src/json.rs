//! A tiny JSON writer for bench result files.
//!
//! The offline build has no serde; bench results are flat enough (strings,
//! numbers, booleans, arrays, objects) that a small escaping writer keeps
//! the emitted files valid and diffable. Keys keep insertion order so the
//! generated `BENCH_*.json` files diff cleanly between runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers (serialized without a fraction).
    Int(i64),
    /// Finite floats (non-finite values serialize as `null`).
    Float(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// Builds an array value by converting each item — the shape used for
/// per-round series (delivery choices, worker counts, message loads).
pub fn array<T: Into<Value>>(items: impl IntoIterator<Item = T>) -> Value {
    Value::Array(items.into_iter().map(Into::into).collect())
}

/// A compact run-length encoding of a per-round label series, e.g.
/// `["3xscan", "41xpush"]` for 3 scan rounds followed by 41 push rounds —
/// keeps BENCH_*.json readable for thousand-round traces.
pub fn run_length(labels: impl IntoIterator<Item = &'static str>) -> Value {
    let mut encoded: Vec<Value> = Vec::new();
    let mut current: Option<(&'static str, usize)> = None;
    for label in labels {
        match &mut current {
            Some((cur, count)) if *cur == label => *count += 1,
            _ => {
                if let Some((cur, count)) = current.take() {
                    encoded.push(Value::Str(format!("{count}x{cur}")));
                }
                current = Some((label, 1));
            }
        }
    }
    if let Some((cur, count)) = current {
        encoded.push(Value::Str(format!("{count}x{cur}")));
    }
    Value::Array(encoded)
}

/// Builder for an insertion-ordered JSON object.
#[derive(Debug, Clone, Default)]
pub struct Obj(Vec<(String, Value)>);

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Adds a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Obj {
        self.0.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `v` as pretty-printed JSON (2-space indent, trailing newline).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let v = Obj::new().field("z", 1usize).field("a", "two").build();
        let s = to_string(&v);
        assert!(s.find("\"z\"").unwrap() < s.find("\"a\"").unwrap());
    }

    #[test]
    fn escaping() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_round_shape() {
        let v = Obj::new()
            .field("xs", vec![Value::from(1usize), Value::from(2usize)])
            .field("nested", Obj::new().field("ok", true).build())
            .field("nan", f64::NAN)
            .build();
        let s = to_string(&v);
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])), "[]\n");
        assert_eq!(to_string(&Obj::new().build()), "{}\n");
    }

    #[test]
    fn array_converts_items() {
        let v = array([1usize, 2, 3]);
        assert_eq!(to_string(&v), "[\n  1,\n  2,\n  3\n]\n");
    }

    #[test]
    fn run_length_encodes_series() {
        let v = run_length(["scan", "scan", "push", "push", "push", "scan"]);
        let s = to_string(&v);
        assert!(s.contains("\"2xscan\""));
        assert!(s.contains("\"3xpush\""));
        assert!(s.contains("\"1xscan\""));
        assert_eq!(to_string(&run_length([])), "[]\n");
    }
}
