//! **PR5 — early-halting repair**: the Theorem 5.5 repair phase with early
//! node halting versus the worst-case `2 + 6W` schedule, measured in
//! isolation on the canonical churn scenario (n = 50k, Δ ≤ 8, 1% churn).
//!
//! PR 4 made the repair pipeline the floor of the incremental commit: most
//! of the commit is engine stepping on the region sub-network, because
//! `PrAssign` kept every region node live for the full `2 + 6W` rounds.
//! With early halting each node ends at its own last `(forest, CV)` step
//! and drops off the active worklist, so late rounds step only the
//! surviving frontier.
//!
//! For every churn commit the bench reconstructs the exact repair input the
//! engine sees (post-commit snapshot, carried colors, dirty region) and
//! times [`deco_stream::repair_phase`] — the phase `Recolorer::commit` runs
//! — under both halting modes, interleaved. Both are verified bit-identical
//! to the engine's own coloring before any timing; only round counters may
//! differ. The whole mixed commit is also timed both ways for the
//! end-to-end view.
//!
//! Acceptance: the repair phase is at least 1.5× faster with early halting
//! (median across churn commits) in **stepped node-rounds** — the
//! simulator's own deterministic cost model (`RunStats::node_rounds`, the
//! `Protocol::round` calls actually made). Wall-clock medians are measured
//! and reported alongside, but the acceptance rides on the counter: the
//! shared container's wall noise exceeds ±10% (ROADMAP), and the counter
//! is exactly what the gate can pin. Results land in `BENCH_pr5.json`
//! (override with `DECO_BENCH_OUT`; `DECO_BENCH_SCALE=full` deepens).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, scale, time_interleaved, Scale, Table};
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace_from, TraceOp};
use deco_graph::{EdgeIdx, Vertex};
use deco_stream::{queue_op, repair_phase, Recolorer, RepairStrategy};
use std::time::Duration;

/// In-band "dirty" marker for the reconstructed carry (ignored by
/// `repair_phase`, which overwrites dirty entries).
const UNCOLORED: u64 = u64::MAX;

struct Row {
    commit: usize,
    m: usize,
    dirty: usize,
    region_vertices: usize,
    repair_rounds: usize,
    repair_rounds_nohalt: usize,
    repair_node_rounds: usize,
    repair_node_rounds_nohalt: usize,
    repair_messages: usize,
    halt: Duration,
    nohalt: Duration,
    commit_halt: Duration,
    commit_nohalt: Duration,
}

impl Row {
    /// The acceptance metric: deterministic stepped-node-round reduction.
    fn node_round_speedup(&self) -> f64 {
        self.repair_node_rounds_nohalt as f64 / self.repair_node_rounds.max(1) as f64
    }

    /// Wall-clock ratio, informational (noisy on shared containers).
    fn wall_speedup(&self) -> f64 {
        self.nohalt.as_secs_f64() / self.halt.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Value {
        Obj::new()
            .field("commit", self.commit)
            .field("m", self.m)
            .field("dirty", self.dirty)
            .field("region_vertices", self.region_vertices)
            .field("repair_rounds", self.repair_rounds)
            .field("repair_rounds_nohalt", self.repair_rounds_nohalt)
            .field("repair_node_rounds", self.repair_node_rounds)
            .field("repair_node_rounds_nohalt", self.repair_node_rounds_nohalt)
            .field("repair_messages", self.repair_messages)
            .field("node_round_speedup", self.node_round_speedup())
            .field("repair_ms", self.halt.as_secs_f64() * 1e3)
            .field("repair_nohalt_ms", self.nohalt.as_secs_f64() * 1e3)
            .field("wall_speedup_repair", self.wall_speedup())
            .field("commit_ms", self.commit_halt.as_secs_f64() * 1e3)
            .field("commit_nohalt_ms", self.commit_nohalt.as_secs_f64() * 1e3)
            .build()
    }
}

/// Carried colors for the post-commit snapshot: the pre-commit color of
/// every surviving endpoint pair, [`UNCOLORED`] for fresh edges. Returns
/// the colors and the dirty (fresh) edge indices — exactly the repair
/// input `Recolorer::commit` derives from the delta (no renumbering and no
/// palette-bound shrink in this scenario, asserted by the caller).
fn carry(
    old: &deco_graph::Graph,
    old_colors: &[u64],
    new: &deco_graph::Graph,
) -> (Vec<u64>, Vec<EdgeIdx>) {
    let old_edges: Vec<(Vertex, Vertex)> = old.edges().collect();
    let mut colors = vec![UNCOLORED; new.m()];
    let mut dirty = Vec::new();
    let mut i = 0usize;
    for (e, (u, v)) in new.edges().enumerate() {
        while i < old_edges.len() && old_edges[i] < (u, v) {
            i += 1;
        }
        if i < old_edges.len() && old_edges[i] == (u, v) {
            colors[e] = old_colors[i];
            i += 1;
        } else {
            dirty.push(e);
        }
    }
    (colors, dirty)
}

fn main() {
    banner("PR5 / repair", "early-halting repair phase vs the 2+6W schedule");
    let full = scale() == Scale::Full;
    let params = edge_log_depth(1);
    let mode = MessageMode::Long;
    let samples = if full { 5 } else { 3 };

    let (n, cap, commits) = if full { (50_000, 8, 6) } else { (50_000, 8, 3) };
    println!("generating churn_trace(n={n}, Δ≤{cap}, {commits} churn commits @ 1%) ...");
    let base = deco_graph::generators::random_bounded_degree(n, cap, 0x9127);
    let churn = base.m() / 100;
    let trace = churn_trace_from(&base, cap, commits, churn, 0x9127);
    drop(base);

    let batches = trace.batches();
    let mut engine = Recolorer::new(trace.n0, params, mode).expect("preset params are valid");
    for &op in batches[0] {
        queue_op(&mut engine, op).expect("generated traces are valid");
    }
    let initial = engine.commit().expect("generated traces are valid");
    println!(
        "initial build: m = {}, Δ = {}, {} rounds, {} msgs",
        initial.m, initial.max_degree, initial.stats.rounds, initial.stats.messages
    );

    let spill_before = deco_local::spill::stats();
    let mut rows: Vec<Row> = Vec::new();
    for (c, batch) in batches.iter().enumerate().skip(1) {
        // Fix the post-commit snapshot and the engine's own repair answer.
        let pre_graph = engine.graph().clone();
        let pre_colors = engine.coloring().into_colors();
        let mut probe = engine.clone();
        for &op in *batch {
            queue_op(&mut probe, op).expect("valid trace");
        }
        let report = probe.commit().expect("valid trace");
        assert_eq!(report.strategy, RepairStrategy::Incremental, "1% churn repairs incrementally");
        let snapshot = probe.graph().clone();
        let engine_colors = probe.coloring().into_colors();

        // Reconstruct the repair input and verify both halting modes
        // reproduce the engine's coloring bit for bit.
        let (carried, dirty) = carry(&pre_graph, &pre_colors, &snapshot);
        assert_eq!(dirty.len(), report.dirty, "reconstructed region diverged from the engine");
        let run = |early: bool| {
            let mut colors = carried.clone();
            let stats = repair_phase(&snapshot, &dirty, &mut colors, params, mode, early);
            (colors, stats)
        };
        let (on_colors, on_stats) = run(true);
        let (off_colors, off_stats) = run(false);
        assert_eq!(on_colors, engine_colors, "halting-on repair diverged from the engine");
        assert_eq!(off_colors, engine_colors, "halting-off repair diverged from the engine");
        assert_eq!(on_stats.0.messages, off_stats.0.messages, "messages must not move");
        // Round counts may tie when some node's last step sits at the
        // schedule's worst case; the stepped-node-round reduction is the
        // invariant (and the acceptance metric).
        assert!(on_stats.0.rounds <= off_stats.0.rounds, "halting must not lengthen the repair");
        assert!(
            on_stats.0.node_rounds < off_stats.0.node_rounds,
            "halting must cut stepped node-rounds"
        );

        // Interleaved timing: the repair phase alone, then the whole mixed
        // commit (clone + queue + commit), both ways.
        let times = time_interleaved(samples, &mut [&mut || run(true).1, &mut || run(false).1]);
        let batch_ops: Vec<TraceOp> = batch.to_vec();
        let base_engine = &engine;
        let commit_with = |early: bool| {
            let mut r = base_engine.clone();
            r.set_config(base_engine.config().clone().with_early_halt(early));
            for &op in &batch_ops {
                queue_op(&mut r, op).expect("valid trace");
            }
            r.commit().expect("valid trace").stats.rounds
        };
        let commit_times =
            time_interleaved(samples, &mut [&mut || commit_with(true), &mut || commit_with(false)]);

        rows.push(Row {
            commit: c,
            m: report.m,
            dirty: report.dirty,
            region_vertices: report.region_vertices,
            repair_rounds: on_stats.0.rounds,
            repair_rounds_nohalt: off_stats.0.rounds,
            repair_node_rounds: on_stats.0.node_rounds,
            repair_node_rounds_nohalt: off_stats.0.node_rounds,
            repair_messages: on_stats.0.messages,
            halt: times[0],
            nohalt: times[1],
            commit_halt: commit_times[0],
            commit_nohalt: commit_times[1],
        });
        engine = probe;
    }
    let spill_after = deco_local::spill::stats();

    println!();
    let table = Table::new(
        &[
            "commit",
            "dirty",
            "node-rnds",
            "no-halt",
            "nr-speedup",
            "repair ms",
            "no-halt ms",
            "commit ms",
        ],
        &[6, 7, 10, 9, 10, 10, 11, 10],
    );
    for r in &rows {
        table.row(&[
            r.commit.to_string(),
            r.dirty.to_string(),
            r.repair_node_rounds.to_string(),
            r.repair_node_rounds_nohalt.to_string(),
            format!("{:.2}x", r.node_round_speedup()),
            millis(r.halt),
            millis(r.nohalt),
            millis(r.commit_halt),
        ]);
    }
    println!("\n(repair phase timed in isolation on the engine's exact inputs; both modes");
    println!(" verified bit-identical to the engine's coloring before timing)");

    let mut speedups: Vec<f64> = rows.iter().map(Row::node_round_speedup).collect();
    speedups.sort_by(f64::total_cmp);
    let median = speedups[speedups.len() / 2];
    let mut walls: Vec<f64> = rows.iter().map(Row::wall_speedup).collect();
    walls.sort_by(f64::total_cmp);
    let wall_median = walls[walls.len() / 2];
    let met = median >= 1.5;
    let json = Obj::new()
        .field("bench", "pr5_repair")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("churn_edges_per_commit", churn)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "repair-phase median >= 1.5x faster with early halting on the \
                     n=50k 1%-churn scenario, measured in stepped node-rounds (the \
                     deterministic engine cost model; wall medians reported \
                     alongside), colorings bit-identical either way",
                )
                .field("met", met)
                .field("median_node_round_speedup", median)
                .field("median_wall_speedup", wall_median)
                .build(),
        )
        .field(
            "initial_build",
            Obj::new()
                .field("m", initial.m)
                .field("rounds", initial.stats.rounds)
                .field("messages", initial.stats.messages)
                .build(),
        )
        .field(
            "environment",
            Obj::new()
                .field(
                    "spill_arena_bytes_allocated",
                    (spill_after.allocated_bytes - spill_before.allocated_bytes) as usize,
                )
                .build(),
        )
        .field("commits", Value::Array(rows.iter().map(Row::to_json).collect()))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr5.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    assert!(met, "acceptance failed: median node-round speedup {median:.2}x < 1.5x");
}
