//! Lemma 5.2: simulating line-graph algorithms on the host graph.
//!
//! Any `T`-round algorithm for the line graph `L(G)` can be simulated by the
//! network `G` in at most `2T + O(1)` rounds: the endpoint with the smaller
//! identifier of each edge simulates the corresponding line-graph vertex, and
//! a line-graph message between vertices whose simulators are at distance 2
//! in `G` is relayed through the shared endpoint.
//!
//! This module runs a [`Protocol`] directly on `L(G)` and reports two sets of
//! statistics: the *native* stats of the line-graph run, and the *host* stats
//! it translates to under the Lemma 5.2 simulation (rounds doubled plus the
//! constant setup round, message sizes multiplied by the worst-case relay
//! congestion of a host edge). The host numbers are upper bounds, which is
//! exactly how the paper uses the lemma.

use crate::network::{Network, Protocol, Run};
use crate::stats::RunStats;
use deco_graph::line_graph::line_graph;
use deco_graph::{Graph, Vertex};

/// The outcome of a simulated line-graph run.
#[derive(Debug, Clone)]
pub struct LineRun<T> {
    /// Per-edge outputs: entry `e` is the output of line-graph vertex `e`,
    /// i.e. of host edge `e`.
    pub outputs: Vec<T>,
    /// Stats of the run as executed natively on `L(G)`.
    pub native: RunStats,
    /// Stats translated to the host network per Lemma 5.2 (upper bound).
    pub host: RunStats,
}

/// Runs `make`'s protocol on the line graph of `g` and translates the cost
/// to the host graph per Lemma 5.2.
///
/// # Example
///
/// ```
/// use deco_graph::generators;
/// use deco_local::line_sim::run_on_line_graph;
/// use deco_local::{Action, NodeCtx, Protocol};
///
/// /// Each line-graph vertex (host edge) learns its degree in L(G).
/// struct LineDegree(usize);
/// impl Protocol for LineDegree {
///     type Msg = u64;
///     type Output = usize;
///     fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
///         self.0 = ctx.degree();
///         Vec::new()
///     }
///     fn round(&mut self, _: &NodeCtx<'_>, _: &[(usize, u64)]) -> Action<u64> {
///         Action::halt()
///     }
///     fn finish(self, _: &NodeCtx<'_>) -> usize {
///         self.0
///     }
/// }
///
/// let g = generators::path(4); // 3 edges in a path of L(G)
/// let run = run_on_line_graph(&g, |_| LineDegree(0));
/// assert_eq!(run.outputs, vec![1, 2, 1]);
/// assert_eq!(run.host.rounds, 2 * run.native.rounds + 1);
/// ```
pub fn run_on_line_graph<P, F>(g: &Graph, make: F) -> LineRun<P::Output>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    F: FnMut(&crate::NodeCtx<'_>) -> P,
{
    run_on_line_graph_with(g, |net| net, make)
}

/// [`run_on_line_graph`] with explicit simulator configuration: `configure`
/// receives the freshly built `L(G)` network and selects engine, delivery
/// mode and thread budget (e.g. `|net| net.with_engine(Engine::Naive)` or
/// `|net| net.with_threads(8)`). The run itself goes through the threaded
/// slot engine entry point, so the Lemma 5.2 simulation inherits the same
/// engine selection as every native pipeline — by the determinism contract
/// the outputs and both stat translations are identical across all choices.
pub fn run_on_line_graph_with<P, F, C>(g: &Graph, configure: C, make: F) -> LineRun<P::Output>
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    F: FnMut(&crate::NodeCtx<'_>) -> P,
    C: for<'l> FnOnce(Network<'l>) -> Network<'l>,
{
    let l = line_graph(g);
    let net = configure(Network::new(&l));
    let run: Run<P::Output> = net.run_profiled_threaded(make).0;
    let host = lemma_5_2_host_stats(g, run.stats);
    LineRun { outputs: run.outputs, native: run.stats, host }
}

/// Translates the statistics of a native `L(G)` run into host-network
/// statistics per Lemma 5.2: `2T + O(1)` rounds, twice the messages, and
/// message sizes multiplied by the worst-case relay congestion.
pub fn lemma_5_2_host_stats(g: &Graph, native: RunStats) -> RunStats {
    let congestion = relay_congestion(g).max(1);
    RunStats {
        rounds: 2 * native.rounds + 1,
        // Each native node-round is simulated by its owner across the two
        // host rounds of the Lemma 5.2 cadence.
        node_rounds: 2 * native.node_rounds,
        messages: 2 * native.messages,
        max_message_bits: native.max_message_bits * congestion,
        total_message_bits: 2 * native.total_message_bits,
        transport_dropped: 2 * native.transport_dropped,
        // Commit traffic is a host-side quantity; the simulation relays
        // messages, it does not commit topology.
        commit_bytes: native.commit_bytes,
    }
}

/// The worst-case number of line-graph message routes crossing a single host
/// edge in one simulated round (each line vertex messaging each line
/// neighbor). This bounds the message-size blowup of the simulation; it is
/// `O(Δ)`, matching the paper's remark that the naive simulation needs
/// `O(Δ log n)`-bit messages.
pub fn relay_congestion(g: &Graph) -> usize {
    let m = g.m();
    if m == 0 {
        return 0;
    }
    // owner(e) = endpoint with smaller ident (Lemma 5.2's convention).
    let owner: Vec<Vertex> = (0..m)
        .map(|e| {
            let (u, v) = g.endpoints(e);
            if g.ident(u) < g.ident(v) {
                u
            } else {
                v
            }
        })
        .collect();
    let mut load = vec![0usize; m]; // per host edge, both directions pooled
    let mut route = |a: Vertex, b: Vertex| {
        if a != b {
            // INVARIANT: routes are built from host adjacency, so every step is an existing edge.
            let e = g.edge_between(a, b).expect("route step must be a host edge");
            load[e] += 1;
        }
    };
    for w in 0..g.n() {
        let incident: Vec<usize> = g.incident(w).map(|(_, e)| e).collect();
        for &e in &incident {
            for &f in &incident {
                if e == f {
                    continue;
                }
                // Message from line vertex e to line vertex f, relayed
                // through the shared endpoint w when the owners are not
                // adjacent or identical.
                let (a, b) = (owner[e], owner[f]);
                if a == b {
                    continue;
                }
                if g.has_edge(a, b) {
                    route(a, b);
                } else {
                    route(a, w);
                    route(w, b);
                }
            }
        }
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Action, NodeCtx};
    use deco_graph::generators;

    struct CountNeighbors(usize);
    impl Protocol for CountNeighbors {
        type Msg = u64;
        type Output = usize;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(1)
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            self.0 = inbox.len();
            Action::halt()
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> usize {
            self.0
        }
    }

    #[test]
    fn star_line_graph_is_clique() {
        let g = generators::star(5);
        let run = run_on_line_graph(&g, |_| CountNeighbors(0));
        // L(K_{1,4}) = K_4: every line vertex has 3 neighbors.
        assert_eq!(run.outputs, vec![3, 3, 3, 3]);
        assert_eq!(run.host.rounds, 2 * run.native.rounds + 1);
        assert_eq!(run.host.messages, 2 * run.native.messages);
    }

    #[test]
    fn congestion_scales_with_degree() {
        // On a star all line vertices are simulated by leaves (center has
        // ident 1 < leaves? center ident is 1, so center owns everything:
        // all messages are local and congestion is 0).
        let star = generators::star(6);
        assert_eq!(relay_congestion(&star), 0);
        // Flip identifiers so the center has the largest ident: now every
        // leaf owns its edge and all messages relay through the center.
        let n = star.n();
        let mut ids: Vec<u64> = (1..=n as u64).collect();
        ids.rotate_left(1); // center gets ident n
        let star = star.with_idents(ids).unwrap();
        assert!(relay_congestion(&star) >= star.max_degree() - 1);
    }

    #[test]
    fn congestion_zero_for_empty() {
        assert_eq!(relay_congestion(&Graph::empty(3)), 0);
    }

    /// The Lemma 5.2 host-stat invariants must hold — and the whole LineRun
    /// must be bit-identical — under every engine/delivery/thread selection.
    #[test]
    fn host_stat_invariants_under_engine_selection() {
        use crate::network::{Delivery, Engine};
        let g = generators::random_bounded_degree(200, 8, 31);
        let reference = run_on_line_graph(&g, |_| CountNeighbors(0));
        // rounds: exactly 2T + 1; messages doubled; bits doubled; max bits
        // scaled by the (engine-independent) relay congestion.
        assert_eq!(reference.host.rounds, 2 * reference.native.rounds + 1);
        assert_eq!(reference.host.messages, 2 * reference.native.messages);
        assert_eq!(reference.host.total_message_bits, 2 * reference.native.total_message_bits);
        let congestion = relay_congestion(&g).max(1);
        assert_eq!(reference.host.max_message_bits, reference.native.max_message_bits * congestion);
        type Cfg = fn(Network<'_>) -> Network<'_>;
        let configs: [(&str, Cfg); 4] = [
            ("naive", |net| net.with_engine(Engine::Naive)),
            ("scan", |net| net.with_delivery(Delivery::Scan)),
            ("push", |net| net.with_delivery(Delivery::Push)),
            ("threaded", |net| net.with_threads(4)),
        ];
        for (name, cfg) in configs {
            let run = run_on_line_graph_with(&g, cfg, |_| CountNeighbors(0));
            assert_eq!(run.outputs, reference.outputs, "{name} outputs diverged");
            assert_eq!(run.native, reference.native, "{name} native stats diverged");
            assert_eq!(run.host, reference.host, "{name} host stats diverged");
        }
    }

    #[test]
    fn path_congestion_small() {
        let g = generators::path(6);
        assert!(relay_congestion(&g) <= 4);
    }
}
