//! Run statistics: the quantities the paper's tables report.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Accounting for one simulated run (or a sequential composition of runs).
///
/// * `rounds` — synchronous communication rounds, the paper's notion of
///   running time;
/// * `node_rounds` — stepped node-rounds: the sum over delivery rounds of
///   the nodes still live, i.e. how many `Protocol::round` calls the
///   simulator actually made (the start phase is not counted). This is the
///   simulator's own cost model — a protocol whose nodes halt early costs
///   proportionally fewer node-rounds even when the round *count* barely
///   moves;
/// * `messages` — total messages delivered;
/// * `max_message_bits` — the largest single message, the paper's message
///   size measure;
/// * `total_message_bits` — aggregate traffic;
/// * `transport_dropped` — messages destroyed by a faulty
///   [`Transport`](crate::Transport) (zero on the default in-process
///   transport). Dropped messages are counted as sent but not delivered,
///   so they appear here and *not* in `messages`;
/// * `commit_bytes` — bytes the commit machinery wrote into the committed
///   graph representation (zero for runs with no topology commit). Counted
///   identically by the segmented and full-rewrite commit paths, which is
///   what makes the O(region)-vs-O(m) comparison a deterministic counter
///   rather than a wall measurement.
///
/// Sequential phase composition adds stats with `+`: rounds add (phases are
/// separated by globally known round barriers), message maxima take the max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// Stepped node-rounds (live nodes summed over delivery rounds).
    pub node_rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Size in bits of the largest message delivered.
    pub max_message_bits: usize,
    /// Total bits delivered.
    pub total_message_bits: usize,
    /// Messages destroyed in flight by the transport (never delivered).
    pub transport_dropped: usize,
    /// Bytes written into the committed graph representation.
    pub commit_bytes: usize,
}

impl RunStats {
    /// Stats of a run that exchanged nothing.
    pub fn zero() -> RunStats {
        RunStats::default()
    }

    /// Records one delivered message of the given size.
    pub fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.max_message_bits = self.max_message_bits.max(bits);
        self.total_message_bits += bits;
    }
}

impl Add for RunStats {
    type Output = RunStats;

    fn add(self, rhs: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + rhs.rounds,
            node_rounds: self.node_rounds + rhs.node_rounds,
            messages: self.messages + rhs.messages,
            max_message_bits: self.max_message_bits.max(rhs.max_message_bits),
            total_message_bits: self.total_message_bits + rhs.total_message_bits,
            transport_dropped: self.transport_dropped + rhs.transport_dropped,
            commit_bytes: self.commit_bytes + rhs.commit_bytes,
        }
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds ({} node-rounds), {} msgs, max msg {} bits, total {} bits",
            self.rounds,
            self.node_rounds,
            self.messages,
            self.max_message_bits,
            self.total_message_bits
        )?;
        if self.transport_dropped > 0 {
            write!(f, ", {} dropped in transit", self.transport_dropped)?;
        }
        if self.commit_bytes > 0 {
            write!(f, ", {} commit bytes", self.commit_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_combines_phases() {
        let mut a = RunStats::zero();
        a.rounds = 3;
        a.record_message(8);
        a.record_message(16);
        let mut b = RunStats::zero();
        b.rounds = 2;
        b.record_message(12);
        let c = a + b;
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 3);
        assert_eq!(c.max_message_bits, 16);
        assert_eq!(c.total_message_bits, 36);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = RunStats {
            rounds: 1,
            node_rounds: 4,
            messages: 2,
            max_message_bits: 3,
            total_message_bits: 6,
            transport_dropped: 1,
            commit_bytes: 32,
        };
        let b = a;
        a += b;
        assert_eq!(a, b + b);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RunStats::zero().to_string().is_empty());
    }
}
