//! Segmented CSR: a mutable adjacency store with O(region) commit traffic.
//!
//! [`crate::MutableGraph`] commits by rewriting the whole CSR snapshot —
//! [`Graph::patched`] splices in linear passes, but every array (offsets,
//! adjacency, mirror table, edge list, origin map) is written end to end,
//! so a one-edge batch on an `m = 200k` graph still moves ~12MB. The wall
//! is memory bandwidth, not the repair pipeline.
//!
//! [`SegmentedGraph`] replaces the monolithic arrays with a **segmented
//! adjacency layout**:
//!
//! - **Per-vertex extents** ([`SegExtent`]): a stable indirection table
//!   mapping each vertex to its segment `start..start+len` (capacity
//!   `cap >= len`) in one shared arena. A commit rewrites only the
//!   segments of vertices incident to the batch; everything else is
//!   untouched memory. Segments that outgrow their capacity relocate to
//!   the arena tail with amortized-growth slack (`len + len/2 + 2`), so
//!   repeated growth on one vertex is amortized O(1) per slot.
//! - **Stable edge identifiers**: edges are addressed by an id that never
//!   moves (a slot in the [`SegmentedGraph::edge_bound`]-sized endpoint
//!   table), with deleted ids kept on a LIFO free list and reused
//!   deterministically. Per-edge state (the streaming engine's colors)
//!   lives at the id and needs **no carry pass at all** — only freed and
//!   inserted ids change, which the [`SegCommitDelta`] lists explicitly.
//!   Contrast with the lexicographic edge indices of [`Graph`], which
//!   shift on every insert/delete and force the O(m) origin-map gather.
//! - **Epoch-tagged mirror slots**: `mirror[p]` holds the arena position
//!   of the reverse directed edge, as in the contiguous CSR. Positions
//!   are absolute, but they are only guaranteed for the current commit
//!   *epoch*: every commit re-links the mirrors of all touched segments
//!   in one O(region) fixup pass (a segment that moved in epoch `e`
//!   rewrites its neighbors' mirror entries in the same epoch), and each
//!   extent records the epoch that last rewrote it. The involution
//!   invariant — `mirror[mirror[p]] == p`, same edge id on both sides —
//!   therefore holds after every commit, exactly as on [`Graph`].
//!
//! # Differential oracle
//!
//! The contiguous snapshot engine stays the bit-exact oracle, the same
//! playbook as `Engine::Naive` and [`crate::MutableGraph::commit_rebuild`]:
//! [`SegmentedGraph::to_graph`] materializes the lexicographic [`Graph`]
//! this store is equivalent to, and the `tests/delta_csr.rs` sweep pins
//! segmented == patched == rebuild under arbitrary churn (graph equality,
//! mirror involution, line graphs, per-edge state carry, shrink
//! interplay). Batches containing a [`SegmentedGraph::shrink_isolated`]
//! compaction rebuild the store — an explicit O(n + m) event that
//! reassigns every edge id (reported via [`SegCommitDelta::edge_remap`]),
//! just as shrink batches take the rebuild path on [`crate::MutableGraph`].
//!
//! # Byte accounting
//!
//! [`SegCommitDelta::commit_bytes`] counts the bytes actually written into
//! the committed representation: touched extents, spliced segment entries,
//! both sides of every fixed-up mirror slot, endpoint-table writes and
//! identifier writes. Full-rewrite commits (the shrink/rebuild path here,
//! and both [`crate::MutableGraph`] paths) count
//! [`Graph::full_rewrite_bytes`] in the same currency, which is what the
//! `pr7_segments` bench compares.

use crate::{EdgeIdx, Graph, GraphError, Vertex};
use deco_probe::{Event, Probe};
// tidy: allow(hash-iter) — commit replay uses hash containers only for
// membership and per-pair overlay flags; every iteration result is
// sorted (sort_unstable) before it can reach deltas or segments.
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tombstone in the endpoint table for a freed edge id.
const HOLE: (u32, u32) = (u32::MAX, u32::MAX);

/// Bytes one arena entry write costs: `(neighbor, edge id)`, two `u32`s.
const ENTRY_BYTES: usize = 8;
/// Bytes one endpoint-table write costs (normalized pair, two `u32`s).
const ENDS_BYTES: usize = 8;
/// Bytes one extent rewrite costs (`start`, `len`, `cap`, `epoch`).
const EXT_BYTES: usize = 16;
/// Bytes one mirror fixup costs: both sides of the involution, 4 + 4.
const MIRROR_BYTES: usize = 8;
/// Bytes one identifier write costs.
const IDENT_BYTES: usize = 8;

/// One queued mutation (same repertoire as [`crate::MutableGraph`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u32, u32),
    Delete(u32, u32),
    AddVertex,
    SetIdent(u32, u64),
    Shrink,
}

/// The per-vertex indirection record of the segmented layout: vertex `v`
/// owns arena positions `start..start + len`, with `cap - len` slack slots
/// reserved behind them for in-place growth. `epoch` is the commit epoch
/// that last rewrote this segment (see the module docs on epoch-tagged
/// mirror slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegExtent {
    /// First arena position of the segment.
    pub start: u32,
    /// Live entries (the vertex degree).
    pub len: u32,
    /// Reserved entries; `len <= cap`. Outgrowing `cap` relocates the
    /// segment to the arena tail with fresh amortized slack.
    pub cap: u32,
    /// Commit epoch that last rewrote this segment.
    pub epoch: u32,
}

/// The net effect of one committed batch on a [`SegmentedGraph`].
///
/// Where [`crate::CommitDelta`] must ship a full `O(m)` origin map (every
/// lexicographic edge index shifts), stable ids make the delta sparse:
/// only [`SegCommitDelta::freed_ids`] and [`SegCommitDelta::inserted_ids`]
/// change, everything else keeps its id and its per-edge state in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegCommitDelta {
    /// Net inserted edges, normalized `(u, v)` with `u < v`, sorted, in
    /// the post-commit numbering.
    pub inserted: Vec<(Vertex, Vertex)>,
    /// Net deleted edges, normalized and sorted, in the pre-commit
    /// numbering.
    pub deleted: Vec<(Vertex, Vertex)>,
    /// Edge id assigned to each entry of [`SegCommitDelta::inserted`]
    /// (aligned): freed ids are reused LIFO — deleted ids of the same
    /// batch included — before fresh ids are minted.
    pub inserted_ids: Vec<u32>,
    /// Edge id freed by each entry of [`SegCommitDelta::deleted`]
    /// (aligned).
    pub freed_ids: Vec<u32>,
    /// Vertices added by the batch.
    pub added_vertices: usize,
    /// Vertices removed by shrink compactions in this batch.
    pub removed_vertices: usize,
    /// Present only when the batch rebuilt the store (it contained a
    /// shrink): maps every pre-commit edge id to its post-commit id, with
    /// [`Graph::NO_EDGE_ORIGIN`] for ids that did not survive (deleted
    /// edges and pre-existing holes). `None` for ordinary commits, whose
    /// surviving ids are unchanged by construction.
    pub edge_remap: Option<Vec<u32>>,
    /// As [`crate::CommitDelta::vertex_map`]: post-commit vertex to
    /// pre-commit index when the batch renumbered vertices.
    pub vertex_map: Option<Vec<Option<Vertex>>>,
    /// Bytes written into the committed representation by this commit
    /// (module docs); 0 for an empty batch.
    pub commit_bytes: usize,
}

/// A mutable graph in the segmented CSR layout. See the module docs.
///
/// The batched mutation API mirrors [`crate::MutableGraph`] — queue with
/// [`SegmentedGraph::insert_edge`] / [`SegmentedGraph::delete_edge`] /
/// [`SegmentedGraph::add_vertex`] / [`SegmentedGraph::set_ident`] /
/// [`SegmentedGraph::shrink_isolated`], apply atomically with
/// [`SegmentedGraph::commit`] — and commits accept or reject exactly the
/// batches the contiguous engine would, with the same [`GraphError`]s.
///
/// # Example
///
/// ```
/// use deco_graph::SegmentedGraph;
///
/// let mut sg = SegmentedGraph::new(3);
/// sg.insert_edge(0, 1)?;
/// sg.insert_edge(1, 2)?;
/// let delta = sg.commit()?;
/// assert_eq!(delta.inserted_ids, vec![0, 1]);
/// sg.delete_edge(0, 1)?;
/// sg.insert_edge(0, 2)?;
/// let delta = sg.commit()?;
/// // The freed id is reused for the inserted edge; id 1 never moved.
/// assert_eq!((delta.freed_ids, delta.inserted_ids), (vec![0], vec![0]));
/// assert!(delta.commit_bytes > 0);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedGraph {
    n: usize,
    /// Per-vertex extents into `arena` (the indirection table).
    ext: Vec<SegExtent>,
    /// Shared adjacency arena: `(neighbor, edge id)` entries, sorted by
    /// neighbor within each live segment; positions outside every
    /// `start..start+len` window are garbage (capacity slack or leaked
    /// slots of relocated segments).
    arena: Vec<(u32, u32)>,
    /// Mirror table parallel to `arena`: absolute position of the reverse
    /// directed edge, re-linked every epoch for touched segments.
    mirror: Vec<u32>,
    /// Endpoint table indexed by edge id; [`HOLE`] for freed ids.
    ends: Vec<(u32, u32)>,
    /// Freed edge ids, reused LIFO (deterministic).
    free_ids: Vec<u32>,
    /// Distinct identifier per vertex (the paper's `Id`).
    idents: Vec<u64>,
    live_edges: usize,
    /// Degree histogram backing O(1) max-degree maintenance.
    deg_hist: Vec<usize>,
    max_degree: usize,
    /// Commit epoch; incremented once per successful commit.
    epoch: u32,
    /// Arena capacity leaked by relocated segments (diagnostics).
    dead_slots: usize,
    pending: Vec<Op>,
    pending_vertices: usize,
    /// Observability sink: both commit paths emit one
    /// [`Event::CommitBytes`] per non-empty batch (default: disabled).
    probe: Arc<dyn Probe>,
}

impl SegmentedGraph {
    /// An edgeless segmented graph with `n` vertices.
    pub fn new(n: usize) -> SegmentedGraph {
        SegmentedGraph::from_graph(&Graph::empty(n))
    }

    /// Builds the segmented store equivalent to `g`: edge ids are `g`'s
    /// lexicographic edge indices, segments start tight (`cap == len`;
    /// the first growth of a vertex relocates it with amortized slack).
    pub fn from_graph(g: &Graph) -> SegmentedGraph {
        let n = g.n();
        let offsets = g.slot_offsets();
        let mut ext = Vec::with_capacity(n);
        let mut deg_hist = vec![0usize; g.max_degree() + 1];
        for (v, &start) in offsets.iter().enumerate().take(n) {
            let deg = g.degree(v);
            ext.push(SegExtent { start: start as u32, len: deg as u32, cap: deg as u32, epoch: 0 });
            deg_hist[deg] += 1;
        }
        let mut arena = Vec::with_capacity(g.slot_count());
        for v in 0..n {
            for (nbr, e) in g.incident(v) {
                arena.push((nbr as u32, e as u32));
            }
        }
        SegmentedGraph {
            n,
            ext,
            arena,
            mirror: g.mirror_slots().to_vec(),
            ends: g.edges().map(|(u, v)| (u as u32, v as u32)).collect(),
            free_ids: Vec::new(),
            idents: g.idents().to_vec(),
            live_edges: g.m(),
            deg_hist,
            max_degree: g.max_degree(),
            epoch: 0,
            dead_slots: 0,
            pending: Vec::new(),
            pending_vertices: 0,
            probe: deco_probe::null(),
        }
    }

    /// Attaches an observability probe (default: the shared disabled
    /// [`deco_probe::NullProbe`]). With an enabled probe every non-empty
    /// committed batch emits one [`Event::CommitBytes`] carrying the same
    /// value as [`SegCommitDelta::commit_bytes`] — O(region) for ordinary
    /// commits, the full-rewrite figure for shrink rebuilds.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.probe = probe;
    }

    /// Emission helper shared by both commit paths.
    fn emit_commit_bytes(&self, bytes: usize) {
        if self.probe.enabled() {
            self.probe.emit(Event::CommitBytes { bytes: bytes as u64 });
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn m(&self) -> usize {
        self.live_edges
    }

    /// Exclusive upper bound on edge ids: size any id-indexed store to
    /// this (ids below it may be live or free — see
    /// [`SegmentedGraph::is_live`]).
    pub fn edge_bound(&self) -> usize {
        self.ends.len()
    }

    /// Maximum degree Δ (0 for the edgeless graph), maintained
    /// incrementally via a degree histogram.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.ext[v].len as usize
    }

    /// The distinct identifier of `v`.
    pub fn ident(&self, v: Vertex) -> u64 {
        self.idents[v]
    }

    /// All identifiers, indexed by vertex.
    pub fn idents(&self) -> &[u64] {
        &self.idents
    }

    /// Current commit epoch (0 before the first commit).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Arena slots leaked by relocated segments — the fragmentation a
    /// shrink-compaction commit reclaims.
    pub fn dead_slots(&self) -> usize {
        self.dead_slots
    }

    /// Whether edge id `e` currently addresses a live edge.
    pub fn is_live(&self, e: EdgeIdx) -> bool {
        e < self.ends.len() && self.ends[e] != HOLE
    }

    /// Endpoints of the live edge `e` as `(u, v)` with `u < v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or a freed id.
    pub fn endpoints(&self, e: EdgeIdx) -> (Vertex, Vertex) {
        let pair = self.ends[e];
        assert_ne!(pair, HOLE, "edge id {e} is freed");
        (pair.0 as Vertex, pair.1 as Vertex)
    }

    /// Iterates over `(edge id, (u, v))` for every live edge, in id order
    /// (ids are stable, so this order is *not* lexicographic; see
    /// [`SegmentedGraph::lex_edge_ids`]).
    pub fn edges_with_ids(&self) -> impl Iterator<Item = (EdgeIdx, (Vertex, Vertex))> + '_ {
        self.ends
            .iter()
            .enumerate()
            .filter(|&(_, &pair)| pair != HOLE)
            .map(|(e, &(u, v))| (e, (u as Vertex, v as Vertex)))
    }

    /// Live edge ids sorted by endpoint pair — the lexicographic order the
    /// contiguous [`Graph`] numbers its edges in. `lex_edge_ids()[i]` is
    /// the id of edge `i` of [`SegmentedGraph::to_graph`].
    pub fn lex_edge_ids(&self) -> Vec<u32> {
        let mut items: Vec<(u32, u32, u32)> = self
            .ends
            .iter()
            .enumerate()
            .filter(|&(_, &pair)| pair != HOLE)
            .map(|(e, &(u, v))| (u, v, e as u32))
            .collect();
        items.sort_unstable();
        items.into_iter().map(|(_, _, e)| e).collect()
    }

    /// Iterates over `(neighbor, edge id)` pairs incident to `v`, in
    /// increasing neighbor order.
    pub fn incident(&self, v: Vertex) -> impl Iterator<Item = (Vertex, EdgeIdx)> + '_ {
        self.segment(v).iter().map(|&(u, e)| (u as Vertex, e as EdgeIdx))
    }

    /// Iterates over the neighbors of `v` in increasing vertex order.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.segment(v).iter().map(|&(u, _)| u as Vertex)
    }

    /// The edge id of `(u, v)`, if that edge exists.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeIdx> {
        if u >= self.n || v >= self.n || u == v {
            return None;
        }
        let seg = self.segment(u);
        seg.binary_search_by_key(&(v as u32), |&(w, _)| w).ok().map(|i| seg[i].1 as EdgeIdx)
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The live entries of `v`'s segment.
    fn segment(&self, v: Vertex) -> &[(u32, u32)] {
        let SegExtent { start, len, .. } = self.ext[v];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// Materializes the contiguous [`Graph`] this store is equivalent to,
    /// plus the map from its lexicographic edge indices to the stable ids
    /// here (`idmap[lex] = id`). The result is bit-identical to driving
    /// the same batches through [`crate::MutableGraph`] — the differential
    /// oracle contract the `delta_csr` sweep pins.
    pub fn to_graph(&self) -> (Graph, Vec<u32>) {
        let idmap = self.lex_edge_ids();
        let edges: Vec<(usize, usize)> = idmap
            .iter()
            .map(|&e| {
                let (u, v) = self.ends[e as usize];
                (u as usize, v as usize)
            })
            .collect();
        let g = Graph::from_edges(self.n, &edges)
            // INVARIANT: the subgraph inherits validated endpoints from a valid host graph.
            .expect("segmented invariants imply a valid edge list")
            .with_idents(self.idents.clone())
            // INVARIANT: segment identifiers are distinct by construction, so re-labelling cannot fail.
            .expect("segmented identifiers are distinct");
        (g, idmap)
    }

    /// The subgraph consisting of exactly the edges in `keep_edges` (edge
    /// ids), on the vertex set of their endpoints — the repair-region
    /// extraction, mirroring [`Graph::edge_induced`].
    ///
    /// Returns `(subgraph, vertex_map, edge_map)` with `edge_map[new_e]`
    /// the *edge id* of subgraph edge `new_e`. Kept edges are sorted by
    /// endpoint pair, so the subgraph (topology, identifiers, and the
    /// correspondence `new_e ↔ edge_map[new_e]`) is **byte-identical** to
    /// what [`Graph::edge_induced`] extracts for the same edge set on the
    /// materialized graph — repairs computed on either host agree bit for
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range or freed.
    pub fn edge_induced(&self, keep_edges: &[EdgeIdx]) -> (Graph, Vec<Vertex>, Vec<EdgeIdx>) {
        let mut eids: Vec<EdgeIdx> = keep_edges.to_vec();
        eids.sort_unstable();
        eids.dedup();
        let mut items: Vec<(u32, u32, u32)> = eids
            .iter()
            .map(|&e| {
                let (u, v) = self.endpoints(e);
                (u as u32, v as u32, e as u32)
            })
            .collect();
        items.sort_unstable();
        let mut verts: Vec<Vertex> = Vec::with_capacity(2 * items.len());
        for &(u, v, _) in &items {
            verts.push(u as Vertex);
            verts.push(v as Vertex);
        }
        verts.sort_unstable();
        verts.dedup();
        let mut back = vec![usize::MAX; self.n];
        for (new, &old) in verts.iter().enumerate() {
            back[old] = new;
        }
        let edges: Vec<(usize, usize)> =
            items.iter().map(|&(u, v, _)| (back[u as usize], back[v as usize])).collect();
        let g = Graph::from_edges(verts.len(), &edges)
            // INVARIANT: the subgraph inherits validated endpoints from a valid host graph.
            .expect("edge-induced subgraph of a valid graph is valid");
        let idents = verts.iter().map(|&old| self.idents[old]).collect();
        // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
        let g = g.with_idents(idents).expect("inherited identifiers stay distinct");
        let emap = items.into_iter().map(|(_, _, e)| e as EdgeIdx).collect();
        (g, verts, emap)
    }

    /// Number of vertices the next commit will have (committed + pending),
    /// ignoring queued shrink compactions.
    pub fn next_n(&self) -> usize {
        self.n + self.pending_vertices
    }

    /// Number of queued, uncommitted operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Queues insertion of the undirected edge `(u, v)`; existence is
    /// checked at commit time, exactly as on
    /// [`crate::MutableGraph::insert_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for out-of-range endpoints or self-loops.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Insert(u, v));
        Ok(())
    }

    /// Queues deletion of the undirected edge `(u, v)`; existence is
    /// checked at commit time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for out-of-range endpoints or self-loops.
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Delete(u, v));
        Ok(())
    }

    /// Queues addition of one vertex and returns its index (usable as an
    /// endpoint within this batch). Default identifiers follow the same
    /// smallest-unused rule as [`crate::MutableGraph::add_vertex`].
    pub fn add_vertex(&mut self) -> Vertex {
        self.pending.push(Op::AddVertex);
        self.pending_vertices += 1;
        self.next_n() - 1
    }

    /// Queues an identifier override for `v`; distinctness is validated at
    /// commit time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `v` is out of range for the post-batch
    /// vertex count.
    pub fn set_ident(&mut self, v: Vertex, ident: u64) -> Result<(), GraphError> {
        if v >= self.next_n() {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.next_n() });
        }
        self.pending.push(Op::SetIdent(v as u32, ident));
        Ok(())
    }

    /// Queues a shrink compaction (see
    /// [`crate::MutableGraph::shrink_isolated`]). A batch containing one
    /// rebuilds the whole store — an explicit O(n + m) event that
    /// reassigns every edge id, reclaims [`SegmentedGraph::dead_slots`]
    /// and reports the reassignment via [`SegCommitDelta::edge_remap`].
    pub fn shrink_isolated(&mut self) {
        self.pending.push(Op::Shrink);
    }

    /// Discards all queued operations, keeping the committed state.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
        self.pending_vertices = 0;
    }

    fn check_pair(&self, u: Vertex, v: Vertex) -> Result<(u32, u32), GraphError> {
        let n = self.next_n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok(if u < v { (u as u32, v as u32) } else { (v as u32, u as u32) })
    }

    /// Applies the queued batch atomically, writing only the segments of
    /// touched vertices — O(region) bytes, counted in
    /// [`SegCommitDelta::commit_bytes`]. Batches containing a shrink
    /// rebuild the store (module docs); empty batches short-circuit to a
    /// zero-byte no-op.
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`crate::MutableGraph::commit`] — on
    /// error the committed state is untouched and the batch is discarded.
    pub fn commit(&mut self) -> Result<SegCommitDelta, GraphError> {
        if self.pending.is_empty() {
            return Ok(SegCommitDelta {
                inserted: Vec::new(),
                deleted: Vec::new(),
                inserted_ids: Vec::new(),
                freed_ids: Vec::new(),
                added_vertices: 0,
                removed_vertices: 0,
                edge_remap: None,
                vertex_map: None,
                commit_bytes: 0,
            });
        }
        if self.pending.contains(&Op::Shrink) {
            return self.commit_shrink_rebuild();
        }
        let added_vertices = self.pending_vertices;
        let n_new = self.n + added_vertices;
        // Replay against a sparse overlay of touched pairs — same
        // validation, same error order as `MutableGraph::commit`.
        // tidy: allow(hash-iter) — iterated once below, then sorted
        // (sort_unstable) before anything reads the delta.
        let mut overlay: HashMap<(u32, u32), (bool, bool)> = HashMap::new();
        let mut ident_ops: Vec<(usize, u64)> = Vec::new();
        let mut replay = || -> Result<(), GraphError> {
            for &op in &self.pending {
                match op {
                    Op::Insert(u, v) => {
                        let slot = overlay.entry((u, v)).or_insert_with(|| {
                            let was = self.has_edge(u as usize, v as usize);
                            (was, was)
                        });
                        if slot.1 {
                            return Err(GraphError::DuplicateEdge { u: u as usize, v: v as usize });
                        }
                        slot.1 = true;
                    }
                    Op::Delete(u, v) => {
                        let slot = overlay.entry((u, v)).or_insert_with(|| {
                            let was = self.has_edge(u as usize, v as usize);
                            (was, was)
                        });
                        if !slot.1 {
                            return Err(GraphError::MissingEdge { u: u as usize, v: v as usize });
                        }
                        slot.1 = false;
                    }
                    Op::AddVertex => {}
                    Op::SetIdent(v, ident) => ident_ops.push((v as usize, ident)),
                    // INVARIANT: shrink batches are routed to the rebuild path above, so apply never sees one.
                    Op::Shrink => unreachable!("shrink batches take the rebuild path"),
                }
            }
            Ok(())
        };
        if let Err(e) = replay() {
            self.discard_pending();
            return Err(e);
        }
        let mut inserted: Vec<(Vertex, Vertex)> = Vec::new();
        let mut deleted: Vec<(Vertex, Vertex)> = Vec::new();
        for (&(u, v), &(was, now)) in &overlay {
            match (was, now) {
                (false, true) => inserted.push((u as usize, v as usize)),
                (true, false) => deleted.push((u as usize, v as usize)),
                _ => {}
            }
        }
        inserted.sort_unstable();
        deleted.sort_unstable();
        // Identifiers: the same conservative default rule as both
        // `MutableGraph` paths, so all three engines assign identical
        // defaults.
        let mut idents = self.idents.clone();
        let mut ident_writes = 0usize;
        if added_vertices > 0 {
            // tidy: allow(hash-iter) — membership probes only; candidate
            // identifiers come from the deterministic `index + 1` walk.
            let mut used: HashSet<u64> = idents.iter().copied().collect();
            for &op in &self.pending {
                match op {
                    Op::AddVertex => {
                        let mut c = idents.len() as u64 + 1;
                        while !used.insert(c) {
                            c += 1;
                        }
                        idents.push(c);
                        ident_writes += 1;
                    }
                    Op::SetIdent(v, ident) => {
                        used.insert(ident);
                        idents[v as usize] = ident;
                        ident_writes += 1;
                    }
                    _ => {}
                }
            }
        } else {
            for &(v, ident) in &ident_ops {
                idents[v] = ident;
                ident_writes += 1;
            }
        }
        debug_assert_eq!(idents.len(), n_new);
        // Distinctness revalidation mirrors `Graph::patched`: only when
        // identifiers changed (reporting the first duplicate in sorted
        // order, the same error the oracle paths raise).
        if idents[..self.n] != self.idents[..] || added_vertices > 0 {
            let mut sorted = idents.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    self.discard_pending();
                    return Err(GraphError::DuplicateIdent { ident: w[0] });
                }
            }
        }

        // Everything validated; all mutations below are infallible.
        let epoch = self.epoch.wrapping_add(1);
        let mut bytes = 0usize;
        for _ in 0..added_vertices {
            self.ext.push(SegExtent { start: self.arena.len() as u32, len: 0, cap: 0, epoch });
            self.bump_hist(0, 1);
            bytes += EXT_BYTES;
        }
        self.n = n_new;

        // Edge id assignment: free deleted ids first (in sorted-pair
        // order), then serve inserts LIFO — freed ids of this very batch
        // are reused immediately, keeping the id space dense.
        let mut freed_ids: Vec<u32> = Vec::with_capacity(deleted.len());
        for &(u, v) in &deleted {
            // INVARIANT: edge presence between u and v was checked just above.
            let id = self.edge_between(u, v).expect("validated above") as u32;
            self.ends[id as usize] = HOLE;
            bytes += ENDS_BYTES;
            self.free_ids.push(id);
            freed_ids.push(id);
        }
        self.live_edges -= deleted.len();
        let mut inserted_ids: Vec<u32> = Vec::with_capacity(inserted.len());
        for &(u, v) in &inserted {
            let id = match self.free_ids.pop() {
                Some(id) => {
                    self.ends[id as usize] = (u as u32, v as u32);
                    id
                }
                None => {
                    self.ends.push((u as u32, v as u32));
                    (self.ends.len() - 1) as u32
                }
            };
            bytes += ENDS_BYTES;
            inserted_ids.push(id);
        }
        self.live_edges += inserted.len();
        assert!(
            2 * self.ends.len() <= u32::MAX as usize,
            "graph too large for u32 edge ids and arena positions"
        );

        // Directed patch lists, sorted by (owner, neighbor): each touched
        // vertex's additions and removals form one contiguous window.
        let mut add_adj: Vec<(u32, u32, u32)> = Vec::with_capacity(2 * inserted.len());
        for (i, &(u, v)) in inserted.iter().enumerate() {
            add_adj.push((u as u32, v as u32, inserted_ids[i]));
            add_adj.push((v as u32, u as u32, inserted_ids[i]));
        }
        add_adj.sort_unstable();
        let mut del_adj: Vec<(u32, u32)> = Vec::with_capacity(2 * deleted.len());
        for &(u, v) in &deleted {
            del_adj.push((u as u32, v as u32));
            del_adj.push((v as u32, u as u32));
        }
        del_adj.sort_unstable();

        // Phase A: splice each touched vertex's segment — merge the old
        // entries minus deletions with the insertions, in neighbor order.
        // In place when the new degree fits the capacity; otherwise the
        // segment relocates to the arena tail with amortized slack.
        let mut touched: Vec<u32> = Vec::new();
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        let (mut ai, mut di) = (0usize, 0usize);
        while ai < add_adj.len() || di < del_adj.len() {
            let v = match (add_adj.get(ai), del_adj.get(di)) {
                (Some(&(av, _, _)), Some(&(dv, _))) => av.min(dv),
                (Some(&(av, _, _)), None) => av,
                (None, Some(&(dv, _))) => dv,
                // INVARIANT: the while condition guarantees at least one side is non-exhausted.
                (None, None) => unreachable!(),
            };
            touched.push(v);
            scratch.clear();
            {
                let old = self.segment(v as usize);
                let mut oi = 0usize;
                loop {
                    let next_add = add_adj.get(ai).filter(|&&(o, _, _)| o == v);
                    match (old.get(oi), next_add) {
                        (Some(&(nbr, e)), add) if add.map_or(true, |&(_, anbr, _)| nbr < anbr) => {
                            oi += 1;
                            if di < del_adj.len() && del_adj[di] == (v, nbr) {
                                di += 1;
                            } else {
                                scratch.push((nbr, e));
                            }
                        }
                        (_, Some(&(_, anbr, ae))) => {
                            ai += 1;
                            scratch.push((anbr, ae));
                        }
                        (None, None) => break,
                        // INVARIANT: the merge loop's first arm consumes every remaining old entry, so no other combination reaches this arm.
                        _ => unreachable!("first arm covers remaining old entries"),
                    }
                }
            }
            let old_deg = self.ext[v as usize].len as usize;
            let new_deg = scratch.len();
            let e = &mut self.ext[v as usize];
            if new_deg as u32 <= e.cap {
                let start = e.start as usize;
                self.arena[start..start + new_deg].copy_from_slice(&scratch);
                e.len = new_deg as u32;
                e.epoch = epoch;
            } else {
                // Relocate with amortized growth; the old capacity leaks
                // until the next shrink compaction reclaims it.
                let new_cap = new_deg + new_deg / 2 + 2;
                let start = self.arena.len();
                self.dead_slots += e.cap as usize;
                self.arena.extend_from_slice(&scratch);
                self.arena.resize(start + new_cap, (0, 0));
                self.mirror.resize(self.arena.len(), 0);
                *e = SegExtent {
                    start: start as u32,
                    len: new_deg as u32,
                    cap: new_cap as u32,
                    epoch,
                };
            }
            bytes += EXT_BYTES + ENTRY_BYTES * new_deg;
            self.bump_hist(old_deg, -1);
            self.bump_hist(new_deg, 1);
        }
        // Restore max-degree from the histogram after all splices.
        while self.max_degree > 0 && self.deg_hist[self.max_degree] == 0 {
            self.max_degree -= 1;
        }

        // Phase B: one mirror-fixup pass over the touched segments. Every
        // slot whose position changed has a touched owner, so re-linking
        // both sides of each touched slot restores the involution for the
        // whole graph — O(Σ deg(touched) · log deg) work, nothing else in
        // the mirror table is read or written.
        for &v in &touched {
            let SegExtent { start, len, .. } = self.ext[v as usize];
            for p in start as usize..(start + len) as usize {
                let (nbr, _) = self.arena[p];
                let seg = self.segment(nbr as usize);
                let i = seg
                    .binary_search_by_key(&v, |&(w, _)| w)
                    // INVARIANT: segments store both directions of every edge, so the partner lookup succeeds.
                    .expect("partner segment lists the reverse edge");
                let q = self.ext[nbr as usize].start as usize + i;
                self.mirror[p] = q as u32;
                self.mirror[q] = p as u32;
                bytes += MIRROR_BYTES;
            }
        }

        self.idents = idents;
        bytes += IDENT_BYTES * ident_writes;
        self.epoch = epoch;
        self.discard_pending();
        self.emit_commit_bytes(bytes);
        Ok(SegCommitDelta {
            inserted,
            deleted,
            inserted_ids,
            freed_ids,
            added_vertices,
            removed_vertices: 0,
            edge_remap: None,
            vertex_map: None,
            commit_bytes: bytes,
        })
    }

    /// The rebuild path for batches containing a shrink compaction: replay
    /// in queue order (mid-batch renumbering included, bit-compatible with
    /// [`crate::MutableGraph::commit_rebuild`]), rebuild the store from
    /// the resulting contiguous graph — reassigning every edge id to its
    /// lexicographic rank and reclaiming all dead arena slots — and report
    /// the id reassignment via [`SegCommitDelta::edge_remap`].
    fn commit_shrink_rebuild(&mut self) -> Result<SegCommitDelta, GraphError> {
        let added_vertices = self.pending_vertices;
        let mut n_cur = self.n;
        // tidy: allow(hash-iter) — membership probes during queue-order
        // replay; the rebuilt edge list is re-derived in sorted order.
        let mut set: HashSet<(u32, u32)> =
            self.edges_with_ids().map(|(_, (u, v))| (u as u32, v as u32)).collect();
        let mut idents: Vec<u64> = self.idents.clone();
        // tidy: allow(hash-iter) — membership probes only, as above.
        let mut used_idents: Option<HashSet<u64>> =
            (added_vertices > 0).then(|| idents.iter().copied().collect());
        let mut back_to_old: Vec<Option<Vertex>> = (0..n_cur).map(Some).collect();
        let mut removed_vertices = 0usize;
        let mut renumbered = false;
        let mut replay = || -> Result<(), GraphError> {
            for &op in &self.pending {
                match op {
                    Op::Insert(u, v) => {
                        check_cur_pair(u, v, n_cur)?;
                        if !set.insert((u, v)) {
                            return Err(GraphError::DuplicateEdge { u: u as usize, v: v as usize });
                        }
                    }
                    Op::Delete(u, v) => {
                        check_cur_pair(u, v, n_cur)?;
                        if !set.remove(&(u, v)) {
                            return Err(GraphError::MissingEdge { u: u as usize, v: v as usize });
                        }
                    }
                    Op::AddVertex => {
                        // INVARIANT: used_idents is initialized whenever the batch contains adds, checked just above.
                        let used = used_idents.as_mut().expect("adds imply the set exists");
                        let mut c = idents.len() as u64 + 1;
                        while !used.insert(c) {
                            c += 1;
                        }
                        idents.push(c);
                        back_to_old.push(None);
                        n_cur += 1;
                    }
                    Op::SetIdent(v, ident) => {
                        if (v as usize) >= n_cur {
                            return Err(GraphError::VertexOutOfRange {
                                vertex: v as usize,
                                n: n_cur,
                            });
                        }
                        if let Some(used) = used_idents.as_mut() {
                            used.insert(ident);
                        }
                        idents[v as usize] = ident;
                    }
                    Op::Shrink => {
                        let mut connected = vec![false; n_cur];
                        for &(u, v) in &set {
                            connected[u as usize] = true;
                            connected[v as usize] = true;
                        }
                        let keep: Vec<usize> = (0..n_cur).filter(|&v| connected[v]).collect();
                        if keep.len() == n_cur {
                            continue;
                        }
                        let mut remap = vec![u32::MAX; n_cur];
                        for (new, &old_v) in keep.iter().enumerate() {
                            remap[old_v] = new as u32;
                        }
                        set = set
                            .iter()
                            .map(|&(u, v)| (remap[u as usize], remap[v as usize]))
                            .collect();
                        idents = keep.iter().map(|&v| idents[v]).collect();
                        back_to_old = keep.iter().map(|&v| back_to_old[v]).collect();
                        removed_vertices += n_cur - keep.len();
                        renumbered = true;
                        n_cur = keep.len();
                    }
                }
            }
            Ok(())
        };
        if let Err(e) = replay() {
            self.discard_pending();
            return Err(e);
        }
        let mut edges: Vec<(usize, usize)> =
            set.into_iter().map(|(u, v)| (u as usize, v as usize)).collect();
        edges.sort_unstable();
        let graph = match Graph::from_edges(n_cur, &edges).and_then(|g| g.with_idents(idents)) {
            Ok(g) => g,
            Err(e) => {
                self.discard_pending();
                return Err(e);
            }
        };
        // Delta against the *old* store: match each new edge back through
        // the vertex map, reassigning ids to lexicographic ranks.
        let old_bound = self.ends.len();
        let mut edge_remap = vec![Graph::NO_EDGE_ORIGIN; old_bound];
        let mut survived = vec![false; old_bound];
        let mut inserted = Vec::new();
        let mut inserted_ids = Vec::new();
        for (e, (u, v)) in graph.edges().enumerate() {
            let carried = match (back_to_old[u], back_to_old[v]) {
                (Some(bu), Some(bv)) => self.edge_between(bu, bv),
                _ => None,
            };
            match carried {
                Some(old_id) => {
                    edge_remap[old_id] = e as u32;
                    survived[old_id] = true;
                }
                None => {
                    inserted.push((u, v));
                    inserted_ids.push(e as u32);
                }
            }
        }
        // Deleted pairs in the old numbering, in endpoint-pair order (the
        // order the oracle's lexicographic edge walk reports them in).
        let mut old_pairs: Vec<(u32, u32, u32)> = self
            .edges_with_ids()
            .filter(|&(id, _)| !survived[id])
            .map(|(id, (u, v))| (u as u32, v as u32, id as u32))
            .collect();
        old_pairs.sort_unstable();
        let deleted: Vec<(Vertex, Vertex)> =
            old_pairs.iter().map(|&(u, v, _)| (u as Vertex, v as Vertex)).collect();
        let freed_ids: Vec<u32> = old_pairs.iter().map(|&(_, _, id)| id).collect();

        let commit_bytes = Graph::full_rewrite_bytes(graph.n(), graph.m());
        let epoch = self.epoch.wrapping_add(1);
        let probe = Arc::clone(&self.probe);
        *self = SegmentedGraph::from_graph(&graph);
        self.epoch = epoch;
        self.probe = probe;
        self.emit_commit_bytes(commit_bytes);
        Ok(SegCommitDelta {
            inserted,
            deleted,
            inserted_ids,
            freed_ids,
            added_vertices,
            removed_vertices,
            edge_remap: Some(edge_remap),
            vertex_map: renumbered.then_some(back_to_old),
            commit_bytes,
        })
    }

    fn bump_hist(&mut self, deg: usize, by: isize) {
        if deg >= self.deg_hist.len() {
            self.deg_hist.resize(deg + 1, 0);
        }
        self.deg_hist[deg] = (self.deg_hist[deg] as isize + by) as usize;
        if by > 0 && deg > self.max_degree {
            self.max_degree = deg;
        }
    }

    /// Validates every structural invariant of the segmented layout —
    /// extent bounds, neighbor-sorted segments, endpoint-table agreement,
    /// mirror involution, degree histogram, live-edge accounting — and
    /// panics on any violation. Test support for the differential sweeps;
    /// O(n + m log Δ).
    pub fn check_consistency(&self) {
        assert_eq!(self.ext.len(), self.n);
        assert_eq!(self.idents.len(), self.n);
        assert_eq!(self.arena.len(), self.mirror.len());
        let mut live_seen = 0usize;
        let mut slot_total = 0usize;
        let mut max_deg = 0usize;
        for v in 0..self.n {
            let SegExtent { start, len, cap, .. } = self.ext[v];
            assert!(len <= cap, "vertex {v}: len {len} > cap {cap}");
            assert!(
                (start + cap) as usize <= self.arena.len(),
                "vertex {v}: extent exceeds the arena"
            );
            let seg = self.segment(v);
            slot_total += seg.len();
            max_deg = max_deg.max(seg.len());
            for (i, &(nbr, id)) in seg.iter().enumerate() {
                if i > 0 {
                    assert!(seg[i - 1].0 < nbr, "vertex {v}: segment not strictly sorted");
                }
                assert_ne!(nbr as usize, v, "vertex {v}: self-loop entry");
                let pair = self.ends[id as usize];
                assert_ne!(pair, HOLE, "vertex {v}: entry references freed id {id}");
                let expect = if (v as u32) < nbr { (v as u32, nbr) } else { (nbr, v as u32) };
                assert_eq!(pair, expect, "vertex {v}: endpoint table disagrees for id {id}");
                let p = start as usize + i;
                let q = self.mirror[p] as usize;
                let ne = self.ext[nbr as usize];
                assert!(
                    (ne.start as usize..(ne.start + ne.len) as usize).contains(&q),
                    "slot {p}: mirror {q} not inside partner segment"
                );
                assert_eq!(self.arena[q], (v as u32, id), "slot {p}: mirror entry mismatch");
                assert_eq!(self.mirror[q] as usize, p, "slot {p}: mirror is not an involution");
            }
        }
        for (id, &pair) in self.ends.iter().enumerate() {
            if pair == HOLE {
                assert!(
                    self.free_ids.contains(&(id as u32)),
                    "freed id {id} missing from the free list"
                );
            } else {
                live_seen += 1;
                assert!(pair.0 < pair.1, "id {id}: endpoints not normalized");
            }
        }
        assert_eq!(live_seen, self.live_edges, "live-edge accounting drifted");
        assert_eq!(self.free_ids.len(), self.ends.len() - self.live_edges);
        assert_eq!(slot_total, 2 * self.live_edges, "segment slots must cover each edge twice");
        assert_eq!(max_deg, self.max_degree, "max-degree maintenance drifted");
        let mut hist = vec![0usize; self.deg_hist.len()];
        for v in 0..self.n {
            hist[self.ext[v].len as usize] += 1;
        }
        assert_eq!(hist, self.deg_hist, "degree histogram drifted");
    }
}

/// Range check against the *current* (possibly shrunk) vertex count during
/// rebuild replay — identical to the `MutableGraph` rebuild check.
fn check_cur_pair(u: u32, v: u32, n_cur: usize) -> Result<(), GraphError> {
    for w in [u, v] {
        if (w as usize) >= n_cur {
            return Err(GraphError::VertexOutOfRange { vertex: w as usize, n: n_cur });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MutableGraph;

    /// Drives a `SegmentedGraph` and a `MutableGraph` through the same
    /// committed batch and asserts the bit-identical-materialization
    /// contract.
    fn assert_matches_oracle(sg: &SegmentedGraph, mg: &MutableGraph) {
        sg.check_consistency();
        let (g, idmap) = sg.to_graph();
        assert_eq!(&g, mg.graph(), "materialized graph must equal the oracle snapshot");
        assert_eq!(idmap.len(), g.m());
        for (lex, &id) in idmap.iter().enumerate() {
            assert_eq!(g.endpoints(lex), sg.endpoints(id as usize));
        }
        assert_eq!(sg.max_degree(), mg.graph().max_degree());
        assert_eq!(sg.m(), mg.graph().m());
        assert_eq!(sg.n(), mg.graph().n());
        assert_eq!(sg.idents(), mg.graph().idents());
    }

    #[test]
    fn basic_commits_match_oracle() {
        let mut sg = SegmentedGraph::new(5);
        let mut mg = MutableGraph::new(5);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (0, 4)] {
            sg.insert_edge(u, v).unwrap();
            mg.insert_edge(u, v).unwrap();
        }
        let d = sg.commit().unwrap();
        mg.commit().unwrap();
        assert_eq!(d.inserted_ids, vec![0, 1, 2, 3]);
        assert!(d.commit_bytes > 0);
        assert_matches_oracle(&sg, &mg);

        sg.delete_edge(1, 2).unwrap();
        sg.insert_edge(2, 3).unwrap();
        mg.delete_edge(1, 2).unwrap();
        mg.insert_edge(2, 3).unwrap();
        let d = sg.commit().unwrap();
        mg.commit().unwrap();
        assert_eq!((d.freed_ids.clone(), d.inserted_ids.clone()), (vec![2], vec![2]));
        assert_matches_oracle(&sg, &mg);
    }

    #[test]
    fn empty_batch_is_a_zero_byte_noop() {
        let mut sg = SegmentedGraph::new(3);
        sg.insert_edge(0, 1).unwrap();
        sg.commit().unwrap();
        let before = sg.epoch();
        let d = sg.commit().unwrap();
        assert_eq!(d.commit_bytes, 0);
        assert_eq!(sg.epoch(), before, "an empty batch does not advance the epoch");
        sg.check_consistency();
    }

    #[test]
    fn segment_growth_relocates_with_slack() {
        let mut sg = SegmentedGraph::new(10);
        let mut mg = MutableGraph::new(10);
        // Grow vertex 0's segment past its (tight) capacity repeatedly.
        for v in 1..10 {
            sg.insert_edge(0, v).unwrap();
            mg.insert_edge(0, v).unwrap();
            sg.commit().unwrap();
            mg.commit().unwrap();
            assert_matches_oracle(&sg, &mg);
        }
        assert!(sg.dead_slots() > 0, "relocations must leak the old capacity");
        assert_eq!(sg.max_degree(), 9);
    }

    #[test]
    fn errors_and_atomicity_match_oracle() {
        let mut sg = SegmentedGraph::new(4);
        let mut mg = MutableGraph::new(4);
        sg.insert_edge(0, 1).unwrap();
        mg.insert_edge(0, 1).unwrap();
        sg.commit().unwrap();
        mg.commit().unwrap();
        // Duplicate insert fails identically and atomically.
        sg.insert_edge(2, 3).unwrap();
        sg.insert_edge(1, 0).unwrap();
        mg.insert_edge(2, 3).unwrap();
        mg.insert_edge(1, 0).unwrap();
        assert_eq!(sg.commit().unwrap_err(), mg.commit().unwrap_err());
        assert_eq!(sg.pending_ops(), 0);
        assert_matches_oracle(&sg, &mg);
        // Ident clash.
        sg.set_ident(0, 9).unwrap();
        sg.set_ident(1, 9).unwrap();
        mg.set_ident(0, 9).unwrap();
        mg.set_ident(1, 9).unwrap();
        assert_eq!(sg.commit().unwrap_err(), mg.commit().unwrap_err());
        assert_matches_oracle(&sg, &mg);
        // Missing delete.
        sg.delete_edge(2, 3).unwrap();
        mg.delete_edge(2, 3).unwrap();
        assert_eq!(sg.commit().unwrap_err(), mg.commit().unwrap_err());
        assert_matches_oracle(&sg, &mg);
    }

    #[test]
    fn shrink_rebuild_reassigns_ids_and_reports_remap() {
        let mut sg = SegmentedGraph::new(5); // vertices 1, 4 stay isolated
        let mut mg = MutableGraph::new(5);
        for (u, v) in [(0, 2), (2, 3)] {
            sg.insert_edge(u, v).unwrap();
            mg.insert_edge(u, v).unwrap();
        }
        sg.commit().unwrap();
        mg.commit().unwrap();
        sg.shrink_isolated();
        mg.shrink_isolated();
        let d = sg.commit().unwrap();
        let od = mg.commit().unwrap();
        assert_eq!(d.removed_vertices, 2);
        assert_eq!(d.vertex_map, od.vertex_map);
        let remap = d.edge_remap.unwrap();
        assert_eq!(remap, vec![0, 1]); // both edges survive, ids = lex ranks
        assert_eq!(sg.dead_slots(), 0, "a rebuild reclaims all fragmentation");
        assert_matches_oracle(&sg, &mg);
    }

    #[test]
    fn edge_induced_matches_graph_edge_induced() {
        let mut sg = SegmentedGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            sg.insert_edge(u, v).unwrap();
        }
        sg.commit().unwrap();
        // Churn so ids diverge from lex ranks.
        sg.delete_edge(1, 2).unwrap();
        sg.insert_edge(1, 3).unwrap();
        sg.commit().unwrap();
        let (g, idmap) = sg.to_graph();
        // Pick host edges by id; the Graph-side selection uses lex ranks.
        let ids: Vec<usize> = vec![idmap[0] as usize, idmap[3] as usize, idmap[4] as usize];
        let (sub_a, vmap_a, emap_a) = sg.edge_induced(&ids);
        let (sub_b, vmap_b, emap_b) = g.edge_induced(&[0, 3, 4]);
        assert_eq!(sub_a, sub_b, "region sub-networks must be byte-identical");
        assert_eq!(vmap_a, vmap_b);
        // emaps address different id spaces but the same edges.
        for (i, &id) in emap_a.iter().enumerate() {
            assert_eq!(sg.endpoints(id), g.endpoints(emap_b[i]));
        }
    }

    #[test]
    fn commit_bytes_are_region_not_graph_sized() {
        // A big graph, a one-edge batch: segmented bytes must be far below
        // the full-rewrite accounting both oracle paths report.
        let g = crate::generators::random_bounded_degree(2000, 8, 7);
        let mut sg = SegmentedGraph::from_graph(&g);
        let mut mg = MutableGraph::from_graph(g);
        let nbr = sg.neighbors(0).next().unwrap();
        sg.delete_edge(0, nbr).unwrap();
        mg.delete_edge(0, nbr).unwrap();
        let ds = sg.commit().unwrap();
        let dm = mg.commit().unwrap();
        assert_eq!(dm.commit_bytes, Graph::full_rewrite_bytes(mg.graph().n(), mg.graph().m()));
        assert!(
            ds.commit_bytes * 10 < dm.commit_bytes,
            "segmented {} vs full rewrite {}",
            ds.commit_bytes,
            dm.commit_bytes
        );
        assert_matches_oracle(&sg, &mg);
    }

    #[test]
    fn vertex_only_batches_commit() {
        let mut sg = SegmentedGraph::new(2);
        let mut mg = MutableGraph::new(2);
        let a = sg.add_vertex();
        assert_eq!(a, mg.add_vertex());
        sg.set_ident(0, 77).unwrap();
        mg.set_ident(0, 77).unwrap();
        let d = sg.commit().unwrap();
        mg.commit().unwrap();
        assert_eq!(d.added_vertices, 1);
        assert!(d.commit_bytes > 0);
        assert_matches_oracle(&sg, &mg);
        // The added vertex is usable next batch.
        sg.insert_edge(0, a).unwrap();
        mg.insert_edge(0, a).unwrap();
        sg.commit().unwrap();
        mg.commit().unwrap();
        assert_matches_oracle(&sg, &mg);
    }
}
