//! Edge coloring of general graphs (Section 5).
//!
//! The paper obtains its edge-coloring results from the vertex machinery of
//! Sections 3–4 because every line graph has neighborhood independence at
//! most 2 (Lemma 5.1). Two routes are implemented:
//!
//! * [`via_line_graph`] — Theorem 5.3: simulate the vertex algorithm on
//!   `L(G)` through `G` (Lemma 5.2), costing a factor 2 in rounds and up to
//!   `Δ` in message size;
//! * the **native edge variants** — Theorem 5.5: per-edge state mirrored at
//!   both endpoints, with [`kuhn_labels`] replacing the `log* n`-round
//!   defective coloring by an `O(1)`-round labeling (Corollary 5.4),
//!   [`defective`] running the Algorithm 1 while-loop over edges, and
//!   [`legal`] recursing exactly like Algorithm 2 with
//!   [`panconesi_rizzi`]'s `(2Δ-1)`-edge-coloring at the bottom level.

pub mod defective;
pub mod kuhn_labels;
pub mod legal;
pub mod panconesi_rizzi;
pub mod via_line_graph;
