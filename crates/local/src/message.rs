//! Message size accounting.

/// A message exchanged between neighboring vertices.
///
/// Implementors report their encoded size in bits so the simulator can track
/// the maximum message size of a run — the quantity the paper uses to
/// distinguish `O(log n)`-bit algorithms from `O(Δ log n)`-bit ones.
pub trait Message: Clone + std::fmt::Debug {
    /// Encoded size of this message in bits.
    fn size_bits(&self) -> usize;
}

/// Number of bits needed to encode one value from a domain of `domain_size`
/// values (at least 1 bit).
///
/// # Example
///
/// ```
/// use deco_local::bits_for_range;
/// assert_eq!(bits_for_range(1), 1);
/// assert_eq!(bits_for_range(2), 1);
/// assert_eq!(bits_for_range(256), 8);
/// assert_eq!(bits_for_range(257), 9);
/// ```
pub fn bits_for_range(domain_size: u64) -> usize {
    if domain_size <= 2 {
        1
    } else {
        (64 - (domain_size - 1).leading_zeros()) as usize
    }
}

/// Number of bits in the minimal binary encoding of `value` (at least 1).
pub fn bits_for_value(value: u64) -> usize {
    bits_for_range(value.saturating_add(1))
}

impl Message for u64 {
    fn size_bits(&self) -> usize {
        bits_for_value(*self)
    }
}

impl Message for (u64, u64) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl Message for Vec<u64> {
    fn size_bits(&self) -> usize {
        self.iter().map(|v| v.size_bits()).sum::<usize>().max(1)
    }
}

impl Message for () {
    fn size_bits(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(0), 1);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(1 << 20), 20);
    }

    #[test]
    fn value_bits() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(255), 8);
        assert_eq!(bits_for_value(u64::MAX), 64);
    }

    #[test]
    fn composite_messages() {
        assert_eq!((3u64, 5u64).size_bits(), 2 + 3);
        assert_eq!(vec![1u64, 2, 4].size_bits(), 1 + 2 + 3);
        assert_eq!(Vec::<u64>::new().size_bits(), 1);
        assert_eq!(().size_bits(), 1);
    }
}
