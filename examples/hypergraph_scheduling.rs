//! Session scheduling on an `r`-hypergraph via bounded-neighborhood-
//! independence vertex coloring.
//!
//! Sessions (hyperedges) each lock `r` shared resources (vertices); two
//! sessions conflict iff they share a resource. The conflict graph is the
//! line graph `L(H)` of the hypergraph, and Section 1.2 of the paper notes
//! `I(L(H)) <= r` — so Procedure Legal-Color applies with `c = r`, giving
//! each session a time slot with `O(Δ)`-ish many slots in rounds that do not
//! depend on the session count.
//!
//! Run with `cargo run --example hypergraph_scheduling [resources] [sessions] [r] [seed]`.

use deco_core::baselines::greedy::greedy_vertex_color;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::{generators, properties};
use deco_local::Network;

fn main() {
    let mut args = std::env::args().skip(1);
    let resources: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(900);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let h = generators::random_hypergraph(resources, sessions, r, seed);
    let conflict = h.line_graph();
    println!(
        "hypergraph: {} resources, {} sessions of rank ≤ {}, conflict graph Δ = {}",
        h.n(),
        h.edge_count(),
        h.rank(),
        conflict.max_degree()
    );
    if conflict.n() <= 1_000 {
        let ni = properties::neighborhood_independence(&conflict);
        println!("neighborhood independence I(L(H)) = {ni} (paper: ≤ r = {r})");
        assert!(ni <= r);
    }

    let c = r as u64;
    let net = Network::new(&conflict);
    for (label, params) in [
        ("ours b=1 (faster)", LegalParams::log_depth(c, 1)),
        ("ours b=2 (fewer slots)", LegalParams::log_depth(c, 2)),
    ] {
        let run = legal_color(&net, c, params).expect("valid preset");
        assert!(run.coloring.is_proper(&conflict), "no two conflicting sessions share a slot");
        println!(
            "{label:<24} slots = {:>5} (ϑ = {:>6})  rounds = {:>5}  levels = {}",
            run.coloring.palette_size(),
            run.theta,
            run.stats.rounds,
            run.levels.len()
        );
    }

    let greedy = greedy_vertex_color(&conflict);
    println!(
        "{:<24} slots = {:>5}  (centralized reference, Δ+1 bound = {})",
        "greedy",
        greedy.palette_size(),
        conflict.max_degree() + 1
    );
}
