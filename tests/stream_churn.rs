//! PR 3 acceptance tests for the streaming recoloring engine.
//!
//! * **Locality** — incremental repair after a small batch steps only the
//!   repair-region sub-network: repaired-edge, region and message counts
//!   are `O(affected)`, not `O(m)`.
//! * **Bit-identity** — same trace + seed produces the same color history
//!   under every `DECO_THREADS` / `DECO_DELIVERY` setting. The history
//!   hash below is pinned to a constant, and CI runs this file across its
//!   thread matrix, so any engine/thread divergence breaks the pin.
//! * **Equivalence** — after every commit the incremental coloring is
//!   proper and stays within the from-scratch pipeline's palette bound for
//!   the same snapshot.

use deco_core::edge::legal::{edge_color, edge_color_bound, edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace, parse_trace};
use deco_stream::{replay_trace, Recolorer, RepairStrategy};

/// FNV-1a over the full per-commit color history: pins every color of
/// every commit without storing them all in the source.
fn history_hash(reports_colors: &[Vec<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for colors in reports_colors {
        mix(colors.len() as u64);
        for &c in colors {
            mix(c);
        }
    }
    h
}

#[test]
fn incremental_repair_touches_only_the_region() {
    // A graph big enough that O(m) work is unmistakably distinct from
    // O(affected): m ≈ 40k edges, batch of ~30 mutations.
    let trace = churn_trace(10_000, 8, 1, 30, 0xABCD);
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    let m = out.recolorer.graph().m();
    assert!(m > 30_000, "scenario must be large, got m = {m}");
    let churn = &out.reports[1];
    assert_eq!(churn.strategy, RepairStrategy::Incremental);
    // Repaired edges: the ~30 inserted edges (plus possible palette-bound
    // evictions, none expected here), nowhere near m.
    assert!(churn.dirty <= 60, "repair region {} must be O(batch)", churn.dirty);
    assert_eq!(churn.recolored, churn.dirty);
    assert!(churn.region_vertices <= 2 * churn.dirty);
    // Message count is O(affected): orders of magnitude below one sweep of
    // the graph, let alone the from-scratch pipeline's m × rounds.
    assert!(
        churn.stats.messages * 20 < m,
        "{} messages is not O(affected) on m = {m}",
        churn.stats.messages
    );
    // Round count tracks the region schedule, not the graph.
    assert!(churn.stats.rounds < 100, "rounds {} must not scale with m", churn.stats.rounds);
    // And the result is a valid coloring within the snapshot bound.
    let g = out.recolorer.graph();
    let coloring = out.recolorer.coloring();
    assert!(coloring.is_proper(g));
    let bound = edge_color_bound(&edge_log_depth(1), g.max_degree() as u64);
    assert!(coloring.colors().iter().all(|&c| c < bound));
}

#[test]
fn incremental_never_exceeds_from_scratch_palette_bound() {
    // The acceptance equivalence: on every commit's snapshot, the
    // incremental coloring obeys the same ϑ bound the from-scratch
    // pipeline guarantees for that snapshot — checked here against an
    // actual from-scratch run on the final snapshot.
    let trace = churn_trace(600, 6, 4, 15, 0x77);
    let params = edge_log_depth(1);
    let out = replay_trace(&trace, params, MessageMode::Long, 25).unwrap();
    let g = out.recolorer.graph();
    let incremental = out.recolorer.coloring();
    assert!(incremental.is_proper(g));
    let scratch = edge_color(g, params, MessageMode::Long).unwrap();
    assert!(scratch.coloring.is_proper(g));
    let bound = edge_color_bound(&params, g.max_degree() as u64);
    assert_eq!(scratch.theta, bound);
    assert!(incremental.colors().iter().all(|&c| c < bound));
    assert!(incremental.palette_size() as u64 <= bound);
}

#[test]
fn replay_matches_manual_engine_drive() {
    // replay_trace and hand-driving a Recolorer are the same machine.
    let trace = churn_trace(150, 5, 3, 8, 0x31);
    let params = edge_log_depth(1);
    let out = replay_trace(&trace, params, MessageMode::Long, 25).unwrap();
    let mut r = Recolorer::new(trace.n0, params, MessageMode::Long).unwrap();
    let mut reports = Vec::new();
    for batch in trace.batches() {
        for &op in batch {
            deco_stream::queue_op(&mut r, op).unwrap();
        }
        reports.push(r.commit().unwrap());
    }
    assert_eq!(reports, out.reports);
    assert_eq!(r.coloring(), out.recolorer.coloring());
}

/// The pinned trace of the determinism contract: colors of every commit,
/// hashed. CI replays this under `DECO_THREADS` ∈ {1, 2, 8} and forced
/// scan delivery; the constant must hold everywhere. The initial from-
/// scratch commit runs on an n = 3000 graph, which crosses the parallel
/// stepping threshold, so the thread matrix genuinely exercises chunked
/// parallel rounds.
#[test]
fn pinned_color_history_across_thread_counts() {
    let trace = churn_trace(3_000, 8, 3, 25, 0xD1CE);
    let params = edge_log_depth(1);
    let out = replay_trace(&trace, params, MessageMode::Long, 25).unwrap();
    let mut r = Recolorer::new(trace.n0, params, MessageMode::Long).unwrap();
    let mut history = Vec::new();
    for batch in trace.batches() {
        for &op in batch {
            deco_stream::queue_op(&mut r, op).unwrap();
        }
        r.commit().unwrap();
        history.push(r.coloring().into_colors());
    }
    // Sanity: replay agrees with the hand drive before pinning.
    assert_eq!(r.coloring(), out.recolorer.coloring());
    let strategies: Vec<_> = out.reports.iter().map(|rep| rep.strategy).collect();
    assert_eq!(
        strategies,
        vec![
            RepairStrategy::FromScratch,
            RepairStrategy::Incremental,
            RepairStrategy::Incremental,
            RepairStrategy::Incremental,
        ]
    );
    assert_eq!(history_hash(&history), PINNED_HISTORY_HASH);
    // Stats are part of the contract too: pin the totals.
    let total = out.reports.iter().fold(deco_local::RunStats::zero(), |acc, r| acc + r.stats);
    assert_eq!((total.rounds, total.messages), PINNED_TOTALS);
}

const PINNED_HISTORY_HASH: u64 = 6_594_720_363_075_280_134;
/// Deliberate re-pin (PR 5): early halting in the repair pipelines cut the
/// round total 126 → 118; the message total and the color-history hash
/// above are unchanged — exactly the contract of the halting knob.
const PINNED_TOTALS: (usize, usize) = (118, 193_242);

#[test]
fn trace_text_roundtrip_replays_identically() {
    let trace = churn_trace(200, 6, 2, 10, 5);
    let text = deco_graph::trace::to_text(&trace);
    let back = parse_trace(&text).unwrap();
    assert_eq!(back, trace);
    let a = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    let b = replay_trace(&back, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.recolorer.coloring(), b.recolorer.coloring());
}

#[test]
fn net_churn_matches_replayed_deltas() {
    // Trace::net_churn is exactly what the engine observes per commit.
    let trace = churn_trace(200, 6, 3, 10, 0x21);
    let churn = trace.net_churn();
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    assert_eq!(churn.len(), out.reports.len());
    for (c, rep) in churn.iter().zip(&out.reports) {
        assert_eq!((c.inserted, c.deleted), (rep.inserted, rep.deleted), "commit {}", rep.commit);
    }
}

#[test]
fn capacity_fallback_surfaces_extra_deletions() {
    // On a near-saturated graph (n=6, Δ≤3 caps m at 9) the generator's
    // capacity fallback must delete extra edges to make room for the
    // requested insertions. The extra churn is no longer just documented:
    // net_churn surfaces it, and the replayed engine sees the same counts.
    let trace = churn_trace(6, 3, 4, 2, 2);
    let churn = trace.net_churn();
    let nominal = 2usize;
    // Off saturation every churn commit nets inserted == deleted (m is
    // preserved); the fallback's extra deletions show up as a net shrink.
    assert!(
        churn[1..].iter().any(|c| c.deleted > c.inserted),
        "fallback did not fire: net churn {churn:?}"
    );
    for c in &churn[1..] {
        assert!(c.inserted <= nominal, "insert phase never exceeds the request");
        assert!(c.deleted >= c.inserted, "net deletions = request + fallback extras");
    }
    // And the engine replays it cleanly, reporting the same net effect.
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    for (c, rep) in churn.iter().zip(&out.reports) {
        assert_eq!((c.inserted, c.deleted), (rep.inserted, rep.deleted), "commit {}", rep.commit);
    }
    assert!(out.recolorer.coloring().is_proper(out.recolorer.graph()));
}

#[test]
fn net_churn_is_label_based_across_shrink() {
    // Documented limitation: inside a shrink batch, pair labels change
    // numbering, so net_churn counts by label while the replayed delta
    // nets physical edges. Here (4,5) is deleted pre-shrink and the same
    // physical edge reinserted as (3,4) post-shrink: net_churn sees one
    // delete + one insert, the engine's CommitDelta nets to zero.
    let text = "t 7\n+ 1 2\n+ 2 3\n+ 4 5\n+ 5 6\n+ 4 6\ncommit\n- 4 5\nshrink\n+ 3 4\ncommit\n";
    let trace = parse_trace(text).unwrap();
    let churn = trace.net_churn();
    assert_eq!((churn[1].inserted, churn[1].deleted), (1, 1), "label-based accounting");
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    assert_eq!((out.reports[1].inserted, out.reports[1].deleted), (0, 0), "physical net is zero");
    assert!(out.recolorer.coloring().is_proper(out.recolorer.graph()));
}

#[test]
fn shrink_traces_replay_and_stay_proper() {
    // A growth workload with periodic shrink compactions: vertices come
    // and go, the coloring stays proper and the vertex set stays compact.
    let text = "t 4\n+ 0 1\n+ 1 2\ncommit\nv 2\n+ 3 4\n+ 4 5\ncommit\n- 0 1\nshrink\ncommit\n";
    let trace = parse_trace(text).unwrap();
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    let g = out.recolorer.graph();
    // After deleting (0,1), vertex 0 is isolated and shrinks away.
    assert_eq!(g.n(), 5);
    assert_eq!(g.m(), 3);
    assert!(out.recolorer.coloring().is_proper(g));
    // Round-trip including the shrink line.
    assert_eq!(deco_graph::trace::to_text(&trace), text);
}

#[test]
fn threshold_zero_always_runs_from_scratch() {
    let trace = churn_trace(100, 4, 2, 5, 9);
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 0).unwrap();
    for rep in &out.reports {
        assert_eq!(rep.strategy, RepairStrategy::FromScratch);
    }
    assert!(out.recolorer.coloring().is_proper(out.recolorer.graph()));
}
