//! Structural tests of the two edge-coloring routes (native vs line-graph
//! simulation) and of the recursion bookkeeping across the section-6
//! extensions.

use deco_core::edge::legal::{
    edge_color, edge_color_bound, edge_log_depth, edge_next_w, MessageMode,
};
use deco_core::edge::via_line_graph::edge_color_via_line_graph;
use deco_core::legal::legal_color;
use deco_core::params::{next_lambda, LegalParams};
use deco_core::randomized::{randomized_split, randomized_vertex_color};
use deco_core::tradeoff::tradeoff_vertex_color;
use deco_graph::coloring::VertexColoring;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

/// An edge coloring of G and a vertex coloring of L(G) are the same object:
/// running the vertex algorithm on L(G) directly and re-reading it as an
/// edge coloring must be proper, and the edge coloring produced natively
/// must be a proper vertex coloring of L(G).
#[test]
fn edge_and_line_graph_colorings_interchange() {
    let g = generators::random_bounded_degree(90, 9, 71);
    let l = line_graph(&g);

    let native = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    let as_vertex = VertexColoring::new(native.coloring.colors().to_vec());
    assert!(as_vertex.is_proper(&l), "native edge coloring = proper L(G) coloring");

    let via = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
    assert!(via.coloring.is_proper(&g));
    assert_eq!(via.coloring.len(), g.m());
}

/// The recursion bookkeeping formulas match the drivers exactly, level by
/// level, for both the vertex and the edge algorithms.
#[test]
fn recursion_formulas_match_drivers() {
    // Vertex.
    let host = generators::random_bounded_degree(80, 12, 72);
    let l = line_graph(&host);
    let params = LegalParams::log_depth(2, 1);
    let net = Network::new(&l);
    let run = legal_color(&net, 2, params).unwrap();
    let mut lam = l.max_degree() as u64;
    for t in &run.levels {
        assert_eq!(t.lambda_out, next_lambda(2, params.b, params.p, t.lambda_in));
        assert_eq!(t.lambda_in, lam);
        lam = t.lambda_out;
    }
    assert_eq!(run.bottom_lambda, params.bottom_lambda(2, l.max_degree() as u64));
    assert_eq!(run.levels.len() as u32, params.depth(2, l.max_degree() as u64));

    // Edge.
    let eparams = edge_log_depth(1);
    let g = generators::random_bounded_degree(260, eparams.lambda as usize + 12, 73);
    let erun = edge_color(&g, eparams, MessageMode::Long).unwrap();
    let mut w = g.max_degree() as u64;
    for t in &erun.levels {
        assert_eq!(t.w_out, edge_next_w(eparams.b, eparams.p, t.w_in));
        assert_eq!(t.w_in, w);
        w = t.w_out;
    }
    assert_eq!(erun.theta, edge_color_bound(&eparams, g.max_degree() as u64));
}

/// §6.1 split arithmetic: classes ≈ Δ/ln n, clamped bound, and the runs
/// expose whether the w.h.p. event held.
#[test]
fn randomized_split_classes_scale() {
    let (c1, b1) = randomized_split(1 << 10, 100);
    let (c2, b2) = randomized_split(1 << 10, 200);
    assert!(c2 >= 2 * c1 - 1, "classes scale linearly in Δ");
    // The class-degree bound is ⌈6e·ln n⌉ clamped to Δ: at Δ = 100 the
    // clamp bites, at Δ = 200 the log-term does.
    assert_eq!(b1, 100);
    assert!(b2 > b1 && b2 <= 200);

    let host = generators::random_bounded_degree(120, 12, 74);
    let l = line_graph(&host);
    let net = Network::new(&l);
    let run = randomized_vertex_color(&net, 2, LegalParams::log_depth(2, 1), 9).unwrap();
    // Either the bound held (overwhelmingly likely) or the run still
    // produced a proper coloring.
    assert!(run.inner.coloring.is_proper(&l));
    if run.class_bound_held {
        // Measured class degrees must respect the declared bound.
        for v in 0..l.n() {
            let mine = run.inner.coloring.color(v);
            let theta_per = run.inner.theta / run.classes;
            assert!(mine / theta_per < run.classes);
        }
    }
}

/// §6.2: the tradeoff's total palette ϑ equals classes × per-class ϑ and
/// the defective split is a hard bound.
#[test]
fn tradeoff_palette_accounting() {
    let host = generators::random_bounded_degree(150, 14, 75);
    let l = line_graph(&host);
    let net = Network::new(&l);
    let params = LegalParams::log_depth(2, 1);
    let run = tradeoff_vertex_color(&net, 2, 4, params).unwrap();
    assert!(run.inner.coloring.is_proper(&l));
    // theta of the grouped run counts all classes.
    assert_eq!(
        run.inner.theta % (run.inner.bottom_lambda + 1),
        0,
        "ϑ must be a multiple of the bottom palette"
    );
    // The split respects its hard defect bound: within every class the
    // degree is at most class_degree.
    let theta_per = run.inner.theta / run.classes.max(1);
    let class_of = |v: usize| run.inner.coloring.color(v) / theta_per.max(1);
    for v in 0..l.n() {
        let same = l.neighbors(v).filter(|&u| class_of(u) == class_of(v)).count() as u64;
        assert!(
            same <= run.class_degree,
            "vertex {v}: {same} same-class neighbors > {}",
            run.class_degree
        );
    }
}

/// Lemma 5.2's doubling is visible end to end: the via-line-graph route
/// reports host rounds = 2·native + 1.
#[test]
fn via_line_graph_round_doubling() {
    let g = generators::random_bounded_degree(70, 8, 76);
    let via = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
    assert_eq!(via.host.rounds, 2 * via.native.rounds + 1);
    assert_eq!(via.host.messages, 2 * via.native.messages);
}
