//! Baseline algorithms for the paper's comparison tables.
//!
//! Table 1 compares against Panconesi–Rizzi \[24\] (implemented in full at
//! [`crate::edge::panconesi_rizzi`]) and the Barenboim–Elkin forest-
//! decomposition approach \[5\] ([`forest_decomposition`], a simplified
//! reimplementation preserving its inherent `log n` round dependence).
//! Table 2 compares against randomized algorithms [29, 18]
//! ([`randomized_trial`], a standard randomized-trial edge coloring with
//! `Θ(log n)` rounds w.h.p.). [`greedy`] provides centralized quality
//! references. Substitutions are documented in DESIGN.md.

pub mod forest_decomposition;
pub mod greedy;
pub mod misra_gries;
pub mod randomized_trial;
