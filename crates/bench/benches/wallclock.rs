//! Wall-clock benchmarks of the simulator and the main colorers.
//!
//! These complement the table harnesses (which measure *rounds*, the
//! paper's cost metric) with implementation-level throughput numbers.
//! Plain `fn main()` harness (the build environment has no criterion):
//! median of a few samples after a warm-up, printed as a table.

use deco_bench::{banner, millis, time_median, Table};
use deco_core::code_reduction::linial_coloring;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;
use std::hint::black_box;

fn main() {
    banner("wallclock", "median wall-clock of the simulator and colorers");
    let t = Table::new(&["benchmark", "param", "median ms"], &[26, 8, 12]);

    for &n in &[200usize, 800] {
        let g = generators::random_bounded_degree(n, 8, 1);
        let (_, d) = time_median(5, || {
            let net = Network::new(black_box(&g));
            black_box(linial_coloring(&net))
        });
        t.row(&["linial".to_string(), format!("n={n}"), millis(d)]);
    }

    for &delta in &[8usize, 32] {
        let g = generators::random_bounded_degree(300, delta, 2);
        let (_, d) = time_median(5, || black_box(pr_edge_color(black_box(&g))));
        t.row(&["panconesi_rizzi".to_string(), format!("d={delta}"), millis(d)]);
    }

    let params = edge_log_depth(1);
    for &delta in &[16usize, 48] {
        let g = generators::random_bounded_degree(300, delta, 3);
        let (_, d) =
            time_median(3, || black_box(edge_color(black_box(&g), params, MessageMode::Long)));
        t.row(&["edge_color".to_string(), format!("d={delta}"), millis(d)]);
    }

    let l = line_graph(&generators::random_bounded_degree(150, 12, 4));
    let (_, d) = time_median(3, || {
        let net = Network::new(black_box(&l));
        black_box(legal_color(&net, 2, LegalParams::log_depth(2, 1)))
    });
    t.row(&["legal_color_line_graph".to_string(), "c=2".to_string(), millis(d)]);
}
