//! TDMA link scheduling in a wireless mesh under churn — the paper's
//! packet-routing motivation, running as a *steady-state* system.
//!
//! Radios are placed in the unit square and can talk within a fixed radius
//! (a unit-disk graph: bounded growth, neighborhood independence at most
//! 5 — Section 1.2's second graph family). Two links sharing a radio cannot
//! transmit in the same TDMA slot, so a legal edge coloring is a collision-
//! free slot assignment.
//!
//! Real meshes are not one-shot: links fade and recover as radios move.
//! This example drives `deco-stream`'s incremental recoloring engine with a
//! link-flapping churn workload — each epoch a batch of links drops and a
//! previously dropped batch comes back, and only the *repair region* is
//! rescheduled, not the whole mesh. The closing comparison shows what the
//! same epochs would cost if every change triggered a from-scratch
//! rescheduling run.
//!
//! Run with `cargo run --example packet_routing [radios] [radius_millis] [epochs] [seed]`.

use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_graph::{generators, properties, Vertex};
use deco_local::RunStats;
use deco_stream::Recolorer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let radios: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let radius_millis: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    let g = generators::unit_disk(radios, radius_millis as f64 / 1000.0, seed);
    println!(
        "mesh: {} radios, {} links, Δ = {}, components = {}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.component_count()
    );
    if g.n() <= 200 {
        println!(
            "neighborhood independence I(G) = {} (≤ 5 for unit disks)",
            properties::neighborhood_independence(&g)
        );
    }

    let params = edge_log_depth(1);
    let mut engine = Recolorer::from_graph(g.clone(), params, MessageMode::Long)
        .expect("preset params are valid");
    let initial = engine.commit().expect("initial schedule");
    println!(
        "\ninitial schedule: {} slots in use (bound {}), {} rounds, {} msgs",
        engine.coloring().palette_size(),
        initial.color_bound,
        initial.stats.rounds,
        initial.stats.messages
    );

    if g.m() == 0 {
        println!("\nno links in range — nothing to schedule or churn");
        return;
    }

    // Link flapping: each epoch, `flap` random live links fade and the
    // links that faded in the previous epoch recover.
    let flap = (g.m() / 50).max(1); // 2% of links per epoch
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf1a9);
    let mut down: Vec<(Vertex, Vertex)> = Vec::new();
    let mut steady = RunStats::zero();
    let mut scratch_rounds_sum = 0usize;
    println!(
        "\n{:>5} {:>6} {:>6} {:>8} {:>12} {:>8} {:>9} {:>7}  (per epoch)",
        "epoch", "fade", "recov", "repaired", "strategy", "rounds", "msgs", "slots"
    );
    for epoch in 0..epochs {
        for &(u, v) in &down {
            engine.insert_edge(u, v).expect("recovered link is absent");
        }
        let recovered = down.len();
        // Fade from the committed snapshot (recoveries above are still
        // queued); a tiny mesh can be momentarily all-down — skip fading.
        let live: Vec<(Vertex, Vertex)> = engine.graph().edges().collect();
        down = if live.is_empty() {
            Vec::new()
        } else {
            (0..flap)
                .map(|_| live[rng.gen_range(0..live.len())])
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        };
        for &(u, v) in &down {
            // A link picked here may have just been re-queued for insert;
            // delete-then-reinsert within a batch is legal either way.
            engine.delete_edge(u, v).expect("live link exists");
        }
        let rep = engine.commit().expect("valid flap batch");
        steady += rep.stats;
        // What a one-shot scheduler would pay for the same epoch.
        let scratch = edge_color(engine.graph(), params, MessageMode::Long).expect("valid params");
        scratch_rounds_sum += scratch.stats.rounds;
        println!(
            "{:>5} {:>6} {:>6} {:>8} {:>12} {:>8} {:>9} {:>7}",
            epoch,
            down.len(),
            recovered,
            rep.recolored,
            rep.strategy.to_string(),
            rep.stats.rounds,
            rep.stats.messages,
            engine.coloring().palette_size(),
        );
        assert!(engine.coloring().is_proper(engine.graph()), "schedule must stay collision-free");
    }

    println!(
        "\nsteady state over {epochs} epochs: {} rounds, {} control msgs total;",
        steady.rounds, steady.messages
    );
    println!(
        "a from-scratch rescheduler would have spent {scratch_rounds_sum} rounds \
         (plus {} msgs per epoch over every link),",
        initial.stats.messages
    );
    println!(
        "so incremental repair keeps the radios' control traffic proportional to the \
         links that actually changed."
    );
}
