//! A mutable overlay over the immutable CSR [`Graph`].
//!
//! Every algorithm in this workspace runs on the immutable [`Graph`], whose
//! CSR layout is what makes the simulator's slot delivery zero-allocation.
//! Streaming workloads mutate the topology, so [`MutableGraph`] keeps the
//! graph as a *committed snapshot plus a batch of pending mutations*:
//! mutations are queued with [`MutableGraph::insert_edge`],
//! [`MutableGraph::delete_edge`], [`MutableGraph::add_vertex`],
//! [`MutableGraph::set_ident`] and [`MutableGraph::shrink_isolated`], and
//! [`MutableGraph::commit`] applies the whole batch atomically.
//!
//! # Delta-CSR commits
//!
//! A commit does **not** rebuild the snapshot from its edge list. It replays
//! the batch against a sparse overlay to derive the net insert/delete
//! lists, then patches the CSR with [`Graph::patched`]: only the adjacency
//! of touched vertices is spliced, everything else is shifted in linear
//! copies, and the result is bit-identical to a [`Graph::from_edges`]
//! rebuild — same edge indices, slots and mirror slots — at memcpy-class
//! cost instead of hash-plus-sort cost. The pre-delta path survives as
//! [`MutableGraph::commit_rebuild`], the differential oracle benches and
//! tests compare against (the same role the simulator's `Engine::Naive`
//! plays for slot delivery).
//!
//! Batches containing a [`MutableGraph::shrink_isolated`] compaction
//! renumber vertices, which no patch can express; those commits take the
//! rebuild path by design (a compaction is an explicit `O(n + m)` event).
//!
//! Commits are **atomic**: if any queued operation is invalid (range,
//! self-loop, duplicate insert, missing delete, identifier clash), the
//! committed state is left untouched and the whole batch is discarded, so a
//! failed commit never leaves a half-applied topology behind. The returned
//! [`CommitDelta`] lists the *net* effect — an edge deleted and re-inserted
//! within one batch appears in neither list, which is exactly what the
//! incremental recoloring engine wants (its color is still valid) — plus
//! the stable [`CommitDelta::edge_origin`] map that lets per-edge state be
//! carried across the commit by edge slot instead of endpoint matching.

use crate::{Graph, GraphError, Vertex};
use deco_probe::{Event, Probe};
// tidy: allow(hash-iter) — commit replay uses hash containers only for
// membership and per-pair overlay flags; every iteration result is
// sorted (sort_unstable) before it can reach deltas or the graph.
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One queued mutation (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u32, u32),
    Delete(u32, u32),
    AddVertex,
    SetIdent(u32, u64),
    Shrink,
}

/// The net effect of one committed mutation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitDelta {
    /// Edges present after the commit that were absent before, as
    /// normalized `(u, v)` pairs with `u < v`, sorted, in the post-commit
    /// numbering.
    pub inserted: Vec<(Vertex, Vertex)>,
    /// Edges absent after the commit that were present before, normalized
    /// and sorted, in the pre-commit numbering (the two numberings differ
    /// only when the batch shrank).
    pub deleted: Vec<(Vertex, Vertex)>,
    /// Vertices added by the batch.
    pub added_vertices: usize,
    /// For each edge of the new snapshot, the edge index it had in the old
    /// snapshot, or [`Graph::NO_EDGE_ORIGIN`] for newly inserted edges.
    ///
    /// This is the stable-slot carry map: per-edge state (the streaming
    /// engine's colors) moves across the commit with one indexed copy per
    /// edge, no endpoint-pair matching.
    pub edge_origin: Vec<u32>,
    /// Vertices removed by [`MutableGraph::shrink_isolated`] compactions in
    /// this batch (0 otherwise).
    pub removed_vertices: usize,
    /// When the batch renumbered vertices (a shrink removed at least one),
    /// maps each post-commit vertex to its pre-commit index; `None` entries
    /// are vertices added by this batch. `None` when no renumbering
    /// happened, in which case vertex indices are unchanged.
    pub vertex_map: Option<Vec<Option<Vertex>>>,
    /// Bytes this commit wrote into the committed representation, counted
    /// by [`Graph::full_rewrite_bytes`]: both full-rewrite paths
    /// ([`MutableGraph::commit`] via [`Graph::patched`] and
    /// [`MutableGraph::commit_rebuild`]) rewrite every array, so they
    /// report the same value for the same batch (0 for an empty batch,
    /// which short-circuits). The segmented engine
    /// ([`crate::SegmentedGraph`]) counts its actual per-segment writes in
    /// the same currency — that differential is what the `pr7_segments`
    /// bench gates on.
    pub commit_bytes: usize,
}

impl CommitDelta {
    /// The old edge index carried into new edge `e`, if any.
    pub fn origin_of(&self, e: usize) -> Option<usize> {
        let src = self.edge_origin[e];
        (src != Graph::NO_EDGE_ORIGIN).then_some(src as usize)
    }
}

/// A graph under batched mutation. See the module docs.
///
/// # Example
///
/// ```
/// use deco_graph::MutableGraph;
///
/// let mut mg = MutableGraph::new(3);
/// mg.insert_edge(0, 1)?;
/// mg.insert_edge(1, 2)?;
/// let delta = mg.commit()?;
/// assert_eq!(delta.inserted.len(), 2);
/// assert_eq!(mg.graph().m(), 2);
///
/// mg.delete_edge(0, 1)?;
/// let v = mg.add_vertex();
/// mg.insert_edge(2, v)?;
/// let delta = mg.commit()?;
/// assert_eq!(delta.deleted, vec![(0, 1)]);
/// assert_eq!(delta.inserted, vec![(2, 3)]);
/// assert_eq!(mg.graph().n(), 4);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MutableGraph {
    /// The committed snapshot.
    snapshot: Graph,
    /// Queued, not-yet-committed operations, in queue order.
    pending: Vec<Op>,
    /// Vertices added by pending ops (so queued inserts can address them).
    pending_vertices: usize,
    /// Observability sink: both commit paths emit one
    /// [`Event::CommitBytes`] per non-empty batch (default: disabled).
    probe: Arc<dyn Probe>,
}

impl MutableGraph {
    /// An edgeless mutable graph with `n` vertices.
    pub fn new(n: usize) -> MutableGraph {
        MutableGraph::from_graph(Graph::empty(n))
    }

    /// Wraps an existing graph as the committed state.
    pub fn from_graph(snapshot: Graph) -> MutableGraph {
        MutableGraph {
            snapshot,
            pending: Vec::new(),
            pending_vertices: 0,
            probe: deco_probe::null(),
        }
    }

    /// Attaches an observability probe (default: the shared disabled
    /// [`deco_probe::NullProbe`]). With an enabled probe every non-empty
    /// committed batch emits one [`Event::CommitBytes`] carrying the bytes
    /// written into the committed representation — the same value as
    /// [`CommitDelta::commit_bytes`], as the write happens.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.probe = probe;
    }

    /// Emission helper shared by both commit paths.
    fn emit_commit_bytes(&self, bytes: usize) {
        if self.probe.enabled() {
            self.probe.emit(Event::CommitBytes { bytes: bytes as u64 });
        }
    }

    /// The current committed snapshot (pending operations excluded).
    pub fn graph(&self) -> &Graph {
        &self.snapshot
    }

    /// Number of vertices the next commit will have (committed + pending),
    /// ignoring any queued [`MutableGraph::shrink_isolated`] compactions
    /// (their removal count is only known at commit time).
    pub fn next_n(&self) -> usize {
        self.snapshot.n() + self.pending_vertices
    }

    /// Number of queued, uncommitted operations.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Queues insertion of the undirected edge `(u, v)`.
    ///
    /// Endpoints may be vertices added earlier in the same batch. Whether
    /// the edge already exists is checked at [`MutableGraph::commit`] time
    /// (the batch may delete it first).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range for the
    /// post-batch vertex count or the edge is a self-loop.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Insert(u, v));
        Ok(())
    }

    /// Queues deletion of the undirected edge `(u, v)`.
    ///
    /// Existence is checked at [`MutableGraph::commit`] time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range for the
    /// post-batch vertex count or the edge is a self-loop.
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        let (u, v) = self.check_pair(u, v)?;
        self.pending.push(Op::Delete(u, v));
        Ok(())
    }

    /// Queues addition of one vertex and returns its index (valid from the
    /// next commit on, but usable as an endpoint within this batch).
    ///
    /// The new vertex receives the smallest identifier `>= index + 1` not
    /// already in use — exactly `index + 1` (the classic default scheme)
    /// unless identifiers were customized or a shrink compaction left
    /// survivors holding higher identifiers. Override with
    /// [`MutableGraph::set_ident`] for full control.
    pub fn add_vertex(&mut self) -> Vertex {
        self.pending.push(Op::AddVertex);
        self.pending_vertices += 1;
        self.next_n() - 1
    }

    /// Queues an identifier override for `v` (applied after vertex
    /// additions of the same batch, in queue order). Distinctness is
    /// validated at commit time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `v` is out of range for the post-batch
    /// vertex count.
    pub fn set_ident(&mut self, v: Vertex, ident: u64) -> Result<(), GraphError> {
        if v >= self.next_n() {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.next_n() });
        }
        self.pending.push(Op::SetIdent(v as u32, ident));
        Ok(())
    }

    /// Queues a compaction: at this point of the batch, every vertex with
    /// no incident edge is removed and the survivors are renumbered (order
    /// preserved, identifiers carried). Later operations in the same batch
    /// address the compacted numbering.
    ///
    /// Long-running growth workloads accumulate isolated vertices, which
    /// are harmless for correctness but cost `O(n)` per commit; this is the
    /// trace format's `shrink` op. A batch containing a shrink commits via
    /// the rebuild path (renumbering defeats CSR patching by design).
    pub fn shrink_isolated(&mut self) {
        self.pending.push(Op::Shrink);
    }

    /// Discards all queued operations, keeping the committed state.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
        self.pending_vertices = 0;
    }

    fn check_pair(&self, u: Vertex, v: Vertex) -> Result<(u32, u32), GraphError> {
        let n = self.next_n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok(if u < v { (u as u32, v as u32) } else { (v as u32, u as u32) })
    }

    /// Applies the queued batch atomically via the delta-CSR patch
    /// ([`Graph::patched`]) and returns the net delta. Batches containing a
    /// shrink compaction route to [`MutableGraph::commit_rebuild`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for the first invalid operation (inserting an
    /// edge that exists, deleting one that does not, identifier clashes).
    /// On error the committed state is unchanged and the batch is
    /// discarded.
    pub fn commit(&mut self) -> Result<CommitDelta, GraphError> {
        if self.pending.is_empty() {
            return Ok(self.empty_batch_delta());
        }
        if self.pending.contains(&Op::Shrink) {
            return self.commit_rebuild();
        }
        let old = &self.snapshot;
        let added_vertices = self.pending_vertices;
        let n_new = old.n() + added_vertices;
        // Replay the batch against the snapshot plus a sparse overlay of
        // the touched pairs: `(was, now)` existence per pair. O(batch), not
        // O(m) — the committed edge set is never materialized.
        // tidy: allow(hash-iter) — iterated once below, then sorted
        // (sort_unstable) before anything reads the delta.
        let mut overlay: HashMap<(u32, u32), (bool, bool)> = HashMap::new();
        let mut ident_ops: Vec<(usize, u64)> = Vec::new();
        let mut replay = || -> Result<(), GraphError> {
            for &op in &self.pending {
                match op {
                    Op::Insert(u, v) => {
                        let slot = overlay.entry((u, v)).or_insert_with(|| {
                            let was = old.has_edge(u as usize, v as usize);
                            (was, was)
                        });
                        if slot.1 {
                            return Err(GraphError::DuplicateEdge { u: u as usize, v: v as usize });
                        }
                        slot.1 = true;
                    }
                    Op::Delete(u, v) => {
                        let slot = overlay.entry((u, v)).or_insert_with(|| {
                            let was = old.has_edge(u as usize, v as usize);
                            (was, was)
                        });
                        if !slot.1 {
                            return Err(GraphError::MissingEdge { u: u as usize, v: v as usize });
                        }
                        slot.1 = false;
                    }
                    Op::AddVertex => {}
                    Op::SetIdent(v, ident) => ident_ops.push((v as usize, ident)),
                    // INVARIANT: shrink batches are routed to the rebuild path above, so apply never sees one.
                    Op::Shrink => unreachable!("shrink batches take the rebuild path"),
                }
            }
            Ok(())
        };
        if let Err(e) = replay() {
            self.discard_pending();
            return Err(e);
        }
        let mut inserted: Vec<(Vertex, Vertex)> = Vec::new();
        let mut deleted: Vec<(Vertex, Vertex)> = Vec::new();
        for (&(u, v), &(was, now)) in &overlay {
            match (was, now) {
                (false, true) => inserted.push((u as usize, v as usize)),
                (true, false) => deleted.push((u as usize, v as usize)),
                _ => {}
            }
        }
        inserted.sort_unstable();
        deleted.sort_unstable();
        // Identifiers, replayed in queue order (last override wins). A
        // batch that adds vertices pays one O(n) set build so defaults can
        // skip identifiers already in use — after a shrink compaction the
        // survivors keep their (higher) identifiers, so the naive
        // `index + 1` default would clash and spuriously fail the commit.
        let mut idents = self.snapshot.idents().to_vec();
        if added_vertices > 0 {
            // tidy: allow(hash-iter) — membership probes only; candidate
            // identifiers come from the deterministic `index + 1` walk.
            let mut used: HashSet<u64> = idents.iter().copied().collect();
            for &op in &self.pending {
                match op {
                    Op::AddVertex => {
                        let mut c = idents.len() as u64 + 1;
                        while !used.insert(c) {
                            c += 1;
                        }
                        idents.push(c);
                    }
                    Op::SetIdent(v, ident) => {
                        used.insert(ident);
                        idents[v as usize] = ident;
                    }
                    _ => {}
                }
            }
        } else {
            for &(v, ident) in &ident_ops {
                idents[v] = ident;
            }
        }
        debug_assert_eq!(idents.len(), n_new);
        match self.snapshot.patched(&inserted, &deleted, added_vertices, idents) {
            Ok((graph, edge_origin)) => {
                let commit_bytes = Graph::full_rewrite_bytes(graph.n(), graph.m());
                self.emit_commit_bytes(commit_bytes);
                self.snapshot = graph;
                self.discard_pending();
                Ok(CommitDelta {
                    inserted,
                    deleted,
                    added_vertices,
                    edge_origin,
                    removed_vertices: 0,
                    vertex_map: None,
                    commit_bytes,
                })
            }
            Err(e) => {
                self.discard_pending();
                Err(e)
            }
        }
    }

    /// The no-op delta an empty batch commits to: identity origin map, zero
    /// bytes written. Both commit paths short-circuit here, so neither pays
    /// the full splice/rebuild pass for a batch with nothing in it.
    fn empty_batch_delta(&self) -> CommitDelta {
        CommitDelta {
            inserted: Vec::new(),
            deleted: Vec::new(),
            added_vertices: 0,
            edge_origin: (0..self.snapshot.m() as u32).collect(),
            removed_vertices: 0,
            vertex_map: None,
            commit_bytes: 0,
        }
    }

    /// Applies the queued batch by rebuilding the snapshot from scratch
    /// (`Graph::from_edges`, `O(m log m)`): the pre-delta-CSR commit path,
    /// kept as the differential oracle benches and tests compare
    /// [`MutableGraph::commit`] against, and the designated path for
    /// batches that renumber vertices (shrink compactions).
    ///
    /// Outcomes — snapshot, delta, and error on invalid batches — are
    /// bit-identical to [`MutableGraph::commit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MutableGraph::commit`].
    pub fn commit_rebuild(&mut self) -> Result<CommitDelta, GraphError> {
        if self.pending.is_empty() {
            return Ok(self.empty_batch_delta());
        }
        let old = &self.snapshot;
        let added_vertices = self.pending_vertices;
        // Working state in the *current* numbering, which shrink ops may
        // compact mid-batch.
        let mut n_cur = old.n();
        // tidy: allow(hash-iter) — membership probes during queue-order
        // replay; the rebuilt edge list is re-derived in sorted order.
        let mut set: HashSet<(u32, u32)> = old.edges().map(|(u, v)| (u as u32, v as u32)).collect();
        let mut idents: Vec<u64> = old.idents().to_vec();
        // Identifiers claimed so far (pre-batch ones included, even if a
        // shrink later removes their vertex — freed values are reusable
        // from the *next* batch on): the same conservative default rule as
        // the delta path, so the two paths assign identical defaults.
        // tidy: allow(hash-iter) — membership probes only, as above.
        let mut used_idents: Option<HashSet<u64>> =
            (added_vertices > 0).then(|| idents.iter().copied().collect());
        let mut back_to_old: Vec<Option<Vertex>> = (0..n_cur).map(Some).collect();
        let mut removed_vertices = 0usize;
        let mut renumbered = false;
        // Applying in queue order makes delete-then-reinsert legal,
        // last-override-wins for identifiers, and gives shrink compactions
        // a well-defined point in the batch.
        let mut replay = || -> Result<(), GraphError> {
            for &op in &self.pending {
                match op {
                    Op::Insert(u, v) => {
                        check_cur_pair(u, v, n_cur)?;
                        if !set.insert((u, v)) {
                            return Err(GraphError::DuplicateEdge { u: u as usize, v: v as usize });
                        }
                    }
                    Op::Delete(u, v) => {
                        check_cur_pair(u, v, n_cur)?;
                        if !set.remove(&(u, v)) {
                            return Err(GraphError::MissingEdge { u: u as usize, v: v as usize });
                        }
                    }
                    Op::AddVertex => {
                        // INVARIANT: used_idents is initialized whenever the batch contains adds, checked just above.
                        let used = used_idents.as_mut().expect("adds imply the set exists");
                        let mut c = idents.len() as u64 + 1;
                        while !used.insert(c) {
                            c += 1;
                        }
                        idents.push(c);
                        back_to_old.push(None);
                        n_cur += 1;
                    }
                    Op::SetIdent(v, ident) => {
                        if (v as usize) >= n_cur {
                            return Err(GraphError::VertexOutOfRange {
                                vertex: v as usize,
                                n: n_cur,
                            });
                        }
                        if let Some(used) = used_idents.as_mut() {
                            used.insert(ident);
                        }
                        idents[v as usize] = ident;
                    }
                    Op::Shrink => {
                        let mut connected = vec![false; n_cur];
                        for &(u, v) in &set {
                            connected[u as usize] = true;
                            connected[v as usize] = true;
                        }
                        let keep: Vec<usize> = (0..n_cur).filter(|&v| connected[v]).collect();
                        if keep.len() == n_cur {
                            continue;
                        }
                        let mut remap = vec![u32::MAX; n_cur];
                        for (new, &old_v) in keep.iter().enumerate() {
                            remap[old_v] = new as u32;
                        }
                        // The remap is monotone, so pairs stay normalized.
                        set = set
                            .iter()
                            .map(|&(u, v)| (remap[u as usize], remap[v as usize]))
                            .collect();
                        idents = keep.iter().map(|&v| idents[v]).collect();
                        back_to_old = keep.iter().map(|&v| back_to_old[v]).collect();
                        removed_vertices += n_cur - keep.len();
                        renumbered = true;
                        n_cur = keep.len();
                    }
                }
            }
            Ok(())
        };
        if let Err(e) = replay() {
            self.discard_pending();
            return Err(e);
        }
        let mut edges: Vec<(usize, usize)> =
            set.into_iter().map(|(u, v)| (u as usize, v as usize)).collect();
        edges.sort_unstable();
        let graph = match Graph::from_edges(n_cur, &edges).and_then(|g| g.with_idents(idents)) {
            Ok(g) => g,
            Err(e) => {
                self.discard_pending();
                return Err(e);
            }
        };
        let commit_bytes = Graph::full_rewrite_bytes(graph.n(), graph.m());
        let delta = if renumbered {
            // Vertices were renumbered: match edges through the back map.
            let mut edge_origin = vec![Graph::NO_EDGE_ORIGIN; graph.m()];
            let mut survived = vec![false; old.m()];
            let mut inserted = Vec::new();
            for (e, (u, v)) in graph.edges().enumerate() {
                let carried = match (back_to_old[u], back_to_old[v]) {
                    (Some(bu), Some(bv)) => old.edge_between(bu, bv),
                    _ => None,
                };
                match carried {
                    Some(oe) => {
                        edge_origin[e] = oe as u32;
                        survived[oe] = true;
                    }
                    None => inserted.push((u, v)),
                }
            }
            let deleted: Vec<(Vertex, Vertex)> = old
                .edges()
                .enumerate()
                .filter(|&(oe, _)| !survived[oe])
                .map(|(_, pair)| pair)
                .collect();
            CommitDelta {
                inserted,
                deleted,
                added_vertices,
                edge_origin,
                removed_vertices,
                vertex_map: Some(back_to_old),
                commit_bytes,
            }
        } else {
            // Net delta and origin map via one sorted merge of the old and
            // new edge lists.
            let mut inserted = Vec::new();
            let mut deleted = Vec::new();
            let mut edge_origin = vec![Graph::NO_EDGE_ORIGIN; graph.m()];
            let mut old_it = old.edges().enumerate().peekable();
            let mut new_it = graph.edges().enumerate().peekable();
            loop {
                match (old_it.peek().copied(), new_it.peek().copied()) {
                    (Some((oe, a)), Some((ne, b))) if a == b => {
                        edge_origin[ne] = oe as u32;
                        old_it.next();
                        new_it.next();
                    }
                    (Some((_, a)), Some((_, b))) if a < b => {
                        deleted.push(a);
                        old_it.next();
                    }
                    (Some(_), Some((_, b))) => {
                        inserted.push(b);
                        new_it.next();
                    }
                    (Some((_, a)), None) => {
                        deleted.push(a);
                        old_it.next();
                    }
                    (None, Some((_, b))) => {
                        inserted.push(b);
                        new_it.next();
                    }
                    (None, None) => break,
                }
            }
            CommitDelta {
                inserted,
                deleted,
                added_vertices,
                edge_origin,
                removed_vertices: 0,
                vertex_map: None,
                commit_bytes,
            }
        };
        self.emit_commit_bytes(commit_bytes);
        self.snapshot = graph;
        self.discard_pending();
        Ok(delta)
    }
}

/// Range check against the *current* (possibly shrunk) vertex count during
/// rebuild replay. For batches without shrinks this can never fire
/// (queue-time checks already validated against the post-batch count); with
/// shrinks, later ops may reference compacted-away indices.
fn check_cur_pair(u: u32, v: u32, n_cur: usize) -> Result<(), GraphError> {
    for w in [u, v] {
        if (w as usize) >= n_cur {
            return Err(GraphError::VertexOutOfRange { vertex: w as usize, n: n_cur });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_atomic_on_error() {
        let mut mg = MutableGraph::new(4);
        mg.insert_edge(0, 1).unwrap();
        mg.commit().unwrap();
        mg.insert_edge(2, 3).unwrap();
        mg.insert_edge(1, 0).unwrap(); // duplicate of committed edge
        assert_eq!(mg.commit().unwrap_err(), GraphError::DuplicateEdge { u: 0, v: 1 });
        // The valid part of the failed batch was discarded too.
        assert_eq!(mg.graph().m(), 1);
        assert_eq!(mg.pending_ops(), 0);
    }

    #[test]
    fn delete_then_reinsert_is_a_net_noop() {
        let mut mg = MutableGraph::new(3);
        mg.insert_edge(0, 1).unwrap();
        mg.insert_edge(1, 2).unwrap();
        mg.commit().unwrap();
        mg.delete_edge(0, 1).unwrap();
        mg.insert_edge(0, 1).unwrap();
        let delta = mg.commit().unwrap();
        assert!(delta.inserted.is_empty());
        assert!(delta.deleted.is_empty());
        // The reinserted edge keeps its identity in the origin map.
        assert_eq!(delta.edge_origin.iter().filter(|&&o| o == Graph::NO_EDGE_ORIGIN).count(), 0);
        assert_eq!(mg.graph().m(), 2);
    }

    #[test]
    fn missing_delete_rejected() {
        let mut mg = MutableGraph::new(3);
        mg.delete_edge(0, 2).unwrap();
        assert_eq!(mg.commit().unwrap_err(), GraphError::MissingEdge { u: 0, v: 2 });
    }

    #[test]
    fn added_vertices_usable_within_batch() {
        let mut mg = MutableGraph::new(2);
        mg.insert_edge(0, 1).unwrap();
        let a = mg.add_vertex();
        let b = mg.add_vertex();
        assert_eq!((a, b), (2, 3));
        mg.insert_edge(a, b).unwrap();
        mg.insert_edge(1, a).unwrap();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.added_vertices, 2);
        assert_eq!(delta.inserted, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(mg.graph().n(), 4);
        assert_eq!(mg.graph().ident(3), 4); // default scheme
    }

    #[test]
    fn ident_overrides_validated_at_commit() {
        let mut mg = MutableGraph::new(3);
        mg.set_ident(0, 10).unwrap();
        mg.set_ident(1, 10).unwrap();
        assert!(matches!(mg.commit(), Err(GraphError::DuplicateIdent { ident: 10 })));
        mg.set_ident(0, 10).unwrap();
        mg.set_ident(0, 7).unwrap(); // last override wins
        mg.commit().unwrap();
        assert_eq!(mg.graph().ident(0), 7);
    }

    #[test]
    fn range_checks_respect_pending_vertices() {
        let mut mg = MutableGraph::new(1);
        assert!(mg.insert_edge(0, 1).is_err());
        let v = mg.add_vertex();
        mg.insert_edge(0, v).unwrap();
        assert!(mg.set_ident(2, 5).is_err());
        mg.commit().unwrap();
        assert_eq!((mg.graph().n(), mg.graph().m()), (2, 1));
    }

    #[test]
    fn self_loops_rejected_immediately() {
        let mut mg = MutableGraph::new(2);
        assert_eq!(mg.insert_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
        assert_eq!(mg.delete_edge(0, 0), Err(GraphError::SelfLoop { vertex: 0 }));
    }

    #[test]
    fn from_graph_preserves_idents() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap().with_idents(vec![5, 6, 7]).unwrap();
        let mut mg = MutableGraph::from_graph(g);
        mg.add_vertex();
        mg.commit().unwrap();
        assert_eq!(mg.graph().idents(), &[5, 6, 7, 4]);
    }

    #[test]
    fn edge_origin_maps_surviving_edges() {
        let mut mg = MutableGraph::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            mg.insert_edge(u, v).unwrap();
        }
        let delta = mg.commit().unwrap();
        assert!(delta.edge_origin.iter().all(|&o| o == Graph::NO_EDGE_ORIGIN));
        // Delete edge 0=(0,1), insert (1,3): indices shift both ways.
        mg.delete_edge(0, 1).unwrap();
        mg.insert_edge(1, 3).unwrap();
        let before = mg.graph().clone();
        let delta = mg.commit().unwrap();
        let after = mg.graph();
        for (e, &src) in delta.edge_origin.iter().enumerate() {
            let pair = after.endpoints(e);
            if src == Graph::NO_EDGE_ORIGIN {
                assert_eq!(pair, (1, 3));
            } else {
                assert_eq!(before.endpoints(src as usize), pair);
            }
        }
        assert_eq!(delta.origin_of(0), Some(1)); // (0,2) was edge 1
    }

    #[test]
    fn commit_and_rebuild_agree() {
        // Drive two engines through identical batches; snapshots and deltas
        // must match bit for bit (the delta-CSR contract).
        let mut fast = MutableGraph::new(5);
        let mut slow = MutableGraph::new(5);
        let batches: Vec<Vec<Op>> = vec![
            vec![Op::Insert(0, 1), Op::Insert(1, 2), Op::Insert(3, 4)],
            vec![Op::Delete(1, 2), Op::Insert(2, 3), Op::AddVertex, Op::Insert(4, 5)],
            vec![Op::SetIdent(0, 99), Op::Insert(0, 2)],
        ];
        for batch in batches {
            for op in batch {
                fast.pending.push(op);
                slow.pending.push(op);
                if op == Op::AddVertex {
                    fast.pending_vertices += 1;
                    slow.pending_vertices += 1;
                }
            }
            let a = fast.commit().unwrap();
            let b = slow.commit_rebuild().unwrap();
            assert_eq!(a, b);
            assert_eq!(fast.graph(), slow.graph());
        }
    }

    #[test]
    fn shrink_drops_isolated_vertices_and_renumbers() {
        let mut mg = MutableGraph::new(5); // vertices 1 and 4 stay isolated
        mg.insert_edge(0, 2).unwrap();
        mg.insert_edge(2, 3).unwrap();
        mg.set_ident(3, 77).unwrap();
        mg.commit().unwrap();
        mg.shrink_isolated();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.removed_vertices, 2);
        assert_eq!(mg.graph().n(), 3);
        assert_eq!(mg.graph().m(), 2);
        // Survivors keep order and identifiers: {0, 2, 3} -> {0, 1, 2}.
        assert_eq!(delta.vertex_map, Some(vec![Some(0), Some(2), Some(3)]));
        assert_eq!(mg.graph().idents(), &[1, 3, 77]);
        // Edges carried 1:1 through the renumbering.
        assert_eq!(delta.inserted, Vec::<(usize, usize)>::new());
        assert_eq!(delta.deleted, Vec::<(usize, usize)>::new());
        assert_eq!(delta.origin_of(0), Some(0));
        assert_eq!(delta.origin_of(1), Some(1));
    }

    #[test]
    fn shrink_mid_batch_renumbers_later_ops() {
        let mut mg = MutableGraph::new(4); // vertex 3 isolated
        mg.insert_edge(0, 1).unwrap();
        mg.insert_edge(1, 2).unwrap();
        mg.commit().unwrap();
        // Shrink first (drops 3), then address the compacted numbering.
        mg.shrink_isolated();
        mg.insert_edge(0, 2).unwrap();
        let delta = mg.commit().unwrap();
        assert_eq!(mg.graph().n(), 3);
        assert_eq!(delta.inserted, vec![(0, 2)]);
        assert_eq!(delta.removed_vertices, 1);
    }

    #[test]
    fn op_referencing_shrunk_vertex_fails_atomically() {
        let mut mg = MutableGraph::new(4); // vertex 3 isolated
        mg.insert_edge(0, 1).unwrap();
        mg.insert_edge(1, 2).unwrap();
        mg.commit().unwrap();
        // Queue-time the index 3 is in range; after the shrink it is not.
        mg.shrink_isolated();
        mg.insert_edge(0, 3).unwrap();
        assert_eq!(mg.commit().unwrap_err(), GraphError::VertexOutOfRange { vertex: 3, n: 3 });
        // Atomic: the shrink was rolled back with the rest of the batch.
        assert_eq!(mg.graph().n(), 4);
        assert_eq!(mg.pending_ops(), 0);
    }

    #[test]
    fn growth_after_shrink_avoids_ident_clashes() {
        // Survivors of a shrink keep their (higher) identifiers; default
        // idents of later additions must skip them instead of clashing.
        let mut mg = MutableGraph::new(3); // vertex 0 isolated, idents {1,2,3}
        mg.insert_edge(1, 2).unwrap();
        mg.commit().unwrap();
        // Shrink and grow in the same batch. After the shrink the survivors
        // are {0, 1} and the added vertex lands at index 2 (ops after a
        // shrink address the compacted numbering; the index returned by
        // add_vertex is the pre-shrink estimate).
        mg.shrink_isolated();
        mg.add_vertex();
        mg.insert_edge(0, 2).unwrap();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.removed_vertices, 1);
        assert_eq!(mg.graph().idents(), &[2, 3, 4], "default skipped the carried idents");
        // And in a later batch (the fast delta path).
        mg.add_vertex();
        mg.commit().unwrap();
        assert_eq!(mg.graph().idents(), &[2, 3, 4, 5]);
        // Oracle parity for the post-shrink growth batch.
        let mut a = mg.clone();
        let mut b = mg.clone();
        a.add_vertex();
        b.add_vertex();
        assert_eq!(a.commit().unwrap(), b.commit_rebuild().unwrap());
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn shrink_on_fully_isolated_graph_empties_it() {
        let mut mg = MutableGraph::new(3);
        mg.shrink_isolated();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.removed_vertices, 3);
        assert_eq!(mg.graph().n(), 0);
        assert_eq!(delta.vertex_map, Some(vec![]));
    }

    #[test]
    fn shrink_noop_when_nothing_isolated() {
        let mut mg = MutableGraph::new(2);
        mg.insert_edge(0, 1).unwrap();
        mg.commit().unwrap();
        mg.shrink_isolated();
        let delta = mg.commit().unwrap();
        assert_eq!(delta.removed_vertices, 0);
        assert_eq!(delta.vertex_map, None);
        assert_eq!(mg.graph().n(), 2);
    }
}
