//! Centralized greedy colorings, used as quality references in benches and
//! tests (not distributed algorithms).

use deco_graph::coloring::{EdgeColoring, VertexColoring};
use deco_graph::Graph;

/// Sequential greedy vertex coloring in vertex order: uses at most `Δ+1`
/// colors.
pub fn greedy_vertex_color(g: &Graph) -> VertexColoring {
    let mut colors = vec![u64::MAX; g.n()];
    for v in 0..g.n() {
        let used: Vec<u64> = g.neighbors(v).map(|u| colors[u]).filter(|&c| c != u64::MAX).collect();
        // INVARIANT: an unbounded color range always contains a color absent from the finite used-set.
        colors[v] = (0..).find(|c| !used.contains(c)).expect("palette is unbounded");
    }
    VertexColoring::new(colors)
}

/// Sequential greedy edge coloring in edge order: uses at most `2Δ-1`
/// colors (often close to Vizing's `Δ+1`). The centralized quality
/// reference of the benches.
pub fn greedy_edge_color(g: &Graph) -> EdgeColoring {
    let mut colors = vec![u64::MAX; g.m()];
    for e in 0..g.m() {
        let (u, v) = g.endpoints(e);
        let used: Vec<u64> = g
            .incident(u)
            .chain(g.incident(v))
            .map(|(_, f)| colors[f])
            .filter(|&c| c != u64::MAX)
            .collect();
        // INVARIANT: an unbounded color range always contains a color absent from the finite used-set.
        colors[e] = (0..).find(|c| !used.contains(c)).expect("palette is unbounded");
    }
    EdgeColoring::new(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn vertex_greedy_within_delta_plus_one() {
        for g in [
            generators::complete(7),
            generators::petersen(),
            generators::random_bounded_degree(120, 9, 5),
        ] {
            let c = greedy_vertex_color(&g);
            assert!(c.is_proper(&g));
            assert!(c.color_bound() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn edge_greedy_within_2delta_minus_one() {
        for g in [
            generators::complete(7),
            generators::star(9),
            generators::random_bounded_degree(120, 9, 5),
        ] {
            let c = greedy_edge_color(&g);
            assert!(c.is_proper(&g));
            assert!(c.palette_size() < 2 * g.max_degree());
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert!(greedy_vertex_color(&g).is_proper(&g));
        assert!(greedy_edge_color(&g).is_empty());
    }
}
