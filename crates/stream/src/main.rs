//! The `deco-stream` front end: replay a churn trace, or generate one.
//!
//! ```text
//! deco-stream <trace-file> [threshold_pct]
//!     Replay a trace, printing one row per commit (repaired edges, region
//!     size, strategy, simulator rounds/messages, wall time) and totals.
//!
//! deco-stream --gen <n> <delta_cap> <commits> <churn> <seed> [out-file]
//!     Generate the canonical seeded churn trace; write it to the file, or
//!     to stdout when no file is given.
//! ```

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace, parse_trace, to_text};
use deco_stream::replay_trace;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deco-stream <trace-file> [threshold_pct]\n       \
         deco-stream --gen <n> <delta_cap> <commits> <churn> <seed> [out-file]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--gen") => generate(&args[1..]),
        Some(path) if !path.starts_with('-') => replay(path, args.get(1)),
        _ => usage(),
    }
}

fn generate(args: &[String]) -> ExitCode {
    let nums: Vec<u64> = args.iter().take(5).filter_map(|a| a.parse().ok()).collect();
    let [n, delta_cap, commits, churn, seed] = nums[..] else {
        return usage();
    };
    let trace = churn_trace(n as usize, delta_cap as usize, commits as usize, churn as usize, seed);
    let text = to_text(&trace);
    match args.get(5) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: n={n} Δ≤{delta_cap}, {} commits ({commits} churn × {churn} edges)",
                trace.commit_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn replay(path: &str, threshold: Option<&String>) -> ExitCode {
    let threshold_pct: u32 = match threshold.map(|t| t.parse()) {
        None => 25,
        Some(Ok(pct)) => pct,
        Some(Err(_)) => return usage(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match parse_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {path}: n0={}, {} commits, repair threshold {threshold_pct}% of m",
        trace.n0,
        trace.commit_count()
    );
    let out = match replay_trace(&trace, edge_log_depth(1), MessageMode::Long, threshold_pct) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "\n{:>6} {:>5} {:>5} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9}",
        "commit", "+e", "-e", "m", "dirty", "region", "strategy", "rounds", "msgs", "wall ms"
    );
    let mut totals = deco_local::RunStats::zero();
    for (rep, wall) in out.reports.iter().zip(&out.wall) {
        totals += rep.stats;
        println!(
            "{:>6} {:>5} {:>5} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9.2}",
            rep.commit,
            rep.inserted,
            rep.deleted,
            rep.m,
            rep.dirty,
            rep.region_vertices,
            rep.strategy.to_string(),
            rep.stats.rounds,
            rep.stats.messages,
            wall.as_secs_f64() * 1e3,
        );
    }
    let g = out.recolorer.graph();
    let coloring = out.recolorer.coloring();
    assert!(coloring.is_proper(g), "final coloring must be proper");
    println!(
        "\nfinal: n={} m={} Δ={}; {} colors in use (bound {}); coloring verified proper",
        g.n(),
        g.m(),
        g.max_degree(),
        coloring.palette_size(),
        out.recolorer.color_bound()
    );
    println!("totals: {totals}");
    ExitCode::SUCCESS
}
