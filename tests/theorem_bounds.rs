//! Integration tests asserting the paper's theorem statements with explicit
//! constants, end to end across the three crates.

use deco_core::code_reduction::linial_coloring;
use deco_core::defective::{defective_color, theorem_3_7_defect};
use deco_core::edge::defective::{edge_defect_bound, MessageMode};
use deco_core::edge::kuhn_labels::{corollary_5_4_defect, kuhn_defective_edge_coloring};
use deco_core::edge::legal::{edge_color, edge_color_bound, edge_log_depth};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::math::{linial_final_palette, log_star};
use deco_core::params::LegalParams;
use deco_core::reduction::delta_plus_one_coloring;
use deco_graph::coloring::VertexColoring;
use deco_graph::generators;
use deco_graph::line_graph::{line_graph, line_graph_max_degree};
use deco_graph::properties::neighborhood_independence;
use deco_local::Network;

/// Lemma 2.1(1): Linial computes a legal O(Δ²)-coloring in O(log* n) time.
#[test]
fn lemma_2_1_1_linial() {
    for (n, cap, seed) in [(200usize, 6usize, 1u64), (400, 10, 2), (100, 3, 3)] {
        let g = generators::random_bounded_degree(n, cap, seed);
        let delta = g.max_degree() as u64;
        let net = Network::new(&g);
        let (colors, palette, stats) = linial_coloring(&net);
        let c = VertexColoring::new(colors);
        assert!(c.is_proper(&g));
        // O(Δ²) with the prime-slack constant: next_prime(Δ+2)² <= (2Δ+8)².
        assert!(palette <= (2 * delta + 8).pow(2));
        assert!(stats.rounds as u32 <= log_star(n as u64) + 4);
    }
}

/// Lemma 2.1(2): a legal (Δ+1)-coloring; our reduction costs
/// O(Δ log Δ) + log* n rounds (documented substitution).
#[test]
fn lemma_2_1_2_delta_plus_one() {
    let g = generators::random_bounded_degree(250, 8, 4);
    let delta = g.max_degree() as u64;
    let net = Network::new(&g);
    let (colors, stats) = delta_plus_one_coloring(&net);
    let c = VertexColoring::new(colors);
    assert!(c.is_proper(&g));
    assert!(c.color_bound() <= delta + 1);
    let m0 = linial_final_palette(g.n() as u64, delta);
    let bound =
        deco_core::reduction::reduction_rounds(m0, delta) + log_star(g.n() as u64) as u64 + 8;
    assert!(stats.rounds as u64 <= bound);
}

/// Theorem 3.7 / Corollary 3.8 on line graphs (c = 2): Procedure
/// Defective-Color computes a ((Λ/(bp) + Λ/p)·c + c)-defective p-coloring.
#[test]
fn theorem_3_7_defective_color() {
    let host = generators::random_bounded_degree(80, 9, 5);
    let l = line_graph(&host);
    assert!(neighborhood_independence(&l) <= 2, "Lemma 5.1");
    let lambda = l.max_degree() as u64;
    for (b, p) in [(1u64, 2u64), (1, 4), (2, 3), (3, 2)] {
        if b * p > lambda {
            continue;
        }
        let net = Network::new(&l);
        let run = defective_color(&net, b, p, lambda);
        let coloring = VertexColoring::new(run.psi);
        assert!(coloring.color_bound() <= p);
        let bound = theorem_3_7_defect(2, b, p, lambda);
        assert!(
            (coloring.defect(&l) as u64) <= bound,
            "b={b} p={p}: defect {} > {bound}",
            coloring.defect(&l)
        );
        // Corollary 3.8 running time: O(p²·b² + log* n) — generous constant.
        let rounds_bound = 64 * (b * p + 4).pow(2) + 4 * log_star(l.n() as u64) as u64 + 64;
        assert!((run.stats.rounds as u64) <= rounds_bound);
    }
}

/// The Section 1.3 headline: for bounded-NI graphs, defect × colors is
/// linear in Δ (Kuhn's general-graph routine pays Δ·p).
#[test]
fn defect_color_product_linear() {
    let host = generators::random_bounded_degree(120, 12, 6);
    let l = line_graph(&host);
    let lambda = l.max_degree() as u64;
    for p in [2u64, 4, 6] {
        let net = Network::new(&l);
        let run = defective_color(&net, 2, p, lambda);
        let defect = VertexColoring::new(run.psi).defect(&l) as u64;
        // product <= ((Λ/(2p) + Λ/p)·2 + 2)·p = 3Λ + 2p.
        assert!(defect * p <= 3 * lambda + 2 * p + lambda);
    }
}

/// Theorem 4.8-shape: legal O(Δ)-ish coloring of bounded-NI graphs with the
/// ϑ = p^r(Λ̂+1) palette of Lemma 4.4, proper on all tested families.
#[test]
fn theorem_4_8_legal_color() {
    let figures = [
        (generators::clique_with_pendants(30), 2u64),
        (line_graph(&generators::random_bounded_degree(60, 8, 7)), 2),
        (generators::unit_disk(120, 0.2, 8), 5),
    ];
    for (g, c) in figures {
        let params = LegalParams::log_depth(c, 1);
        let net = Network::new(&g);
        let run = legal_color(&net, c, params).unwrap();
        assert!(run.coloring.is_proper(&g));
        assert_eq!(run.theta, params.color_bound(c, g.max_degree() as u64));
        // Λ decreases strictly along the recursion (equation (1)).
        let mut last = g.max_degree() as u64;
        for t in &run.levels {
            assert!(t.lambda_out < t.lambda_in);
            assert_eq!(t.lambda_in, last);
            last = t.lambda_out;
        }
    }
}

/// Lemma 5.1 + Section 5 degree bound: I(L(G)) <= 2 and Δ(L) <= 2Δ - 2.
#[test]
fn lemma_5_1_line_graph_facts() {
    for g in [
        generators::random_bounded_degree(60, 7, 9),
        generators::complete(9),
        generators::star(12),
        generators::petersen(),
    ] {
        let l = line_graph(&g);
        assert!(neighborhood_independence(&l) <= 2);
        assert!(l.max_degree() <= 2 * g.max_degree() - 2);
        assert_eq!(l.max_degree(), line_graph_max_degree(&g));
    }
}

/// Corollary 5.4: O(1)-round defective edge coloring with defect 4⌈Δ/p'⌉.
#[test]
fn corollary_5_4_edge_labels() {
    let g = generators::random_bounded_degree(150, 10, 10);
    let delta = g.max_degree() as u64;
    for p in [2u64, 3, 5] {
        let net = Network::new(&g);
        let groups = vec![0u64; g.m()];
        let (phi, palette, stats) = kuhn_defective_edge_coloring(&net, &groups, p, delta);
        assert_eq!(stats.rounds, 1);
        assert_eq!(palette, p * p);
        let ec = deco_graph::coloring::EdgeColoring::new(phi);
        assert!(ec.defect(&g) as u64 <= corollary_5_4_defect(delta, p));
    }
}

/// Panconesi–Rizzi: (2Δ-1) colors in O(Δ) + log* n rounds — the Table 1
/// baseline, with explicit constants 6Δ + cv_rounds(n) + 4.
#[test]
fn panconesi_rizzi_bounds() {
    for (n, cap) in [(150usize, 6usize), (150, 12), (150, 20)] {
        let g = generators::random_bounded_degree(n, cap, 11);
        let delta = g.max_degree();
        let (coloring, stats) = pr_edge_color(&g);
        assert!(coloring.is_proper(&g));
        assert!(coloring.palette_size() < 2 * delta);
        let bound = 6 * delta + deco_core::cole_vishkin::cv_rounds(n as u64) + 4;
        assert!(stats.rounds <= bound, "{} > {bound}", stats.rounds);
    }
}

/// Theorem 5.5: the native edge algorithm is proper, within its declared
/// palette, and its per-level defect tracking is sound.
#[test]
fn theorem_5_5_edge_color() {
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(350, params.lambda as usize + 16, 12);
    let run = edge_color(&g, params, MessageMode::Long).unwrap();
    assert!(run.coloring.is_proper(&g));
    assert!(!run.levels.is_empty(), "Δ above threshold must recurse");
    assert_eq!(run.theta, edge_color_bound(&params, g.max_degree() as u64));
    // The measured class degrees respect every level's W bound implicitly
    // (internal asserts); check the trace contracts.
    for t in &run.levels {
        assert!(t.w_out < t.w_in);
        assert_eq!(t.phi_palette, (params.b * params.p).pow(2));
    }
    // Theorem 3.7 defect bound formula is consistent with the trace.
    assert_eq!(
        run.levels[0].w_out,
        edge_defect_bound(params.b, params.p, g.max_degree() as u64) + 1
    );
}

/// The faithful Theorem 4.6 constants are astronomically large, so at
/// simulatable Δ the recursion never fires and the run degenerates to the
/// bottom-level coloring — still proper, with ϑ = Δ+1. Documented behavior.
#[test]
fn theorem_4_6_faithful_constants_degenerate_gracefully() {
    let params = LegalParams::theorem_4_6(2, 1);
    assert!(params.validate(2).is_ok());
    let l = line_graph(&generators::random_bounded_degree(60, 8, 14));
    let net = Network::new(&l);
    let run = legal_color(&net, 2, params).unwrap();
    assert!(run.coloring.is_proper(&l));
    assert!(run.levels.is_empty(), "λ = 7^6 cannot be exceeded at this scale");
    assert_eq!(run.theta, l.max_degree() as u64 + 1);
}

/// The Theorem 4.8(3) preset (clamped) works end to end.
#[test]
fn theorem_4_8_3_preset_end_to_end() {
    let l = line_graph(&generators::random_bounded_degree(70, 10, 15));
    let params = LegalParams::theorem_4_8_3(l.max_degree() as u64, 2, 1.5);
    let net = Network::new(&l);
    let run = legal_color(&net, 2, params).unwrap();
    assert!(run.coloring.is_proper(&l));
    assert!(run.coloring.color_bound() <= run.theta);
}

/// The rounds shape of Table 1: our edge algorithm grows like
/// levels·(b·p)² + O(λ) + log* n, while PR grows like 6Δ. At large Δ the
/// paper's algorithm wins.
#[test]
fn table_1_crossover_shape() {
    let params = edge_log_depth(1);
    let delta = 2 * params.lambda as usize; // comfortably above threshold
    let g = generators::random_bounded_degree(600, delta, 13);
    let ours = edge_color(&g, params, MessageMode::Long).unwrap();
    let (_, pr_stats) = pr_edge_color(&g);
    assert!(
        ours.stats.rounds < pr_stats.rounds,
        "at Δ = {} ours ({}) must beat PR ({})",
        g.max_degree(),
        ours.stats.rounds,
        pr_stats.rounds
    );
}
