//! The lint registry: every rule `deco-tidy` enforces, each individually
//! allowlistable inline (see the crate docs for the allow syntax).
//!
//! Lints work on the blanked [`scan::SourceFile`] model, so tokens inside
//! comments, doc examples, and string-literal fixtures never fire.

use crate::scan::SourceFile;
use crate::Diagnostic;

/// Every lint name, in reporting order. `tidy: allow(name)` must use one
/// of these (a typo is reported as `allow-syntax`).
pub const LINT_NAMES: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "seeded-rand",
    "probe-gated",
    "unsafe-audit",
    "deprecated-expiry",
    "invariant-panic",
    "readme-crates",
];

/// Crates whose `src/` carries the bit-identical determinism contract:
/// hash containers are banned outright there (iteration order would leak
/// into colorings, transcripts, or counters), not just hash *iteration*.
const DETERMINISTIC_CRATES: &[&str] = &["graph", "core", "local", "stream"];

/// Modules allowed to contain `unsafe`, with the audit rationale. Every
/// site inside them still needs an adjacent `// SAFETY:` comment.
const UNSAFE_MODULES: &[(&str, &str)] = &[
    (
        "crates/serve/src/snapshot.rs",
        "the lock-free Swap snapshot cell (AtomicPtr + manual Arc counts), stress-tested",
    ),
    (
        "crates/bench/benches/pr8_probe.rs",
        "counting global allocator backing the zero-allocation hard assert",
    ),
    (
        "tests/zero_alloc.rs",
        "counting global allocator backing the zero-allocation steady-state pin",
    ),
];

/// Path prefixes quarantined for wall-clock reads: the bench harness is
/// *defined* to measure wall time (and the gate treats wall as
/// non-fatal / `environment`-scoped), so `Instant` is its vocabulary.
const WALL_EXEMPT_PREFIXES: &[&str] = &["crates/bench/"];

/// Nondeterministic entropy entry points: any of these in the tree would
/// silently invalidate every regression pin.
const ENTROPY_TOKENS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Hash-order iteration methods (the part of the hash-container API that
/// leaks nondeterministic order), matched on the same statement line as
/// the `HashMap`/`HashSet` token outside the deterministic crates.
const HASH_ITER_TOKENS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
    ".into_keys()",
    ".into_values()",
];

/// Panic-shaped tokens requiring an `// INVARIANT:` justification in
/// non-test library code.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Where a file sits in the workspace; decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// `crates/<name>/src/**` — library (or shipped-bin) code.
    CrateSrc,
    /// `crates/<name>/{tests,benches}/**`, root `tests/**` — test code.
    TestCode,
    /// `examples/**` — demo code (unsafe/hash/entropy rules still apply).
    Example,
}

fn classify(rel: &str) -> FileKind {
    if rel.starts_with("examples/") {
        FileKind::Example
    } else if rel.starts_with("tests/")
        || (rel.starts_with("crates/") && (rel.contains("/tests/") || rel.contains("/benches/")))
    {
        FileKind::TestCode
    } else {
        FileKind::CrateSrc
    }
}

/// The crate name of `crates/<name>/…` paths.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn in_deterministic_src(rel: &str) -> bool {
    crate_of(rel).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)) && rel.contains("/src/")
}

/// Does `code` contain `token` as a whole word (not an identifier slice)?
fn has_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || !code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok =
            !code[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// Per-line allow state, precomputed from the comments.
struct Allows {
    /// `granted[i]` = lint names allowed on line `i`.
    granted: Vec<Vec<String>>,
    /// Syntax problems found while parsing allow comments.
    problems: Vec<Diagnostic>,
}

/// Parses every `tidy: allow(<lint>) — <justification>` comment and
/// computes which lines it covers: its own line (trailing form) or the
/// next statement (standalone form) — through the first following line
/// whose code ends with `;`, `{`, or `}`, capped at 10 lines.
fn collect_allows(rel: &str, src: &SourceFile) -> Allows {
    let n = src.lines.len();
    let mut granted: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut problems = Vec::new();
    for (i, line) in src.lines.iter().enumerate() {
        // Only a comment *leading* with the marker arms a suppression, so
        // prose that merely mentions the syntax (like this crate's docs)
        // doesn't. Doc comments (`///`) keep their extra slash in the
        // comment text and never match.
        let comment = line.comment.trim();
        let Some(rest) = comment.strip_prefix("tidy: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            problems.push(Diagnostic {
                lint: "allow-syntax",
                path: rel.to_string(),
                line: i + 1,
                message: "unclosed tidy: allow(…)".to_string(),
            });
            continue;
        };
        let name = rest[..close].trim().to_string();
        if !LINT_NAMES.contains(&name.as_str()) {
            problems.push(Diagnostic {
                lint: "allow-syntax",
                path: rel.to_string(),
                line: i + 1,
                message: format!("unknown lint `{name}` in tidy: allow(…)"),
            });
            continue;
        }
        let justification =
            rest[close + 1..].trim_matches(|c: char| c.is_whitespace() || "—–-:".contains(c));
        if justification.len() < 8 {
            problems.push(Diagnostic {
                lint: "allow-syntax",
                path: rel.to_string(),
                line: i + 1,
                message: format!(
                    "tidy: allow({name}) needs a written justification after the closing paren"
                ),
            });
            continue;
        }
        if !line.code.trim().is_empty() {
            // Trailing form: covers this line only.
            granted[i].push(name);
        } else {
            // Standalone form: covers through the end of the next
            // statement.
            let mut j = i + 1;
            let mut budget = 10;
            while j < n && budget > 0 {
                granted[j].push(name.clone());
                let t = src.lines[j].code.trim_end();
                if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
                    break;
                }
                j += 1;
                budget -= 1;
            }
        }
    }
    Allows { granted, problems }
}

/// Is there a comment containing `marker` adjacent to line `i`: on the
/// line itself, or in the contiguous run of comment-only lines directly
/// above it? The walk also steps over lines whose code contains
/// `cluster` (e.g. a `// SAFETY:` block covering two consecutive
/// `unsafe impl` lines), and over up to two plain code lines so a short
/// annotated statement group reads as one audited unit.
fn nearby_comment(src: &SourceFile, i: usize, marker: &str, cluster: &str) -> bool {
    if src.lines[i].comment.contains(marker) {
        return true;
    }
    let mut code_budget = 2;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let line = &src.lines[j];
        if line.comment.contains(marker) {
            return true;
        }
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.is_empty() {
                return false; // blank line ends the adjacent block
            }
            continue; // pure comment line
        }
        if has_token(&line.code, cluster) {
            continue; // same annotated cluster (e.g. stacked unsafe impls)
        }
        if code_budget == 0 {
            return false;
        }
        code_budget -= 1;
    }
    false
}

/// Lints one Rust source file. `rel` is the workspace-relative path (it
/// decides which rules apply); `current_pr` feeds `deprecated-expiry`
/// (the workspace pass derives it from `CHANGES.md`).
pub fn lint_rust_source(rel: &str, text: &str, current_pr: u32) -> Vec<Diagnostic> {
    let src = SourceFile::parse(text);
    let kind = classify(rel);
    let allows = collect_allows(rel, &src);
    let mut out = allows.problems;
    let raw_lines: Vec<&str> = text.lines().collect();

    let allowed = |i: usize, lint: &str| allows.granted[i].iter().any(|g| g == lint);
    let push = |out: &mut Vec<Diagnostic>, lint: &'static str, i: usize, msg: String| {
        out.push(Diagnostic { lint, path: rel.to_string(), line: i + 1, message: msg });
    };

    for (i, line) in src.lines.iter().enumerate() {
        let code = line.code.as_str();

        // seeded-rand: applies everywhere, test code included — a test
        // drawing real entropy is a flaky pin factory.
        for tok in ENTROPY_TOKENS {
            if has_token(code, tok) && !allowed(i, "seeded-rand") {
                push(
                    &mut out,
                    "seeded-rand",
                    i,
                    format!(
                        "`{tok}` is nondeterministic entropy; use the seeded shim \
                         (crates/rand StdRng::seed_from_u64)"
                    ),
                );
            }
        }

        // unsafe-audit: applies everywhere (test allocators included).
        if has_token(code, "unsafe")
            && !code.contains("unsafe_code")
            && !code.contains("unsafe_op_in_unsafe_fn")
            && !allowed(i, "unsafe-audit")
        {
            match UNSAFE_MODULES.iter().find(|(m, _)| *m == rel) {
                None => push(
                    &mut out,
                    "unsafe-audit",
                    i,
                    "`unsafe` outside the audited-module allowlist \
                     (see deco_tidy::lints::UNSAFE_MODULES)"
                        .to_string(),
                ),
                Some(_) => {
                    if !nearby_comment(&src, i, "SAFETY", "unsafe") {
                        push(
                            &mut out,
                            "unsafe-audit",
                            i,
                            "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                        );
                    }
                }
            }
        }

        // deprecated-expiry: non-test code.
        if !line.in_test && code.contains("#[deprecated") && !allowed(i, "deprecated-expiry") {
            // The note string is blanked in `code`; read the raw lines.
            let window = raw_lines[i..raw_lines.len().min(i + 6)].join(" ");
            match parse_remove_by(&window) {
                None => push(
                    &mut out,
                    "deprecated-expiry",
                    i,
                    "#[deprecated] note must name its expiry: `remove-by: PR<N>`".to_string(),
                ),
                Some(n) if current_pr >= n => push(
                    &mut out,
                    "deprecated-expiry",
                    i,
                    format!(
                        "deprecated item expired: tagged remove-by: PR{n}, current PR is \
                         {current_pr} — delete it"
                    ),
                ),
                Some(_) => {}
            }
        }

        if line.in_test {
            continue; // the remaining lints target non-test code
        }

        // hash-iter.
        let has_hash = has_token(code, "HashMap") || has_token(code, "HashSet");
        if has_hash && !allowed(i, "hash-iter") {
            if in_deterministic_src(rel) {
                push(
                    &mut out,
                    "hash-iter",
                    i,
                    "hash containers are banned in the deterministic crates' src/: \
                     use BTreeMap/BTreeSet or sorted vecs, or justify with \
                     tidy: allow(hash-iter)"
                        .to_string(),
                );
            } else if HASH_ITER_TOKENS.iter().any(|t| code.contains(t)) {
                push(
                    &mut out,
                    "hash-iter",
                    i,
                    "iteration over a hash container leaks nondeterministic order; \
                     sort first or use a BTree container"
                        .to_string(),
                );
            }
        }

        // wall-clock: library + example code outside the bench crate.
        if kind != FileKind::TestCode
            && !WALL_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p))
            && (has_token(code, "Instant") || has_token(code, "SystemTime"))
            && !allowed(i, "wall-clock")
        {
            push(
                &mut out,
                "wall-clock",
                i,
                "wall-clock reads live in crates/bench or behind a \
                 tidy: allow(wall-clock) justification (counters must stay \
                 deterministic; wall rides as non-fatal `environment` data)"
                    .to_string(),
            );
        }

        // probe-gated: shipped src/ only.
        if kind == FileKind::CrateSrc
            && code.contains(".emit(")
            && !code.contains("fn emit")
            && !allowed(i, "probe-gated")
            && !emit_is_gated(&src, i)
        {
            push(
                &mut out,
                "probe-gated",
                i,
                "probe emit call site not gated on `enabled()` in this function; \
                 wrap it as `if probe.enabled() { probe.emit(…) }` (the zero-cost \
                 contract)"
                    .to_string(),
            );
        }

        // invariant-panic: shipped src/ only.
        if kind == FileKind::CrateSrc && !allowed(i, "invariant-panic") {
            for tok in PANIC_TOKENS {
                if code.contains(tok) && !nearby_comment(&src, i, "INVARIANT", tok) {
                    push(
                        &mut out,
                        "invariant-panic",
                        i,
                        format!(
                            "`{}` in non-test library code needs an adjacent \
                             `// INVARIANT:` comment stating why it cannot fire \
                             (or return a typed error)",
                            tok.trim_start_matches('.')
                        ),
                    );
                    break; // one diagnostic per line is enough
                }
            }
        }
    }
    out
}

/// Backward scan from an `.emit(` call: gated if `enabled()` appears on
/// the same line or above it within the enclosing function; the scan
/// stops (ungated) at the first `fn ` signature or after 60 lines.
fn emit_is_gated(src: &SourceFile, i: usize) -> bool {
    for back in 0..60 {
        let Some(j) = i.checked_sub(back) else { return false };
        let code = &src.lines[j].code;
        if code.contains("enabled()") {
            return true;
        }
        if back > 0 && code.contains("fn ") && code.contains('(') {
            return false; // left the enclosing function body
        }
    }
    false
}

/// Extracts `N` from a `remove-by: PR<N>` marker.
fn parse_remove_by(text: &str) -> Option<u32> {
    let pos = text.find("remove-by: PR")?;
    let digits: String =
        text[pos + "remove-by: PR".len()..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Lints a `Cargo.toml`: the only `rand` a manifest may name is the
/// workspace path shim (`crates/rand`); a registry `rand` would swap the
/// pinned deterministic streams out from under every regression pin.
pub fn lint_manifest(rel: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with("rand") {
            continue;
        }
        let ok = t.contains("workspace = true")
            || t.contains("path =")
            || t.starts_with("rand.workspace");
        if !ok {
            out.push(Diagnostic {
                lint: "seeded-rand",
                path: rel.to_string(),
                line: i + 1,
                message: "manifests may only use the seeded path shim: \
                          `rand.workspace = true` (crates/rand)"
                    .to_string(),
            });
        }
    }
    out
}

/// Lints the README workspace-layout table: every crate directory must be
/// documented (`crate_dirs` are the `crates/<name>` entries found on disk).
pub fn lint_readme(readme: &str, crate_dirs: &[String]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for dir in crate_dirs {
        if !readme.contains(&format!("crates/{dir}")) {
            out.push(Diagnostic {
                lint: "readme-crates",
                path: "README.md".to_string(),
                line: 0,
                message: format!(
                    "crates/{dir} exists but is missing from the README workspace-layout table"
                ),
            });
        }
    }
    out
}
