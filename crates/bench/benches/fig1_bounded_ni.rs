//! **E4 — Figure 1**: bounded neighborhood independence does not imply
//! bounded growth.
//!
//! The Figure 1 graph attaches a pendant to every vertex of a clique:
//! `I(G) = 2`, yet a clique vertex has `Ω(Δ)` pairwise-independent vertices
//! within distance 2. This harness verifies both facts across sizes and
//! shows the paper's machinery working at the claimed `c = 2` while
//! growth-bounded techniques would not apply.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_graph::properties::{independent_in_ball_lower_bound, neighborhood_independence};
use deco_local::Network;

fn main() {
    banner("E4 / Figure 1", "I(G) = 2 with unbounded growth: clique-with-pendants");
    let ks: Vec<usize> = match scale() {
        Scale::Quick => vec![8, 16, 32, 64],
        Scale::Full => vec![8, 16, 32, 64, 128, 256],
    };
    let table = Table::new(
        &["k (=Δ)", "n", "I(G)", "indep in Γ2", "colors", "ϑ", "rounds"],
        &[7, 7, 5, 12, 7, 8, 7],
    );
    for &k in &ks {
        let g = generators::clique_with_pendants(k);
        // Exact I(G) is affordable for small k; the greedy lower bound plus
        // the line-graph-style argument covers the rest.
        let ni = if k <= 64 { neighborhood_independence(&g) } else { 2 };
        assert_eq!(ni, 2, "Figure 1 graph must have I(G) = 2");
        // Unbounded growth: clique vertex 0 sees all k pendants at distance
        // <= 2, pairwise independent.
        let growth = independent_in_ball_lower_bound(&g, 0, 2);
        assert!(growth >= k, "growth must be Ω(Δ)");

        let net = Network::new(&g);
        let run = legal_color(&net, 2, LegalParams::log_depth(2, 1)).unwrap();
        assert!(run.coloring.is_proper(&g));
        table.row(&[
            k.to_string(),
            g.n().to_string(),
            ni.to_string(),
            growth.to_string(),
            run.coloring.palette_size().to_string(),
            run.theta.to_string(),
            run.stats.rounds.to_string(),
        ]);
    }
    println!(
        "\nshape check: the independent set within distance 2 equals k = Δ — the\n\
         graph is *not* growth-bounded — yet Legal-Color colors it with c = 2\n\
         and rounds that grow only with the recursion depth, as Section 1.2 claims."
    );
}
