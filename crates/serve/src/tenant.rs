//! Tenants: registration specs, published snapshots, and the per-tenant
//! runtime state the worker pool drives.

use crate::snapshot::Swap;
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_core::params::LegalParams;
use deco_graph::coloring::EdgeColoring;
use deco_graph::trace::TraceOp;
use deco_graph::Graph;
use deco_stream::{CommitReport, RecolorConfig, RegionRecolor, RepairStrategy};
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::{Condvar, Mutex};

/// Which commit representation a tenant's engine uses. Both sides of the
/// [`RegionRecolor`] facade produce identical colorings (the engine-parity
/// contract), so the choice only moves commit traffic and memory shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`deco_stream::Recolorer`]: delta-CSR commits, lexicographic edge
    /// indices.
    Legacy,
    /// [`deco_stream::SegRecolorer`]: segmented commits, stable edge ids,
    /// `O(region)` commit traffic.
    Segmented,
}

/// Everything a tenant is registered with: topology seedings, paper
/// parameters, engine choice and the full per-instance
/// [`RecolorConfig`] — tenants in one process are fully heterogeneous.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (CLI listings, error messages).
    pub name: String,
    /// Initial vertex count; the tenant starts edgeless and is grown by
    /// submitted trace operations.
    pub n0: usize,
    /// The paper's contraction parameters.
    pub params: LegalParams,
    /// Message model for the repair networks.
    pub mode: MessageMode,
    /// Commit representation.
    pub engine: EngineKind,
    /// Per-instance engine knobs (threshold, compaction, transport,
    /// probe, threads, delivery, ...).
    pub config: RecolorConfig,
}

impl TenantSpec {
    /// A spec with the workspace defaults: `edge_log_depth(1)` params,
    /// long messages, the legacy engine, a default [`RecolorConfig`].
    pub fn new(name: impl Into<String>, n0: usize) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            n0,
            params: edge_log_depth(1),
            mode: MessageMode::Long,
            engine: EngineKind::Legacy,
            config: RecolorConfig::default(),
        }
    }

    /// Picks the commit representation.
    pub fn with_engine(mut self, engine: EngineKind) -> TenantSpec {
        self.engine = engine;
        self
    }

    /// Replaces the engine configuration.
    pub fn with_config(mut self, config: RecolorConfig) -> TenantSpec {
        self.config = config;
        self
    }

    /// Replaces the contraction parameters.
    pub fn with_params(mut self, params: LegalParams) -> TenantSpec {
        self.params = params;
        self
    }

    /// Picks the message model.
    pub fn with_mode(mut self, mode: MessageMode) -> TenantSpec {
        self.mode = mode;
        self
    }
}

/// An immutable, epoch-stamped snapshot of a tenant's committed state,
/// published lock-free after every successful commit (see
/// [`crate::Serve::snapshot`]). Epoch 0 is the registration snapshot
/// (edgeless, no commits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Publication epoch: the number of successful commits behind this
    /// snapshot.
    pub epoch: u64,
    /// Commits applied (equals `epoch`; kept separate for readability at
    /// call sites).
    pub commits: usize,
    /// Vertices of the committed graph.
    pub n: usize,
    /// Edges of the committed graph.
    pub m: usize,
    /// Maximum degree of the committed graph.
    pub max_degree: usize,
    /// Palette bound the coloring is kept under.
    pub color_bound: u64,
    /// The committed graph, in lexicographic edge order.
    pub graph: Graph,
    /// The committed coloring, aligned with `graph`'s edge order.
    pub coloring: EdgeColoring,
}

impl TenantSnapshot {
    /// FNV-1a fingerprint of the snapshot's deterministic content (epoch,
    /// shape, every edge, every color). Bit-identical runs produce equal
    /// fingerprints whatever the shard count — the serve determinism
    /// tests and the pr9 bench gate hang off this.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.word(self.epoch);
        f.word(self.commits as u64);
        f.word(self.n as u64);
        f.word(self.m as u64);
        f.word(self.max_degree as u64);
        f.word(self.color_bound);
        for (u, v) in self.graph.edges() {
            f.word(u as u64);
            f.word(v as u64);
        }
        for &c in self.coloring.colors() {
            f.word(c);
        }
        f.digest()
    }
}

/// A recorded per-tenant failure: the engine survived (commit errors leave
/// the previous snapshot intact; queue errors quarantine the tenant), the
/// service kept running, the error is reported out of band.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantError {
    /// Commits the tenant had applied when the failure happened.
    pub commits: usize,
    /// Human-readable description.
    pub message: String,
}

/// One queued instruction for a tenant's engine.
#[derive(Debug, Clone)]
pub(crate) enum TenantMsg {
    /// Queue a trace operation into the current batch.
    Op(TraceOp),
    /// Commit the current batch.
    Commit,
    /// Request a demand-driven palette compaction.
    Compact,
}

/// The submission side of a tenant: a bounded FIFO plus the single-drainer
/// claim flag that makes per-tenant processing order total.
#[derive(Debug)]
pub(crate) struct Inbox {
    pub(crate) queue: VecDeque<TenantMsg>,
    /// True while the tenant sits in a shard queue or a worker is
    /// draining it; exactly one worker processes a tenant at a time, so
    /// messages apply in submission order regardless of shard count.
    pub(crate) scheduled: bool,
}

/// The execution side of a tenant: the engine and everything the drainer
/// mutates. Only the claiming worker locks this (plus read-side accessors
/// after a drain), so commits never contend with other tenants.
pub(crate) struct Exec {
    pub(crate) engine: Box<dyn RegionRecolor + Send>,
    /// Every successful commit's report, in commit order — the
    /// deterministic transcript the determinism tests compare.
    pub(crate) reports: Vec<CommitReport>,
    /// `node_rounds` accumulated since the last compaction request; the
    /// deterministic cost clock behind
    /// [`ServeConfig::with_compact_cost_budget`](crate::ServeConfig::with_compact_cost_budget).
    pub(crate) cost_since_compaction: u64,
    /// Wall time of each successful commit, aligned with `reports`.
    /// Excluded from the determinism contract, obviously.
    pub(crate) commit_walls: Vec<std::time::Duration>,
    /// Failures survived so far.
    pub(crate) errors: Vec<TenantError>,
    /// Set once a queue-side failure poisons the batch state; subsequent
    /// messages are discarded and submissions rejected.
    pub(crate) quarantined: bool,
}

/// A registered tenant.
pub(crate) struct Tenant {
    pub(crate) name: String,
    /// Home shard (`id % shards`); stealing may run the drain elsewhere,
    /// the home shard only fixes where the claim is enqueued.
    pub(crate) shard: usize,
    pub(crate) inbox: Mutex<Inbox>,
    /// Signalled per popped message; blocking submitters wait here for
    /// inbox space.
    pub(crate) space: Condvar,
    pub(crate) exec: Mutex<Exec>,
    /// The published snapshot cell (lock-free readers).
    pub(crate) snap: Swap<TenantSnapshot>,
    /// Total committed `node_rounds` — the admission currency, readable
    /// without any lock.
    pub(crate) cost: AtomicU64,
}

/// 64-bit FNV-1a over a word stream; the workspace's standing fingerprint
/// idiom for gate counters.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// The empty fingerprint.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs one word, byte by byte.
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// FNV-1a fingerprint of a commit-report transcript: every deterministic
/// field of every report, in order. Wall time does not appear in
/// [`CommitReport`], so the whole struct participates.
pub fn reports_fingerprint(reports: &[CommitReport]) -> u64 {
    let mut f = Fnv::new();
    for r in reports {
        for w in [
            r.commit as u64,
            r.inserted as u64,
            r.deleted as u64,
            r.n as u64,
            r.m as u64,
            r.max_degree as u64,
            r.dirty as u64,
            r.region_vertices as u64,
            match r.strategy {
                RepairStrategy::Clean => 0,
                RepairStrategy::Incremental => 1,
                RepairStrategy::FromScratch => 2,
            },
            r.recolored as u64,
            r.schedule_classes,
            r.color_bound,
            u64::from(r.retries),
            u64::from(r.fallbacks),
            r.stats.rounds as u64,
            r.stats.node_rounds as u64,
            r.stats.messages as u64,
            r.stats.max_message_bits as u64,
            r.stats.total_message_bits as u64,
            r.stats.transport_dropped as u64,
            r.stats.commit_bytes as u64,
        ] {
            f.word(w);
        }
    }
    f.digest()
}
