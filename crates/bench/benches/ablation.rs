//! **E10 — ablations** of the two design knobs DESIGN.md calls out:
//!
//! 1. the tradeoff parameter `b` (Algorithm 1): larger `b` lowers the
//!    per-level defect — fewer colors — at `O((b·p)²)`-factor slower levels;
//! 2. the Section 4.2 auxiliary-coloring reuse: seeding every level's
//!    defective coloring from the precomputed `O(Δ²)`-coloring ρ instead of
//!    from raw identifiers replaces the per-level `log* n` term by `log* Δ`.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::legal::{legal_color_with_policy, AuxPolicy};
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

fn main() {
    banner("E10 / ablations", "the b tradeoff and the §4.2 auxiliary reuse");

    // --- Ablation 1: b sweep on the edge algorithm. ---
    let (n, extra) = match scale() {
        Scale::Quick => (500usize, 30u64),
        Scale::Full => (1500, 80),
    };
    println!("ablation 1: edge algorithm, sweep b (colors vs rounds)\n");
    let table = Table::new(
        &["b", "p", "λ", "Δ", "colors", "ϑ", "rounds", "levels"],
        &[3, 4, 5, 5, 7, 8, 7, 7],
    );
    for b in [1u64, 2, 3, 4] {
        let params = edge_log_depth(b);
        let g = generators::random_bounded_degree(n, (params.lambda + extra) as usize, 0xE10);
        let run = edge_color(&g, params, MessageMode::Long).expect("valid preset");
        assert!(run.coloring.is_proper(&g));
        table.row(&[
            b.to_string(),
            params.p.to_string(),
            params.lambda.to_string(),
            g.max_degree().to_string(),
            run.coloring.palette_size().to_string(),
            run.theta.to_string(),
            run.stats.rounds.to_string(),
            run.levels.len().to_string(),
        ]);
    }

    // --- Ablation 2: §4.2 aux reuse on the vertex algorithm. ---
    println!("\nablation 2: vertex algorithm, §4.2 auxiliary-coloring reuse\n");
    let host = generators::random_bounded_degree(n, 24, 0xE10 + 1);
    let g = line_graph(&host);
    println!("workload: line graph, n_L = {}, Δ_L = {}\n", g.n(), g.max_degree());
    let table = Table::new(&["policy", "colors", "ϑ", "rounds", "messages"], &[22, 7, 8, 7, 12]);
    for (name, policy) in [
        ("reuse ρ (§4.2)", AuxPolicy::ReusePerLevel),
        ("fresh per level", AuxPolicy::FreshPerLevel),
    ] {
        let net = Network::new(&g);
        let run = legal_color_with_policy(&net, 2, LegalParams::log_depth(2, 1), policy).unwrap();
        assert!(run.coloring.is_proper(&g));
        table.row(&[
            name.to_string(),
            run.coloring.palette_size().to_string(),
            run.theta.to_string(),
            run.stats.rounds.to_string(),
            run.stats.messages.to_string(),
        ]);
    }
    println!(
        "\nshape check: larger b buys fewer colors for more rounds per level.\n\
         For the §4.2 ablation the honest finding is that at simulatable sizes\n\
         the difference is at most log* n - log* Δ <= 2 schedule rounds per\n\
         level and can vanish entirely — the improvement only bites for\n\
         n >> Δ², exactly as the asymptotic statement suggests."
    );
}
