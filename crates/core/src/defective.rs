//! **Algorithm 1 — Procedure Defective-Color** (Section 3).
//!
//! Computes an `O(Λ/p)`-defective `p`-coloring of a graph with neighborhood
//! independence bounded by `c`, in `O((b·p)² + log* n)` time:
//!
//! 1. compute a `⌊Λ/(b·p)⌋`-defective `O((b·p)²)`-coloring φ (Lemma 2.1(3),
//!    here via [`crate::code_reduction`] seeded by an auxiliary proper
//!    coloring — the Section 4.2 improvement that replaces the `log* n` term
//!    with `log* Δ` at every recursion level);
//! 2. re-color: every vertex waits for all neighbors with smaller φ-color to
//!    choose, then picks the ψ-color `k ∈ {1..p}` used by the fewest such
//!    neighbors (lines 4–10 of Algorithm 1).
//!
//! By Theorem 3.7 the result is a `((Λ/(b·p) + Λ/p)·c + c)`-defective
//! `p`-coloring. The protocol is group-aware so that Procedure Legal-Color
//! can run it on all classes of a partition simultaneously.

use crate::code_reduction::run_code_reduction;
use crate::math::{kuhn_schedule, linial_schedule, CodeStep};
use crate::msg::FieldMsg;
use crate::pipeline::Pipeline;
use deco_graph::Vertex;
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

/// Result of one grouped Defective-Color invocation.
#[derive(Debug, Clone)]
pub struct DefectiveRun {
    /// The ψ-color of every vertex, in `0..p`.
    pub psi: Vec<u64>,
    /// Size of the intermediate φ palette (bounds the re-coloring rounds).
    pub phi_palette: u64,
    /// Defect target of the φ coloring, `⌊Λ/(b·p)⌋`.
    pub phi_defect: u64,
    /// Accumulated statistics of both phases.
    pub stats: RunStats,
}

/// The defect bound Theorem 3.7 guarantees for Procedure Defective-Color:
/// `((Λ/(b·p) + Λ/p)·c + c)`, evaluated with exact integer arithmetic
/// (`⌊c·Λ·(b+1)/(b·p)⌋ + c`).
pub fn theorem_3_7_defect(c: u64, b: u64, p: u64, lambda: u64) -> u64 {
    c * lambda * (b + 1) / (b * p) + c
}

/// Step-1 schedule: reduce the auxiliary proper coloring (palette
/// `aux_palette`) to a `⌊Λ/(b·p)⌋`-defective `O((b·p)²)`-coloring within
/// groups. When the defect target is too small for argmin steps, zero-defect
/// Linial steps reach a proper `O(Λ²) = O((b·p)²·16)`-coloring instead
/// (`Λ < 4·b·p` in that regime).
fn phi_schedule(aux_palette: u64, lambda: u64, b: u64, p: u64) -> (Vec<CodeStep>, u64) {
    let target = lambda / (b * p);
    let steps = if target >= 4 {
        kuhn_schedule(aux_palette, lambda, target)
    } else {
        linial_schedule(aux_palette, lambda)
    };
    (steps, target)
}

#[derive(Debug)]
enum Phase {
    /// Waiting to learn neighbors' φ-colors (sent at start).
    LearnPhi,
    /// Waiting for the listed same-group smaller-φ neighbors to announce ψ.
    Select {
        awaiting: Vec<Vertex>,
    },
    Done,
}

/// Phase-2 protocol: the ψ-selection while-loop of Algorithm 1.
#[derive(Debug)]
struct PsiSelect {
    group: u64,
    group_domain: u64,
    phi: u64,
    phi_palette: u64,
    p: u64,
    /// `counts[k]` = `N_v(k)`: same-group neighbors with smaller φ-color that
    /// announced ψ-color `k`.
    counts: Vec<u64>,
    phase: Phase,
    psi: u64,
}

impl PsiSelect {
    fn pick_and_announce(&mut self, ctx: &NodeCtx<'_>) -> Action<FieldMsg> {
        // Line 6-7: ψ(v) := color k minimizing N_v(k); ties to the smallest.
        let (best_k, _) =
            // INVARIANT: counts holds p >= 1 entries (p is validated at construction), so the minimum exists.
            self.counts.iter().enumerate().min_by_key(|&(k, &c)| (c, k)).expect("p >= 1 colors");
        self.psi = best_k as u64;
        self.phase = Phase::Done;
        let msg = FieldMsg::new(&[
            (1, 2), // tag: ψ announcement
            (self.group, self.group_domain),
            (self.psi, self.p),
        ]);
        Action::Halt(ctx.broadcast(msg))
    }
}

impl Protocol for PsiSelect {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Line 2: send φ(v) to all neighbors.
        let msg = FieldMsg::new(&[
            (0, 2), // tag: φ broadcast
            (self.group, self.group_domain),
            (self.phi, self.phi_palette),
        ]);
        ctx.broadcast(msg)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        match &mut self.phase {
            Phase::LearnPhi => {
                let awaiting: Vec<Vertex> = inbox
                    .iter()
                    .filter(|(_, m)| {
                        m.field(0) == 0 && m.field(1) == self.group && m.field(2) < self.phi
                    })
                    .map(|&(sender, _)| sender)
                    .collect();
                if awaiting.is_empty() {
                    self.pick_and_announce(ctx)
                } else {
                    self.phase = Phase::Select { awaiting };
                    Action::idle()
                }
            }
            Phase::Select { awaiting } => {
                for (sender, m) in inbox {
                    if m.field(0) == 1 && m.field(1) == self.group {
                        // A same-group neighbor announced ψ. Only count it
                        // into N_v if it is one we awaited (i.e. has smaller
                        // φ-color): Algorithm 1's N_v ignores equal-φ
                        // neighbors, which may legitimately announce while we
                        // still wait.
                        if let Some(i) = awaiting.iter().position(|s| s == sender) {
                            awaiting.swap_remove(i);
                            self.counts[m.field(2) as usize] += 1;
                        }
                    }
                }
                if awaiting.is_empty() {
                    self.pick_and_announce(ctx)
                } else {
                    Action::idle()
                }
            }
            Phase::Done => Action::halt(),
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.psi
    }
}

/// Runs Procedure Defective-Color on every group of a partition
/// simultaneously.
///
/// * `groups[v]` / `group_domain` — the partition (all zeros for one group);
/// * `aux` / `aux_palette` — a proper-within-groups coloring seeding step 1
///   (use [`crate::code_reduction::linial_coloring`] output);
/// * `b`, `p`, `lambda` — Algorithm 1 parameters with `b >= 1`,
///   `1 <= b·p <= lambda`, and `lambda` an upper bound on the maximum degree
///   *within* any group.
///
/// # Panics
///
/// Panics if the parameter constraints are violated.
#[allow(clippy::too_many_arguments)] // the paper's parameter tuple, verbatim
pub fn defective_color_in_groups(
    net: &Network<'_>,
    groups: &[u64],
    group_domain: u64,
    aux: &[u64],
    aux_palette: u64,
    b: u64,
    p: u64,
    lambda: u64,
) -> DefectiveRun {
    assert!(b >= 1, "b must be at least 1");
    assert!(p >= 1, "p must be at least 1");
    assert!(b * p <= lambda.max(1), "need b·p <= Λ");
    let (steps, phi_defect) = phi_schedule(aux_palette, lambda, b, p);
    let phi_palette = steps.last().map(|s| s.to_palette).unwrap_or(aux_palette);
    let mut pl = Pipeline::new(net);
    let (phi, stats1) = run_code_reduction(net, groups, group_domain, aux, steps);
    pl.absorb("phi/code-reduction", stats1);

    let psi = pl.run("psi-select", |ctx| PsiSelect {
        group: groups[ctx.vertex],
        group_domain,
        phi: phi[ctx.vertex],
        phi_palette,
        p,
        counts: vec![0; p as usize],
        phase: Phase::LearnPhi,
        psi: 0,
    });
    DefectiveRun { psi, phi_palette, phi_defect, stats: pl.into_stats() }
}

/// Convenience: Defective-Color on a whole graph (single group), computing
/// the auxiliary Linial coloring internally. Returns the run and the Linial
/// stats folded in. This is Corollary 3.8: a
/// `((c+ε)·Λ/p + c)`-defective `p`-coloring in `O(p² + log* n)` time.
pub fn defective_color(net: &Network<'_>, b: u64, p: u64, lambda: u64) -> DefectiveRun {
    let groups = vec![0u64; net.graph().n()];
    let (aux, aux_palette, lin_stats) = crate::code_reduction::linial_coloring(net);
    let mut run = defective_color_in_groups(net, &groups, 1, &aux, aux_palette, b, p, lambda);
    run.stats = lin_stats + run.stats;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::coloring::VertexColoring;
    use deco_graph::generators;
    use deco_graph::line_graph::line_graph;
    use deco_graph::properties::neighborhood_independence;

    fn check_defective(g: &deco_graph::Graph, c: u64, b: u64, p: u64) -> (u64, u64, RunStats) {
        let lambda = g.max_degree() as u64;
        let net = Network::new(g);
        let run = defective_color(&net, b, p, lambda);
        let coloring = VertexColoring::new(run.psi.clone());
        assert!(coloring.color_bound() <= p, "ψ must use at most p colors");
        let defect = coloring.defect(g) as u64;
        let bound = theorem_3_7_defect(c, b, p, lambda);
        assert!(
            defect <= bound,
            "Theorem 3.7 violated: defect {defect} > bound {bound} (Δ={lambda}, b={b}, p={p})"
        );
        (defect, bound, run.stats)
    }

    #[test]
    fn theorem_3_7_on_line_graphs() {
        // Line graphs have c = 2 (Lemma 5.1).
        let g = generators::random_bounded_degree(60, 8, 11);
        let l = line_graph(&g);
        assert!(neighborhood_independence(&l) <= 2);
        for (b, p) in [(1, 2), (2, 3), (1, 4)] {
            check_defective(&l, 2, b, p);
        }
    }

    #[test]
    fn theorem_3_7_on_figure_1_graph() {
        let g = generators::clique_with_pendants(12);
        assert_eq!(neighborhood_independence(&g), 2);
        for (b, p) in [(1, 3), (2, 2), (3, 2)] {
            check_defective(&g, 2, b, p);
        }
    }

    #[test]
    fn theorem_3_7_on_unit_disk() {
        let g = generators::unit_disk(90, 0.25, 5);
        let c = neighborhood_independence(&g) as u64;
        assert!(c <= 5);
        if g.max_degree() >= 6 {
            check_defective(&g, c.max(1), 1, 3);
        }
    }

    #[test]
    fn defect_times_colors_is_linear_in_delta() {
        // The headline of Section 1.3: defect · #colors = O(Δ) for
        // bounded-NI graphs, versus O(Δ·p) for Kuhn's general-graph routine.
        let g = line_graph(&generators::random_bounded_degree(80, 10, 3));
        let delta = g.max_degree() as u64;
        let c = 2u64;
        for p in [2u64, 3, 4] {
            let net = Network::new(&g);
            let run = defective_color(&net, 2, p, delta);
            let defect = VertexColoring::new(run.psi).defect(&g) as u64;
            let product = defect * p;
            // (c + ε)·Λ + c·p with ε from b=2: generous linear bound.
            assert!(
                product <= 2 * c * delta + c * p + 2 * delta,
                "p={p}: product {product} not linear in Δ={delta}"
            );
        }
    }

    #[test]
    fn grouped_invocation_respects_groups() {
        let g = generators::complete(12);
        let net = Network::new(&g);
        let (aux, aux_palette, _) = crate::code_reduction::linial_coloring(&net);
        // Split into 3 groups of 4 (within-group degree 3).
        let groups: Vec<u64> = (0..12).map(|v| (v % 3) as u64).collect();
        let run = defective_color_in_groups(&net, &groups, 3, &aux, aux_palette, 1, 3, 3);
        assert!(run.psi.iter().all(|&k| k < 3));
        // Defect within groups bounded by Theorem 3.7 with c = 1 (cliques).
        let bound = theorem_3_7_defect(1, 1, 3, 3);
        for v in 0..12 {
            let defect = g
                .neighbors(v)
                .filter(|&u| groups[u] == groups[v] && run.psi[u] == run.psi[v])
                .count() as u64;
            assert!(defect <= bound);
        }
    }

    #[test]
    fn recolor_rounds_bounded_by_phi_palette() {
        // Lemma 3.2 / Corollary 3.3: the while-loop takes at most
        // φ-palette + O(1) rounds, plus the defective-coloring rounds.
        let g = generators::random_bounded_degree(100, 9, 17);
        let net = Network::new(&g);
        let run = defective_color(&net, 1, 3, g.max_degree() as u64);
        let log_star_n = crate::math::log_star(g.n() as u64) as usize;
        assert!(
            run.stats.rounds <= run.phi_palette as usize + 2 * log_star_n + 12,
            "rounds {} vs φ palette {}",
            run.stats.rounds,
            run.phi_palette
        );
    }

    #[test]
    #[should_panic(expected = "b·p <= Λ")]
    fn rejects_oversized_bp() {
        let g = generators::path(4);
        let net = Network::new(&g);
        let _ = defective_color(&net, 4, 4, 1);
    }
}
