//! Pins the slot engine's zero-allocation steady state: once buffers reach
//! their steady size, additional rounds of a broadcast protocol allocate
//! (essentially) nothing — the delivery path is arena writes only. The
//! naive reference engine, by contrast, allocates per round by design.
//!
//! Allocation counts are deterministic for a fixed sequential run, so the
//! assertions are exact-science, not flaky heuristics.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates everything to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's layout contract untouched to the
    // system allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's layout contract untouched to the
    // system allocator; the count bump has no safety obligations.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use deco_graph::generators;
use deco_local::{Action, Engine, Network, NodeCtx, Protocol};

/// Broadcast a counter for a fixed number of rounds — the steady-state
/// delivery workload (`Action::Broadcast` keeps even the protocol layer
/// allocation-free after `start`).
struct Pulse {
    rounds: usize,
    acc: u64,
}

impl Protocol for Pulse {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
        ctx.broadcast(ctx.ident)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
        for &(_, m) in inbox {
            self.acc = self.acc.wrapping_add(m);
        }
        if ctx.round >= self.rounds {
            Action::halt()
        } else {
            Action::Broadcast(self.acc)
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.acc
    }
}

fn allocs_for(engine: Engine, rounds: usize) -> usize {
    let g = generators::random_bounded_degree(2000, 8, 0xa110c);
    let net = Network::new(&g).with_engine(engine);
    let before = ALLOCS.load(Ordering::Relaxed);
    let run = net.run(|_| Pulse { rounds, acc: 0 });
    assert_eq!(run.stats.rounds, rounds);
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn slot_engine_steady_state_allocates_nothing_per_round() {
    // Warm up whatever lazy global state the first run touches.
    let _ = allocs_for(Engine::Slot, 4);
    let short = allocs_for(Engine::Slot, 10);
    let long = allocs_for(Engine::Slot, 110);
    let per_round_extra = long.saturating_sub(short);
    // 100 extra rounds of steady-state delivery: the only growth is the
    // profile vector doubling a handful of times. Anything per-node or
    // per-message would show up as tens of thousands of allocations.
    assert!(
        per_round_extra < 64,
        "slot engine allocated {per_round_extra} times across 100 steady-state rounds"
    );

    let naive_short = allocs_for(Engine::Naive, 10);
    let naive_long = allocs_for(Engine::Naive, 110);
    let naive_extra = naive_long - naive_short;
    // The naive engine allocates per round by design (fresh inbox vectors);
    // the contrast is the point of the refactor.
    assert!(
        naive_extra > 100 * 100,
        "naive engine unexpectedly frugal: {naive_extra} allocations in 100 rounds"
    );
}

/// The long-mode ψ-count traffic shape of the Theorem 5.5 pipeline:
/// every node broadcasts a ready flag plus `p = 16` counts each round —
/// 17 fields, far past `FieldMsg`'s 3-field inline buffer, so every message
/// carries a spill span. Pre-PR 5 each such message (and every delivery
/// clone of it) was one heap allocation; with the pooled spill arena a
/// dense long-mode round allocates nothing once the arena is warm.
struct LongPulse {
    rounds: usize,
    p: usize,
    acc: u64,
    /// Reused field builder — the idiom the real protocols use.
    scratch: Vec<(u64, u64)>,
}

impl LongPulse {
    fn msg(&mut self) -> deco_core::msg::FieldMsg {
        self.scratch.clear();
        self.scratch.push((self.acc & 1, 2));
        for k in 0..self.p as u64 {
            self.scratch.push(((self.acc >> (k % 48)) & 0xff, 256));
        }
        deco_core::msg::FieldMsg::new(&self.scratch)
    }
}

impl Protocol for LongPulse {
    type Msg = deco_core::msg::FieldMsg;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, Self::Msg)> {
        self.acc = ctx.ident;
        let m = self.msg();
        ctx.neighbors.iter().map(|&u| (u, m.clone())).collect()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, Self::Msg)]) -> Action<Self::Msg> {
        for (_, m) in inbox {
            debug_assert_eq!(m.len(), self.p + 1);
            for &v in &m.fields()[1..] {
                self.acc = self.acc.rotate_left(5).wrapping_add(v);
            }
        }
        if ctx.round >= self.rounds {
            Action::halt()
        } else {
            Action::Broadcast(self.msg())
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.acc
    }
}

fn long_mode_allocs_for(rounds: usize) -> usize {
    let g = generators::random_bounded_degree(2000, 8, 0xa110c);
    let net = Network::new(&g);
    let before = ALLOCS.load(Ordering::Relaxed);
    let run = net.run(|_| LongPulse { rounds, p: 16, acc: 0, scratch: Vec::new() });
    assert_eq!(run.stats.rounds, rounds);
    assert!(run.stats.max_message_bits >= 16 * 8, "messages must actually be long-mode");
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn dense_long_mode_rounds_allocate_nothing_once_spill_arena_is_warm() {
    // Warm the engine buffers and the spill arena's chunk pool.
    let _ = long_mode_allocs_for(4);
    let spill_before = deco_local::spill::stats();
    let short = long_mode_allocs_for(10);
    let long = long_mode_allocs_for(110);
    let per_round_extra = long.saturating_sub(short);
    // 100 extra dense rounds × 2000 nodes × ~8 deliveries of a 17-field
    // message: the pre-arena representation allocated (at least) one Vec
    // per constructed message — ≥ 200k allocations. With the spill arena
    // the only growth is the profile vector doubling a handful of times.
    assert!(
        per_round_extra < 64,
        "dense long-mode rounds allocated {per_round_extra} times across 100 extra rounds"
    );
    // And the arena itself stayed warm: both runs (120 rounds, ~2M long
    // messages constructed and cloned) were served entirely from the pool
    // populated by the warm-up run.
    let spill_after = deco_local::spill::stats();
    assert_eq!(spill_after, spill_before, "spill arena kept allocating after the warm-up run");
}
