//! Section 6.2: the colors/time tradeoff (Corollary 6.3).
//!
//! For any monotone non-decreasing `g(Δ)`, an `O(Δ²/g(Δ))`-coloring in
//! `O(log g(Δ)) + log* n`-shaped time: first split the graph into `O(p²)`
//! classes of degree at most `⌊Δ/p⌋` with a `⌊Δ/p⌋`-defective
//! `O(p²)`-coloring (Lemma 2.1(3), a *hard* bound here), then run the
//! bounded-NI machinery on every class in parallel. With `p = Δ/q(Δ)` the
//! per-class degree is `q(Δ)`, so the recursion depth is `O(log q)` and the
//! palette is `O(p²·q^{1+η}) = O(Δ²/g)` for `g = q^{1-η}`.

use crate::code_reduction::{linial_coloring, run_code_reduction};
use crate::edge::kuhn_labels::kuhn_defective_edge_coloring;
use crate::edge::legal::{edge_color_in_groups, EdgeRun, MessageMode};
use crate::legal::{legal_color_in_groups, LegalRun};
use crate::math::kuhn_schedule;
use crate::params::{LegalParams, ParamError};
use deco_graph::Graph;
use deco_local::Network;

/// Result of the vertex tradeoff: the split width, per-class degree and the
/// inner run.
#[derive(Debug, Clone)]
pub struct TradeoffRun {
    /// The split parameter `p`.
    pub p: u64,
    /// Number of classes produced by the defective split (`O(p²)`).
    pub classes: u64,
    /// Per-class degree bound `⌊Δ/p⌋`.
    pub class_degree: u64,
    /// The inner grouped Legal-Color run; its `theta` is the total palette
    /// bound `O(p²·(Δ/p)^{1+η})`.
    pub inner: LegalRun,
}

/// Corollary 6.3 (vertex version) for a bounded-NI graph: splits with
/// parameter `p` (`1 <= p <= Δ`) and colors every class in parallel.
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for this `c`.
pub fn tradeoff_vertex_color(
    net: &Network<'_>,
    c: u64,
    p: u64,
    params: LegalParams,
) -> Result<TradeoffRun, ParamError> {
    let g = net.graph();
    let delta = (g.max_degree() as u64).max(1);
    let p = p.clamp(1, delta);
    let class_degree = (delta / p).max(1);

    // Phase 1: ⌊Δ/p⌋-defective O(p²)-coloring via Linial + Kuhn.
    let (aux, aux_palette, lin_stats) = linial_coloring(net);
    let steps = kuhn_schedule(aux_palette, delta, class_degree);
    let classes_palette = steps.last().map(|s| s.to_palette).unwrap_or(aux_palette);
    let groups_all = vec![0u64; g.n()];
    let (split, split_stats) = run_code_reduction(net, &groups_all, 1, &aux, steps);

    // Phase 2: Legal-Color on every class, reusing the auxiliary coloring.
    let mut inner = legal_color_in_groups(
        net,
        &split,
        classes_palette,
        c,
        params,
        class_degree,
        Some((&aux, aux_palette)),
    )?;
    inner.stats = lin_stats + split_stats + inner.stats;
    Ok(TradeoffRun { p, classes: classes_palette, class_degree, inner })
}

/// Result of the edge tradeoff.
#[derive(Debug, Clone)]
pub struct TradeoffEdgeRun {
    /// The split parameter `p`.
    pub p: u64,
    /// Number of classes (`p²`, Corollary 5.4).
    pub classes: u64,
    /// Per-class per-vertex edge bound `2⌈Δ/p⌉`.
    pub class_degree: u64,
    /// The inner grouped edge run.
    pub inner: EdgeRun,
}

/// Corollary 6.3 (edge version) for a general graph: the split uses the
/// `O(1)`-round labeling of Corollary 5.4, so the whole algorithm is
/// `O(log g(Δ)) + log* n`-shaped with `O(log n)`-bit messages in
/// [`MessageMode::Short`].
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract.
pub fn tradeoff_edge_color(
    g: &Graph,
    p: u64,
    params: LegalParams,
    mode: MessageMode,
) -> Result<TradeoffEdgeRun, ParamError> {
    let net = Network::new(g);
    let delta = (g.max_degree() as u64).max(1);
    let p = p.clamp(1, delta);
    let groups_all = vec![0u64; g.m()];
    let (split, classes, split_stats) = kuhn_defective_edge_coloring(&net, &groups_all, p, delta);
    // Per-class per-vertex edge bound from the labeling: each endpoint
    // uses a label at most ⌈Δ/p⌉ times, and a class fixes one label per
    // endpoint — but never more than Δ edges meet a vertex at all.
    let class_degree = (2 * delta.div_ceil(p)).min(delta);
    let mut inner = edge_color_in_groups(&net, &split, classes, params, class_degree, mode)?;
    inner.stats = split_stats + inner.stats;
    Ok(TradeoffEdgeRun { p, classes, class_degree, inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::legal::edge_log_depth;
    use deco_graph::generators;
    use deco_graph::line_graph::line_graph;

    #[test]
    fn vertex_tradeoff_proper_and_split_bounded() {
        let host = generators::random_bounded_degree(70, 12, 5);
        let l = line_graph(&host);
        let net = Network::new(&l);
        let run = tradeoff_vertex_color(&net, 2, 3, LegalParams::log_depth(2, 1)).unwrap();
        assert!(run.inner.coloring.is_proper(&l));
        assert_eq!(run.class_degree, (l.max_degree() as u64) / 3);
    }

    #[test]
    fn larger_p_means_shallower_recursion() {
        // More classes => smaller class degree => fewer levels (less time),
        // more colors: the tradeoff curve.
        let host = generators::random_bounded_degree(200, 16, 8);
        let g = line_graph(&host);
        let net = Network::new(&g);
        let params = LegalParams::log_depth(2, 1);
        let small_p = tradeoff_vertex_color(&net, 2, 2, params).unwrap();
        let large_p = tradeoff_vertex_color(&net, 2, 16, params).unwrap();
        assert!(large_p.class_degree <= small_p.class_degree);
        assert!(large_p.inner.levels.len() <= small_p.inner.levels.len());
    }

    #[test]
    fn edge_tradeoff_proper() {
        let g = generators::random_bounded_degree(150, 18, 10);
        let run = tradeoff_edge_color(&g, 4, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.inner.coloring.is_proper(&g));
        assert_eq!(run.classes, 16);
    }

    #[test]
    fn p_clamped_to_delta() {
        let g = generators::cycle(12);
        let run = tradeoff_edge_color(&g, 100, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.p <= g.max_degree() as u64);
        assert!(run.inner.coloring.is_proper(&g));
    }
}
