//! Edge orientations.
//!
//! Section 2 of the paper defines orientations, out-degree, parents, and
//! children; Lemma 3.4 colors graphs along acyclic orientations, and
//! Lemma 3.5 builds an acyclic low-out-degree orientation of each ψ-color
//! class. This module provides the centralized counterpart used by tests,
//! benches, and the forest-decomposition baseline.

use crate::{EdgeIdx, Graph, Vertex};

/// An orientation of every edge of a graph: edge `e = (u, v)` is directed
/// *toward* [`Orientation::head`]`(e)`, i.e. from the other endpoint.
///
/// Following the paper's convention, the head's perspective: an edge
/// `⟨u, v⟩` oriented toward `v` makes `v` a **parent** of `u` and `u` a
/// **child** of `v`... note the paper defines the *out*-neighbors of `u` as
/// its parents, i.e. out-edges point to parents.
///
/// # Example
///
/// ```
/// use deco_graph::{orientation::Orientation, Graph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let o = Orientation::toward_smaller_ident(&g);
/// assert_eq!(o.out_degree(&g, 1), 1); // 1 -> 0
/// assert!(o.is_acyclic(&g));
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    /// `head[e]` is the endpoint edge `e` points to.
    head: Vec<u32>,
}

impl Orientation {
    /// Builds an orientation from an explicit head per edge.
    ///
    /// # Panics
    ///
    /// Panics if `heads.len() != g.m()` or a head is not an endpoint of its
    /// edge.
    pub fn from_heads(g: &Graph, heads: Vec<Vertex>) -> Orientation {
        assert_eq!(heads.len(), g.m(), "one head per edge required");
        for (e, &h) in heads.iter().enumerate() {
            let (u, v) = g.endpoints(e);
            assert!(h == u || h == v, "head of edge {e} must be one of its endpoints");
        }
        Orientation { head: heads.into_iter().map(|h| h as u32).collect() }
    }

    /// Orients every edge toward the endpoint with the smaller identifier.
    /// This orientation is always acyclic.
    pub fn toward_smaller_ident(g: &Graph) -> Orientation {
        let head = g
            .edges()
            .map(|(u, v)| if g.ident(u) < g.ident(v) { u as u32 } else { v as u32 })
            .collect();
        Orientation { head }
    }

    /// Orients edges by a ranking: toward the endpoint with the smaller
    /// `(rank, ident)` pair. Used to orient along layerings (the
    /// H-partition baseline orients toward lower layers).
    pub fn toward_smaller_rank(g: &Graph, rank: &[u64]) -> Orientation {
        assert_eq!(rank.len(), g.n(), "one rank per vertex required");
        let head = g
            .edges()
            .map(|(u, v)| {
                let ku = (rank[u], g.ident(u));
                let kv = (rank[v], g.ident(v));
                if ku < kv {
                    u as u32
                } else {
                    v as u32
                }
            })
            .collect();
        Orientation { head }
    }

    /// The endpoint edge `e` points toward.
    pub fn head(&self, e: EdgeIdx) -> Vertex {
        self.head[e] as Vertex
    }

    /// The endpoint edge `e` points away from.
    pub fn tail(&self, g: &Graph, e: EdgeIdx) -> Vertex {
        g.other_endpoint(e, self.head(e))
    }

    /// Out-neighbors of `v`: endpoints of edges oriented away from `v`
    /// (the paper calls these the *parents* of `v`).
    pub fn out_neighbors<'a>(
        &'a self,
        g: &'a Graph,
        v: Vertex,
    ) -> impl Iterator<Item = Vertex> + 'a {
        g.incident(v).filter(move |&(_, e)| self.head(e) != v).map(|(u, _)| u)
    }

    /// Out-degree of `v` under this orientation.
    pub fn out_degree(&self, g: &Graph, v: Vertex) -> usize {
        g.incident(v).filter(|&(_, e)| self.head(e) != v).count()
    }

    /// Maximum out-degree over all vertices (the orientation's out-degree in
    /// the paper's terminology).
    pub fn max_out_degree(&self, g: &Graph) -> usize {
        (0..g.n()).map(|v| self.out_degree(g, v)).max().unwrap_or(0)
    }

    /// Whether the orientation has no directed cycle (Kahn's algorithm).
    pub fn is_acyclic(&self, g: &Graph) -> bool {
        self.topological_order(g).is_some()
    }

    /// A topological order of the directed graph (tails before heads along
    /// edges pointing *out*, i.e. children before parents), or `None` if the
    /// orientation is cyclic.
    pub fn topological_order(&self, g: &Graph) -> Option<Vec<Vertex>> {
        // in-degree under "v -> parent" arcs: count edges whose head is v.
        let mut indeg = vec![0usize; g.n()];
        for e in 0..g.m() {
            indeg[self.head(e)] += 1;
        }
        let mut queue: Vec<Vertex> = (0..g.n()).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(g.n());
        while let Some(v) = queue.pop() {
            order.push(v);
            for (u, e) in g.incident(v) {
                if self.head(e) == u {
                    indeg[u] -= 1;
                    if indeg[u] == 0 {
                        queue.push(u);
                    }
                }
            }
        }
        if order.len() == g.n() {
            Some(order)
        } else {
            None
        }
    }

    /// Length (in edges) of the longest directed path, or `None` if cyclic.
    ///
    /// Lemma 3.4's coloring procedure terminates after exactly this many
    /// rounds plus one, so benches report it.
    pub fn longest_path(&self, g: &Graph) -> Option<usize> {
        let order = self.topological_order(g)?;
        // order has children before parents is NOT guaranteed by direction
        // used above; recompute longest path by DP over reverse topological
        // order: depth(v) = 1 + max over out-neighbors (parents).
        let mut depth = vec![0usize; g.n()];
        for &v in order.iter().rev() {
            for u in self.out_neighbors(g, v) {
                depth[v] = depth[v].max(depth[u] + 1);
            }
        }
        depth.into_iter().max().or(Some(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ident_orientation_is_acyclic_with_longest_path() {
        let g = generators::path(5);
        let o = Orientation::toward_smaller_ident(&g);
        assert!(o.is_acyclic(&g));
        assert_eq!(o.max_out_degree(&g), 1);
        assert_eq!(o.longest_path(&g), Some(4));
    }

    #[test]
    fn cyclic_orientation_detected() {
        let g = generators::cycle(3);
        // Orient 0->1->2->0.
        let heads = vec![1, 0, 2]; // edges (0,1)->1, (0,2)->0, (1,2)->2
        let o = Orientation::from_heads(&g, heads);
        assert!(!o.is_acyclic(&g));
        assert_eq!(o.longest_path(&g), None);
    }

    #[test]
    fn clique_ident_orientation_out_degree() {
        let g = generators::complete(5);
        let o = Orientation::toward_smaller_ident(&g);
        assert!(o.is_acyclic(&g));
        assert_eq!(o.max_out_degree(&g), 4);
        assert_eq!(o.longest_path(&g), Some(4));
    }

    #[test]
    fn rank_orientation_respects_layers() {
        let g = generators::path(4);
        let ranks = vec![1, 0, 0, 1];
        let o = Orientation::toward_smaller_rank(&g, &ranks);
        // Edge (1,2) has equal ranks: falls back to smaller ident (vertex 1).
        let e = g.edge_between(1, 2).unwrap();
        assert_eq!(o.head(e), 1);
        let e = g.edge_between(0, 1).unwrap();
        assert_eq!(o.head(e), 1);
        assert!(o.is_acyclic(&g));
    }

    #[test]
    fn out_neighbors_are_parents() {
        let g = generators::star(4);
        let o = Orientation::toward_smaller_ident(&g);
        // Center is vertex 0 with smallest ident: all leaves point to it.
        assert_eq!(o.out_degree(&g, 0), 0);
        for leaf in 1..4 {
            assert_eq!(o.out_neighbors(&g, leaf).collect::<Vec<_>>(), vec![0]);
        }
    }

    #[test]
    #[should_panic(expected = "one head per edge")]
    fn from_heads_validates_length() {
        let g = generators::path(3);
        Orientation::from_heads(&g, vec![0]);
    }
}
