//! The randomized-trial edge-coloring baseline.
//!
//! Table 2 of the paper compares against randomized algorithms
//! (Schneider–Wattenhofer \[29\], Kothapalli et al. \[18\]) whose round counts
//! grow with `n`. As a stand-in from the same family we implement the
//! standard randomized trial scheme on the palette `{0, ..., 2Δ-2}`:
//! repeatedly, every uncolored edge's owner (the smaller-identifier
//! endpoint) proposes a uniformly random color that no incident colored
//! edge uses; a proposal is committed iff it collides with no other
//! proposal at either endpoint. Each trial is 4 rounds (used-sets,
//! proposal, local verdicts, commit) and a constant fraction of edges
//! succeeds in expectation, so the algorithm finishes in `Θ(log m)` rounds
//! w.h.p. — the `n`-dependent shape Table 2 contrasts with the paper's
//! deterministic `O(log Δ) + log* n`.

use crate::msg::FieldMsg;
use crate::pipeline::{merge_edge_replicas, Pipeline};
use deco_graph::coloring::EdgeColoring;
use deco_graph::{EdgeIdx, Graph, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAG_USED: u64 = 0;
const TAG_PROPOSE: u64 = 1;
const TAG_VERDICT: u64 = 2;

#[derive(Debug)]
struct TEdge {
    nbr: Vertex,
    eid: EdgeIdx,
    i_own: bool,
    color: Option<u64>,
    other_used: Vec<u64>,
    proposal: Option<u64>,
    my_ok: bool,
    other_ok: bool,
}

#[derive(Debug)]
struct RandomTrial {
    palette: u64,
    rng: StdRng,
    edges: Vec<TEdge>,
}

impl RandomTrial {
    fn used(&self) -> Vec<u64> {
        self.edges.iter().filter_map(|e| e.color).collect()
    }

    fn edge_by_nbr(&mut self, nbr: Vertex) -> &mut TEdge {
        // INVARIANT: the transport delivers only along host edges, so the sender is always incident.
        self.edges.iter_mut().find(|e| e.nbr == nbr).expect("message from non-incident sender")
    }
}

impl Protocol for RandomTrial {
    type Msg = FieldMsg;
    type Output = Vec<(EdgeIdx, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        Vec::new()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        for (sender, m) in inbox {
            match m.field(0) {
                TAG_USED => {
                    let e = self.edge_by_nbr(*sender);
                    e.other_used = m.fields()[1..].to_vec();
                }
                TAG_PROPOSE => {
                    self.edge_by_nbr(*sender).proposal = Some(m.field(1));
                }
                TAG_VERDICT => {
                    self.edge_by_nbr(*sender).other_ok = m.field(1) == 1;
                }
                // INVARIANT: peers in this protocol emit only the tags matched above; an unknown tag is a wire bug worth aborting on.
                tag => unreachable!("unknown tag {tag}"),
            }
        }
        let palette = self.palette;
        let mut out = Vec::new();
        match ctx.round % 4 {
            1 => {
                // Trial start: exchange used sets over uncolored edges.
                if self.edges.iter().all(|e| e.color.is_some()) {
                    return Action::halt();
                }
                let used = self.used();
                for e in &mut self.edges {
                    e.proposal = None;
                    e.my_ok = false;
                    e.other_ok = false;
                    if e.color.is_none() {
                        let mut fields = vec![TAG_USED];
                        fields.extend(&used);
                        out.push((e.nbr, FieldMsg::with_bits(&fields, 2 + palette as usize)));
                    }
                }
            }
            2 => {
                // Owners propose a random free color.
                let my_used = self.used();
                let mut proposals = Vec::new();
                for (i, e) in self.edges.iter().enumerate() {
                    if e.color.is_none() && e.i_own {
                        let free: Vec<u64> = (0..palette)
                            .filter(|c| !my_used.contains(c) && !e.other_used.contains(c))
                            .collect();
                        assert!(!free.is_empty(), "palette 2Δ-1 cannot be exhausted");
                        proposals.push((i, free[self.rng.gen_range(0..free.len())]));
                    }
                }
                for (i, c) in proposals {
                    self.edges[i].proposal = Some(c);
                    out.push((self.edges[i].nbr, FieldMsg::new(&[(TAG_PROPOSE, 3), (c, palette)])));
                }
            }
            3 => {
                // Local verdicts: a proposal is OK at this endpoint iff no
                // other proposal here picked the same color.
                let snapshot: Vec<Option<u64>> = self
                    .edges
                    .iter()
                    .map(|e| if e.color.is_none() { e.proposal } else { None })
                    .collect();
                for i in 0..self.edges.len() {
                    let Some(c) = snapshot[i] else { continue };
                    let ok = snapshot.iter().enumerate().all(|(j, &p)| j == i || p != Some(c));
                    self.edges[i].my_ok = ok;
                    out.push((
                        self.edges[i].nbr,
                        FieldMsg::new(&[(TAG_VERDICT, 3), (u64::from(ok), 2)]),
                    ));
                }
            }
            _ => {
                // Commit: both verdicts positive fixes the color.
                for e in &mut self.edges {
                    if e.color.is_none() && e.proposal.is_some() && e.my_ok && e.other_ok {
                        e.color = e.proposal;
                    }
                }
            }
        }
        Action::Continue(out)
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
        self.edges
            .into_iter()
            // INVARIANT: the run loop halts only once every element is decided, so the Option is always Some.
            .map(|e| (e.eid, e.color.expect("trial loop colors all edges")))
            .collect()
    }
}

/// The randomized-trial `(2Δ-1)`-edge-coloring baseline: `Θ(log m)` rounds
/// w.h.p. Deterministic for a fixed `seed`.
pub fn randomized_trial_edge_color(g: &Graph, seed: u64) -> (EdgeColoring, RunStats) {
    if g.m() == 0 {
        return (EdgeColoring::new(Vec::new()), RunStats::zero());
    }
    let palette = (2 * g.max_degree() - 1) as u64;
    let net = Network::new(g);
    let mut pl = Pipeline::new(&net);
    let outputs = pl.run("randomized-trial-edges", |ctx| RandomTrial {
        palette,
        rng: StdRng::seed_from_u64(seed ^ ctx.ident.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        edges: g
            .incident(ctx.vertex)
            .map(|(nbr, e)| TEdge {
                nbr,
                eid: e,
                i_own: ctx.ident < ctx.ident_of(nbr),
                color: None,
                other_used: Vec::new(),
                proposal: None,
                my_ok: false,
                other_ok: false,
            })
            .collect(),
    });
    let colors = merge_edge_replicas(g.m(), &outputs, "trial-color");
    (EdgeColoring::new(colors), pl.into_stats())
}

#[derive(Debug)]
struct VertexTrial {
    palette: u64,
    rng: StdRng,
    color: Option<u64>,
    nbr_colors: Vec<u64>,
    proposal: u64,
}

impl Protocol for VertexTrial {
    type Msg = FieldMsg;
    type Output = u64;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        Vec::new()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        let palette = self.palette;
        if ctx.round % 2 == 1 {
            // Proposal round: first record neighbors frozen last round, then
            // propose a random color outside the frozen neighborhood.
            for (_, m) in inbox {
                if m.field(0) == 1 {
                    self.nbr_colors.push(m.field(1));
                }
            }
            let free: Vec<u64> = (0..palette).filter(|c| !self.nbr_colors.contains(c)).collect();
            self.proposal = free[self.rng.gen_range(0..free.len())];
            Action::Broadcast(FieldMsg::new(&[(0, 2), (self.proposal, palette)]))
        } else {
            // Commit round: keep the proposal iff no live neighbor proposed
            // the same color; freezing vertices announce and halt, so the
            // announcement reaches live neighbors in their next proposal
            // round.
            let clash = inbox.iter().any(|(_, m)| m.field(0) == 0 && m.field(1) == self.proposal);
            if clash {
                return Action::idle();
            }
            self.color = Some(self.proposal);
            Action::Halt(ctx.broadcast(FieldMsg::new(&[(1, 2), (self.proposal, palette)])))
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        // INVARIANT: the run loop halts only once every element is decided, so the Option is always Some.
        self.color.expect("trial loop colors every vertex")
    }
}

/// A randomized-trial `(2Δ)`-vertex-coloring baseline in `Θ(log n)` rounds
/// w.h.p. — the vertex analogue of [`randomized_trial_edge_color`], standing
/// in for the randomized vertex-coloring state of the art (\[29\], \[18\]) in
/// Table 2's comparisons. Deterministic for a fixed seed.
pub fn randomized_trial_vertex_color(
    g: &Graph,
    seed: u64,
) -> (deco_graph::coloring::VertexColoring, RunStats) {
    let palette = (2 * g.max_degree()).max(1) as u64;
    let net = Network::new(g);
    let mut pl = Pipeline::new(&net);
    let outputs = pl.run("randomized-trial-vertices", |ctx| VertexTrial {
        palette,
        rng: StdRng::seed_from_u64(seed ^ ctx.ident.wrapping_mul(0xd134_2543_de82_ef95)),
        color: None,
        nbr_colors: Vec::new(),
        proposal: 0,
    });
    (deco_graph::coloring::VertexColoring::new(outputs), pl.into_stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn proper_within_2delta_palette() {
        for g in [
            generators::complete(8),
            generators::petersen(),
            generators::random_bounded_degree(100, 8, 3),
        ] {
            let (coloring, stats) = randomized_trial_edge_color(&g, 12345);
            assert!(coloring.is_proper(&g));
            assert!(coloring.palette_size() < 2 * g.max_degree());
            assert!(stats.rounds % 4 == 1 || stats.rounds > 0);
        }
    }

    #[test]
    fn seeded_determinism() {
        let g = generators::random_bounded_degree(60, 6, 8);
        let a = randomized_trial_edge_color(&g, 7);
        let b = randomized_trial_edge_color(&g, 7);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn rounds_grow_with_n_at_fixed_delta() {
        // The Table 2 shape: randomized baselines pay for n.
        let small = randomized_trial_edge_color(&generators::random_bounded_degree(32, 6, 2), 5);
        let large = randomized_trial_edge_color(&generators::random_bounded_degree(4096, 6, 2), 5);
        assert!(large.1.rounds >= small.1.rounds);
    }

    #[test]
    fn single_edge_graph() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let (coloring, _) = randomized_trial_edge_color(&g, 1);
        assert!(coloring.is_proper(&g));
    }

    #[test]
    fn vertex_trial_proper_within_2delta() {
        for g in [
            generators::complete(9),
            generators::petersen(),
            generators::random_bounded_degree(150, 9, 7),
            generators::clique_with_pendants(8),
        ] {
            let (coloring, stats) = randomized_trial_vertex_color(&g, 31337);
            assert!(coloring.is_proper(&g));
            assert!(coloring.color_bound() <= 2 * g.max_degree().max(1) as u64);
            assert!(stats.rounds >= 2);
        }
    }

    #[test]
    fn vertex_trial_seeded() {
        let g = generators::random_bounded_degree(80, 7, 9);
        let a = randomized_trial_vertex_color(&g, 4);
        let b = randomized_trial_vertex_color(&g, 4);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
