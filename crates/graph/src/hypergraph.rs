//! Hypergraphs and their line graphs.
//!
//! Section 1.2 of the paper observes that for an `r`-hypergraph `H` (every
//! hyperedge contains at most `r` vertices), the line graph `L(H)` has
//! neighborhood independence at most `r`, so the paper's vertex-coloring
//! results apply to it directly.

use crate::{Graph, GraphError, Vertex};

/// A hypergraph: vertices `0..n` and a list of hyperedges, each a set of
/// vertices.
///
/// # Example
///
/// ```
/// use deco_graph::hypergraph::Hypergraph;
///
/// let h = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]])?;
/// assert_eq!(h.rank(), 3);
/// let l = h.line_graph();
/// // The two hyperedges share vertex 2, so L(H) has one edge.
/// assert_eq!(l.m(), 1);
/// # Ok::<(), deco_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<Vertex>>,
}

impl Hypergraph {
    /// Creates a hypergraph with `n` vertices and the given hyperedges.
    ///
    /// Each hyperedge is normalized to sorted, deduplicated vertex order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if a hyperedge mentions a
    /// vertex `>= n`.
    pub fn new(n: usize, edges: Vec<Vec<Vertex>>) -> Result<Hypergraph, GraphError> {
        let mut normalized = Vec::with_capacity(edges.len());
        for mut e in edges {
            for &v in &e {
                if v >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
            }
            e.sort_unstable();
            e.dedup();
            normalized.push(e);
        }
        Ok(Hypergraph { n, edges: normalized })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges (each sorted and deduplicated).
    pub fn edges(&self) -> &[Vec<Vertex>] {
        &self.edges
    }

    /// The rank `r`: the maximum hyperedge cardinality (0 if no edges).
    /// An `r`-hypergraph in the paper's terminology has rank at most `r`.
    pub fn rank(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Maximum vertex degree: the largest number of hyperedges containing a
    /// single vertex.
    pub fn max_vertex_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            for &v in e {
                deg[v] += 1;
            }
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// The line graph `L(H)`: one vertex per hyperedge, adjacent iff the
    /// hyperedges intersect. By Section 1.2 of the paper,
    /// `I(L(H)) <= rank(H)`.
    pub fn line_graph(&self) -> Graph {
        let k = self.edges.len();
        let mut touching: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (i, e) in self.edges.iter().enumerate() {
            for &v in e {
                touching[v].push(i);
            }
        }
        let mut b = Graph::builder(k);
        for group in &touching {
            for (a, &i) in group.iter().enumerate() {
                for &j in &group[a + 1..] {
                    // INVARIANT: line-graph vertex indices come from enumerate() over the edge list, so they are in range.
                    b.add_edge_dedup(i, j).expect("indices in range");
                }
            }
        }
        // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
        b.build().expect("line graph construction produces no duplicates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::neighborhood_independence;

    #[test]
    fn rejects_out_of_range() {
        assert!(Hypergraph::new(3, vec![vec![0, 3]]).is_err());
    }

    #[test]
    fn normalizes_edges() {
        let h = Hypergraph::new(4, vec![vec![2, 0, 2, 1]]).unwrap();
        assert_eq!(h.edges()[0], vec![0, 1, 2]);
        assert_eq!(h.rank(), 3);
    }

    #[test]
    fn line_graph_of_disjoint_edges_is_edgeless() {
        let h = Hypergraph::new(6, vec![vec![0, 1], vec![2, 3], vec![4, 5]]).unwrap();
        let l = h.line_graph();
        assert_eq!(l.n(), 3);
        assert_eq!(l.m(), 0);
    }

    #[test]
    fn line_graph_neighborhood_independence_at_most_rank() {
        // A 3-uniform "sunflower": 5 petals sharing a common core vertex.
        let mut edges = Vec::new();
        for p in 0..5 {
            edges.push(vec![0, 1 + 2 * p, 2 + 2 * p]);
        }
        let h = Hypergraph::new(11, edges).unwrap();
        assert_eq!(h.rank(), 3);
        let l = h.line_graph();
        assert!(neighborhood_independence(&l) <= 3);
        // All petals pairwise intersect at the core: L(H) is a clique.
        assert_eq!(l.m(), 5 * 4 / 2);
    }

    #[test]
    fn vertex_degree() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![0, 2], vec![0, 1, 2]]).unwrap();
        assert_eq!(h.max_vertex_degree(), 3);
        assert_eq!(h.edge_count(), 3);
    }
}
