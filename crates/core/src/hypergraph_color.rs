//! Hyperedge coloring of `r`-hypergraphs (Section 1.2).
//!
//! A proper hyperedge coloring gives intersecting hyperedges distinct
//! colors — i.e. a proper vertex coloring of the line graph `L(H)`, whose
//! neighborhood independence is at most the rank `r`. The paper highlights
//! this family as a direct beneficiary of the bounded-NI machinery: for
//! constant `r`, `O(Δ_L)` colors in time independent of the hypergraph
//! size.

use crate::legal::{legal_color, LegalRun};
use crate::params::{LegalParams, ParamError};
use deco_graph::hypergraph::Hypergraph;
use deco_local::Network;

/// Result of coloring a hypergraph's hyperedges.
#[derive(Debug, Clone)]
pub struct HypergraphRun {
    /// The inner vertex run on `L(H)`; `inner.coloring.color(i)` is the
    /// color of hyperedge `i`.
    pub inner: LegalRun,
    /// The rank `r` used as the neighborhood-independence bound.
    pub rank: u64,
    /// Maximum degree of the conflict graph `L(H)`.
    pub conflict_degree: u64,
}

/// Colors the hyperedges of `h` so that intersecting hyperedges get
/// distinct colors, using Procedure Legal-Color on `L(H)` with `c = rank(H)`.
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for `c = rank(H)`.
///
/// # Example
///
/// ```
/// use deco_core::hypergraph_color::color_hyperedges;
/// use deco_core::params::LegalParams;
/// use deco_graph::generators;
///
/// let h = generators::random_hypergraph(50, 150, 3, 7);
/// let run = color_hyperedges(&h, LegalParams::log_depth(3, 1))?;
/// // No two intersecting hyperedges share a color:
/// let l = h.line_graph();
/// assert!(run.inner.coloring.is_proper(&l));
/// # Ok::<(), deco_core::params::ParamError>(())
/// ```
pub fn color_hyperedges(h: &Hypergraph, params: LegalParams) -> Result<HypergraphRun, ParamError> {
    let rank = h.rank().max(1) as u64;
    let l = h.line_graph();
    let conflict_degree = l.max_degree() as u64;
    let net = Network::new(&l);
    let inner = legal_color(&net, rank, params)?;
    Ok(HypergraphRun { inner, rank, conflict_degree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn colors_random_hypergraphs() {
        for r in [2usize, 3, 4] {
            let h = generators::random_hypergraph(40, 100, r, r as u64);
            let run = color_hyperedges(&h, LegalParams::log_depth(r as u64, 1)).unwrap();
            let l = h.line_graph();
            assert!(run.inner.coloring.is_proper(&l), "rank {r} coloring improper");
            assert_eq!(run.rank, r as u64);
            assert_eq!(run.conflict_degree, l.max_degree() as u64);
        }
    }

    #[test]
    fn graph_case_is_rank_two() {
        // A 2-uniform hypergraph is a (multi)graph; its hyperedge coloring
        // is an edge coloring.
        let edges: Vec<Vec<usize>> =
            generators::petersen().edges().map(|(u, v)| vec![u, v]).collect();
        let h = Hypergraph::new(10, edges).unwrap();
        let run = color_hyperedges(&h, LegalParams::log_depth(2, 1)).unwrap();
        let ec = deco_graph::coloring::EdgeColoring::new(run.inner.coloring.colors().to_vec());
        assert!(ec.is_proper(&generators::petersen()));
    }

    #[test]
    fn disjoint_hyperedges_may_share_colors() {
        let h = Hypergraph::new(9, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]).unwrap();
        let run = color_hyperedges(&h, LegalParams::log_depth(3, 1)).unwrap();
        // Conflict graph is edgeless: a single color suffices and Λ = 0.
        assert_eq!(run.inner.coloring.palette_size(), 1);
    }
}
