//! The probe determinism contract, pinned end to end.
//!
//! Everything a [`Probe`](deco_probe::Probe) records except `Env` events
//! is part of the workspace determinism contract: bit-identical across
//! `DECO_THREADS`, `DECO_DELIVERY` and both engines. These tests pin a
//! concrete event-stream digest for a seeded churn replay, so *any*
//! thread- or delivery-dependent leak into the stream shows up as an
//! explicit diff; CI replays this binary across the `DECO_THREADS`
//! {1, 2, 8} × delivery matrix, and every leg must land on the same
//! constant. The satellite contracts ride along: a `NullProbe` changes no
//! observable output, and the `Round`/`Env(round_trace)` events are
//! exactly the [`RoundLoad`]/[`RoundTrace`] profiles the simulator already
//! returns.

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::churn_trace;
use deco_local::{encode_round_trace, Action, Network, NodeCtx, Protocol, RoundLoad, RunStats};
use deco_probe::{digest_events, read_jsonl, Event, JsonlProbe, RecordingProbe};
use deco_stream::{replay_trace, replay_trace_probed};
use std::sync::Arc;

/// The canonical probed workload: a seeded 10k-vertex churn trace —
/// from-scratch build, three incremental commits — replayed through the
/// legacy engine.
fn probed_replay(probe: Arc<dyn deco_probe::Probe>) -> deco_stream::ReplayOutcome {
    let trace = churn_trace(10_000, 8, 3, 100, 0x9B0BE);
    replay_trace_probed(&trace, edge_log_depth(1), MessageMode::Long, 25, probe).unwrap()
}

#[test]
fn event_stream_digest_is_pinned_across_the_matrix() {
    let probe = Arc::new(RecordingProbe::new());
    let out = probed_replay(probe.clone());
    assert_eq!(out.reports.len(), 4);
    // The digest covers every deterministic event — phase spans, round
    // samples, commit decisions — and skips `Env` (wall clock, spill,
    // round_trace mode labels). One constant for all nine
    // threads × delivery legs.
    assert_eq!(probe.digest(), 4_516_618_600_368_630_370);
}

#[test]
fn null_probe_leaves_the_run_untouched() {
    let trace = churn_trace(2_000, 6, 3, 40, 0xFACE);
    let plain = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    let probe = Arc::new(RecordingProbe::new());
    let probed =
        replay_trace_probed(&trace, edge_log_depth(1), MessageMode::Long, 25, probe.clone())
            .unwrap();
    assert_eq!(plain.reports, probed.reports);
    assert_eq!(plain.recolorer.coloring(), probed.recolorer.coloring());
    assert!(!probe.events().is_empty());
}

#[test]
fn jsonl_round_trips_the_exact_stream() {
    let dir = std::env::temp_dir().join(format!("deco-probe-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("churn.profile.jsonl");
    let jsonl = JsonlProbe::create(&path).unwrap();
    probed_replay(Arc::new(jsonl));
    let recording = Arc::new(RecordingProbe::new());
    probed_replay(recording.clone());
    let written = read_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    // Same digest through the file as in memory: the JSONL schema loses
    // nothing the determinism contract covers.
    assert_eq!(digest_events(&written), recording.digest());
    std::fs::remove_dir_all(&dir).ok();
}

/// `k`-round chatter: every node broadcasts its round counter `k` times,
/// so live-node and message curves are nontrivial.
struct Chatter {
    left: u64,
}

impl Protocol for Chatter {
    type Msg = u64;
    type Output = u64;
    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
        ctx.broadcast(self.left)
    }
    fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(usize, u64)]) -> Action<u64> {
        self.left -= 1;
        if self.left == 0 {
            Action::halt()
        } else {
            Action::Continue(ctx.broadcast(self.left))
        }
    }
    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.left
    }
}

#[test]
fn round_events_equal_the_returned_profiles() {
    let g = deco_graph::generators::random_bounded_degree(300, 8, 0x0DD);
    let probe = Arc::new(RecordingProbe::new());
    let net = Network::new(&g).with_probe(probe.clone());
    // Stagger halting by vertex so the live-node curve actually decays.
    let (run, profile, trace) = net.run_traced(|ctx| Chatter { left: 1 + ctx.vertex as u64 % 5 });
    assert_eq!(run.stats.rounds, profile.len());
    let events = probe.events();
    let rounds: Vec<&Event> = events.iter().filter(|e| matches!(e, Event::Round { .. })).collect();
    assert_eq!(rounds.len(), profile.len());
    for (i, (event, load)) in
        rounds.iter().zip(&profile).collect::<Vec<_>>().into_iter().enumerate()
    {
        let &Event::Round {
            round,
            live_nodes,
            messages,
            bits,
            sent_messages,
            sent_bits,
            transport_dropped,
        } = *event
        else {
            unreachable!()
        };
        let want: &RoundLoad = load;
        assert_eq!(round, i as u64 + 1);
        assert_eq!(live_nodes, want.live_nodes as u64);
        assert_eq!(messages, want.messages as u64);
        assert_eq!(bits, want.bits as u64);
        assert_eq!(sent_messages, want.sent_messages as u64);
        assert_eq!(sent_bits, want.sent_bits as u64);
        assert_eq!(transport_dropped, want.transport_dropped as u64);
    }
    // The delivery-mode trace rides as a (non-deterministic) Env event in
    // exactly the run-length encoding the simulator documents.
    let encoded = events
        .iter()
        .find_map(|e| match e {
            Event::Env { key, value } if key == "round_trace" => Some(value.clone()),
            _ => None,
        })
        .expect("round_trace env event");
    assert_eq!(encoded, encode_round_trace(&trace));
}

#[test]
fn commit_exit_stats_sum_to_replay_totals() {
    let probe = Arc::new(RecordingProbe::new());
    let out = probed_replay(probe.clone());
    let mut total = RunStats::zero();
    for rep in &out.reports {
        total += rep.stats;
    }
    let mut sum = deco_probe::Counters::zero();
    for e in probe.events() {
        if let Event::CommitExit { stats, .. } = e {
            sum.absorb(&stats);
        }
    }
    let want = deco_probe::Counters::from(total);
    assert_eq!(sum.rounds, want.rounds);
    assert_eq!(sum.node_rounds, want.node_rounds);
    assert_eq!(sum.messages, want.messages);
    assert_eq!(sum.total_message_bits, want.total_message_bits);
    assert_eq!(sum.commit_bytes, want.commit_bytes);
}
