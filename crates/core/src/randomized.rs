//! Section 6.1: the randomized variant.
//!
//! Kuhn–Wattenhofer's randomized defective coloring \[20\] is a single round:
//! every vertex (edge) picks a uniformly random class among
//! `⌈Δ/ln n⌉`, which has defect `O(log n)` w.h.p. Running the deterministic
//! bounded-NI machinery on every class in parallel then costs time driven by
//! `O(log n)` instead of Δ — `O(log log n)`-shaped overall (Theorem 6.1 /
//! Corollary 6.2).
//!
//! The class-degree bound `B = ⌈6e·ln n⌉` used for the deterministic phase
//! holds with probability `1 - n^{-Ω(1)}` (Chernoff, as in the paper); if a
//! run exceeds it the algorithm still produces a *proper* coloring, but may
//! use more colors than declared — [`RandomizedRun::class_bound_held`]
//! reports whether the bound held.

use crate::edge::legal::{edge_color_in_groups, EdgeRun, MessageMode};
use crate::legal::{legal_color_in_groups, LegalRun};
use crate::msg::FieldMsg;
use crate::params::{LegalParams, ParamError};
use crate::pipeline::Pipeline;
use deco_graph::{Graph, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the randomized vertex algorithm (Theorem 6.1).
#[derive(Debug, Clone)]
pub struct RandomizedRun {
    /// The inner deterministic run (colors, ϑ, levels, stats).
    pub inner: LegalRun,
    /// Number of random classes used in phase 1.
    pub classes: u64,
    /// The assumed per-class degree bound `B`.
    pub class_degree_bound: u64,
    /// Whether the measured class degrees stayed within `B` (w.h.p. true).
    pub class_bound_held: bool,
    /// Total statistics including the announcement round.
    pub stats: RunStats,
}

/// One-round announcement of each vertex's random class.
#[derive(Debug)]
struct AnnounceClass {
    class: u64,
    classes: u64,
}

impl Protocol for AnnounceClass {
    type Msg = FieldMsg;
    type Output = ();

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        ctx.broadcast(FieldMsg::new(&[(self.class, self.classes)]))
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        Action::halt()
    }

    fn finish(self, _ctx: &NodeCtx<'_>) {}
}

/// Natural logarithm of `n`, at least 1.
fn ln_n(n: usize) -> f64 {
    (n.max(3) as f64).ln()
}

/// The number of random classes `⌈Δ/ln n⌉` and the w.h.p. class-degree
/// bound `B = ⌈6e·ln n⌉` of Section 6.1.
pub fn randomized_split(n: usize, delta: u64) -> (u64, u64) {
    let classes = ((delta as f64) / ln_n(n)).ceil().max(1.0) as u64;
    let bound = (6.0 * std::f64::consts::E * ln_n(n)).ceil() as u64;
    (classes, bound.min(delta.max(1)))
}

/// Theorem 6.1: a randomized `O(Δ·min{Δ, log n}^η)`-vertex-coloring of a
/// bounded-NI graph in `O(log log n)`-shaped time, w.h.p.
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract for this `c`.
pub fn randomized_vertex_color(
    net: &Network<'_>,
    c: u64,
    params: LegalParams,
    seed: u64,
) -> Result<RandomizedRun, ParamError> {
    let g = net.graph();
    let delta = g.max_degree() as u64;
    let (classes, bound) = randomized_split(g.n(), delta);

    // Phase 1: every vertex picks a class uniformly at random (its own coin;
    // we derive per-vertex streams from the seed) and announces it.
    let mut rng = StdRng::seed_from_u64(seed);
    let groups: Vec<u64> = (0..g.n()).map(|_| rng.gen_range(0..classes)).collect();
    let mut pl = Pipeline::new(net);
    pl.run("announce-class", |ctx| AnnounceClass { class: groups[ctx.vertex], classes });

    let class_bound_held = (0..g.n())
        .all(|v| g.neighbors(v).filter(|&u| groups[u] == groups[v]).count() as u64 <= bound);

    // Phase 2: deterministic Legal-Color on every class in parallel, with
    // the w.h.p. degree bound as Λ.
    let inner = legal_color_in_groups(net, &groups, classes, c, params, bound, None)?;
    pl.absorb("legal-color-in-classes", inner.stats);
    let stats = pl.into_stats();
    Ok(RandomizedRun { inner, classes, class_degree_bound: bound, class_bound_held, stats })
}

/// Result of the randomized edge algorithm (Corollary 6.2).
#[derive(Debug, Clone)]
pub struct RandomizedEdgeRun {
    /// The inner deterministic edge run.
    pub inner: EdgeRun,
    /// Number of random classes.
    pub classes: u64,
    /// The assumed per-class, per-vertex edge bound.
    pub class_degree_bound: u64,
    /// Whether the measured class degrees stayed within the bound.
    pub class_bound_held: bool,
    /// Total statistics including the announcement round.
    pub stats: RunStats,
}

/// Corollary 6.2: a randomized `O(Δ·min{Δ, log n}^η)`-edge-coloring of a
/// general graph in `O(log log n)`-shaped time, w.h.p. The random class of
/// each edge is chosen by its smaller-identifier endpoint and announced in
/// one round.
///
/// # Errors
///
/// Returns [`ParamError`] if `params` cannot contract (see
/// [`crate::edge::legal::validate_edge_params`]).
pub fn randomized_edge_color(
    g: &Graph,
    params: LegalParams,
    mode: MessageMode,
    seed: u64,
) -> Result<RandomizedEdgeRun, ParamError> {
    let net = Network::new(g);
    let delta = g.max_degree() as u64;
    let (classes, bound) = randomized_split(g.n(), delta);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xed6e_c0de);
    let groups: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..classes)).collect();
    // The owner endpoint announces the class across the edge: one round of
    // O(log n)-bit messages, accounted explicitly.
    let mut pl = Pipeline::new(&net);
    pl.run("announce-edge-class", |ctx| AnnounceEdgeClass {
        classes,
        labels: g.incident(ctx.vertex).map(|(u, e)| (u, groups[e])).collect(),
    });

    let class_bound_held = (0..g.n()).all(|v| {
        let mut counts = std::collections::BTreeMap::new();
        for (_, e) in g.incident(v) {
            *counts.entry(groups[e]).or_insert(0u64) += 1;
        }
        counts.values().all(|&k| k <= bound)
    });

    let inner = edge_color_in_groups(&net, &groups, classes, params, bound, mode)?;
    pl.absorb("edge-color-in-classes", inner.stats);
    let stats = pl.into_stats();
    Ok(RandomizedEdgeRun { inner, classes, class_degree_bound: bound, class_bound_held, stats })
}

#[derive(Debug)]
struct AnnounceEdgeClass {
    classes: u64,
    labels: Vec<(Vertex, u64)>,
}

impl Protocol for AnnounceEdgeClass {
    type Msg = FieldMsg;
    type Output = ();

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        // Only the smaller-ident endpoint speaks (it "owns" the coin).
        self.labels
            .iter()
            .filter(|&&(u, _)| ctx.ident < ctx.ident_of(u))
            .map(|&(u, cls)| (u, FieldMsg::new(&[(cls, self.classes)])))
            .collect()
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        Action::halt()
    }

    fn finish(self, _ctx: &NodeCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::legal::edge_log_depth;
    use deco_graph::generators;
    use deco_graph::line_graph::line_graph;

    #[test]
    fn split_shapes() {
        let (classes, bound) = randomized_split(1 << 10, 64);
        assert!((9..=10).contains(&classes));
        assert!(bound >= 64);
        let (classes, _) = randomized_split(1 << 10, 3);
        assert_eq!(classes, 1);
    }

    #[test]
    fn vertex_variant_proper() {
        let host = generators::random_bounded_degree(80, 10, 51);
        let l = line_graph(&host);
        let net = Network::new(&l);
        let run = randomized_vertex_color(&net, 2, LegalParams::log_depth(2, 1), 7).unwrap();
        assert!(run.inner.coloring.is_proper(&l), "must be proper regardless of luck");
        assert!(run.classes >= 1);
        assert!(run.stats.rounds >= run.inner.stats.rounds);
    }

    #[test]
    fn edge_variant_proper_and_seeded() {
        let g = generators::random_bounded_degree(120, 14, 3);
        let a = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 42).unwrap();
        let b = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 42).unwrap();
        assert!(a.inner.coloring.is_proper(&g));
        assert_eq!(a.inner.coloring, b.inner.coloring, "same seed, same run");
        let c = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 43).unwrap();
        assert!(c.inner.coloring.is_proper(&g));
    }

    #[test]
    fn class_bound_usually_holds() {
        let g = generators::random_bounded_degree(200, 12, 9);
        let run = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 1).unwrap();
        assert!(run.class_bound_held, "w.h.p. bound failed on a fixed seed");
    }
}
