//! TDMA link scheduling in a wireless mesh — the paper's packet-routing
//! motivation, on a bounded-growth topology.
//!
//! Radios are placed in the unit square and can talk within a fixed radius
//! (a unit-disk graph: bounded growth, neighborhood independence at most
//! 5 — Section 1.2's second graph family). Two links sharing a radio cannot
//! transmit in the same TDMA slot, so a legal edge coloring is a collision-
//! free slot assignment. We compare the deterministic algorithms with the
//! randomized-trial baseline, including message sizes: radio firmware cares
//! whether control messages are `O(log n)` or `O(Δ log n)` bits.
//!
//! Run with `cargo run --example packet_routing [radios] [radius_millis] [seed]`.

use deco_core::baselines::randomized_trial::randomized_trial_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_graph::{generators, properties};

fn main() {
    let mut args = std::env::args().skip(1);
    let radios: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let radius_millis: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    let g = generators::unit_disk(radios, radius_millis as f64 / 1000.0, seed);
    println!(
        "mesh: {} radios, {} links, Δ = {}, components = {}",
        g.n(),
        g.m(),
        g.max_degree(),
        g.component_count()
    );
    if g.n() <= 200 {
        println!(
            "neighborhood independence I(G) = {} (≤ 5 for unit disks)",
            properties::neighborhood_independence(&g)
        );
    }

    println!(
        "\n{:<30} {:>7} {:>9} {:>13} {:>13}",
        "scheduler", "slots", "rounds", "max msg bits", "total Mbits"
    );
    let report = |name: &str, slots: usize, stats: deco_local::RunStats| {
        println!(
            "{:<30} {:>7} {:>9} {:>13} {:>13.3}",
            name,
            slots,
            stats.rounds,
            stats.max_message_bits,
            stats.total_message_bits as f64 / 1e6
        );
    };

    let (pr, pr_stats) = pr_edge_color(&g);
    assert!(pr.is_proper(&g));
    report("Panconesi–Rizzi (2Δ-1)", pr.palette_size(), pr_stats);

    let (rt, rt_stats) = randomized_trial_edge_color(&g, seed);
    assert!(rt.is_proper(&g));
    report("randomized trials (2Δ-1)", rt.palette_size(), rt_stats);

    for (label, mode) in
        [("ours, long messages", MessageMode::Long), ("ours, short messages", MessageMode::Short)]
    {
        let run = edge_color(&g, edge_log_depth(1), mode).expect("valid preset");
        assert!(run.coloring.is_proper(&g), "slot assignment must be collision-free");
        report(label, run.coloring.palette_size(), run.stats);
    }

    println!(
        "\nShort messages reproduce the Theorem 5.5 tradeoff: the same schedule,\n\
         O(log n)-bit control traffic, and a factor ≈ p more rounds per level."
    );
}
