//! Figure 3: the recursion tree of Procedure Legal-Color.
//!
//! Prints, per recursion level, the degree bound Λ⁽ʲ⁾ entering the level,
//! the bound Λ⁽ʲ⁺¹⁾ it contracts to (Algorithm 2 line 6), the number of
//! classes, the internal φ palette and the rounds spent — i.e. the values
//! that annotate the nodes of the paper's Figure 3 — for both the vertex
//! algorithm (on the Figure 1 graph) and the edge algorithm (on a random
//! graph).
//!
//! Run with `cargo run --example recursion_trace [delta] [seed]`.

use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_local::Network;

fn main() {
    let mut args = std::env::args().skip(1);
    let delta: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(17);

    // --- Vertex algorithm on the Figure 1 graph (I(G) = 2, Δ = k). ---
    let g = generators::clique_with_pendants(delta);
    let params = LegalParams::log_depth(2, 1);
    println!(
        "vertex Legal-Color on clique-with-pendants(k = {delta}): Δ = {}, b={} p={} λ={}",
        g.max_degree(),
        params.b,
        params.p,
        params.lambda
    );
    let net = Network::new(&g);
    let run = legal_color(&net, 2, params).expect("valid preset");
    assert!(run.coloring.is_proper(&g));
    println!(
        "{:>5} {:>8} {:>8} {:>10} {:>9} {:>8}",
        "level", "Λ_in", "Λ_out", "φ palette", "classes", "rounds"
    );
    for t in &run.levels {
        println!(
            "{:>5} {:>8} {:>8} {:>10} {:>9} {:>8}",
            t.level, t.lambda_in, t.lambda_out, t.phi_palette, t.classes, t.rounds
        );
    }
    println!(
        "bottom: Λ̂ = {} -> (Λ̂+1)-coloring; ϑ⁽⁰⁾ = p^r·(Λ̂+1) = {} (used {})\n",
        run.bottom_lambda,
        run.theta,
        run.coloring.palette_size()
    );

    // --- Edge algorithm on a random graph. ---
    let params = edge_log_depth(1);
    let n = (delta * 12).max(256);
    let h = generators::random_bounded_degree(n, (params.lambda as usize + 20).max(delta), seed);
    println!(
        "edge Legal-Color on random graph: n = {}, Δ = {}, b={} p={} λ={}",
        h.n(),
        h.max_degree(),
        params.b,
        params.p,
        params.lambda
    );
    let run = edge_color(&h, params, MessageMode::Long).expect("valid preset");
    assert!(run.coloring.is_proper(&h));
    println!(
        "{:>5} {:>8} {:>8} {:>10} {:>9} {:>8}",
        "level", "W_in", "W_out", "φ palette", "classes", "rounds"
    );
    for t in &run.levels {
        println!(
            "{:>5} {:>8} {:>8} {:>10} {:>9} {:>8}",
            t.level, t.w_in, t.w_out, t.phi_palette, t.classes, t.rounds
        );
    }
    println!(
        "bottom: Ŵ = {} -> Panconesi–Rizzi (2Ŵ-1) per class; ϑ = {} (used {}), {} total rounds",
        run.bottom_w,
        run.theta,
        run.coloring.palette_size(),
        run.stats.rounds
    );
}
