//! The pipeline runner every algorithm driver goes through.
//!
//! Before PR 2 each driver hand-rolled the same loop: build per-node
//! protocol state, call the simulator, sum the [`RunStats`], merge per-edge
//! replicas, repeat for the next phase — and, because the per-node state
//! held `Rc` tables, all of it was locked out of the threaded runner.
//! [`Pipeline`] centralizes that boilerplate:
//!
//! * **Phase sequencing** — phases run in order against one [`Network`];
//!   each phase's [`RunStats`] accumulates into the pipeline total and is
//!   kept per phase in a [`PhaseTrace`] for diagnostics.
//! * **Threaded execution** — every phase executes through
//!   [`Network::run_profiled_threaded`], so all drivers inherit
//!   deterministic parallel stepping (and the engine/delivery selection of
//!   the underlying network: `Engine::Naive` still routes to the reference
//!   engine for differential benches). Protocol state must be `Send`:
//!   shared read-only tables are held through
//!   [`SharedConfig`](deco_local::SharedConfig), never `Rc`.
//! * **Verification hooks** — [`Pipeline::verify`] runs a boolean-output
//!   protocol (e.g. the one-round checkers in [`crate::verify`]) as a phase
//!   and reports whether every node accepted, charging its rounds to the
//!   pipeline like any other phase.
//!
//! Per-edge algorithms replicate each edge's result at both endpoints;
//! [`merge_edge_replicas`] folds the per-vertex outputs into one value per
//! edge and asserts the replicas agree — the shared consistency check the
//! edge drivers used to copy-paste.

use deco_graph::EdgeIdx;
use deco_local::{Network, NodeCtx, Protocol, RoundLoad, RunStats};
use deco_probe::Event;

/// Stats of one named pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Phase name (static, driver-chosen).
    pub name: &'static str,
    /// The phase's own run statistics.
    pub stats: RunStats,
}

/// Sequences protocol phases over one network, accumulating statistics.
/// See the module docs.
#[derive(Debug)]
pub struct Pipeline<'n, 'g> {
    net: &'n Network<'g>,
    stats: RunStats,
    phases: Vec<PhaseTrace>,
    /// Phase whose `PhaseEnter` was emitted but whose `PhaseExit` is still
    /// pending — set by [`Pipeline::run_profiled`] before the run so the
    /// phase's `Round` events land inside its span, cleared by
    /// [`Pipeline::absorb`].
    pending: Option<&'static str>,
}

impl<'n, 'g> Pipeline<'n, 'g> {
    /// Starts an empty pipeline over `net`.
    pub fn new(net: &'n Network<'g>) -> Pipeline<'n, 'g> {
        Pipeline { net, stats: RunStats::zero(), phases: Vec::new(), pending: None }
    }

    /// The underlying network.
    pub fn net(&self) -> &'n Network<'g> {
        self.net
    }

    /// Runs one protocol phase on the threaded engine and returns the
    /// per-vertex outputs; stats accumulate into the pipeline.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run<P, F>(&mut self, name: &'static str, make: F) -> Vec<P::Output>
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled(name, make).0
    }

    /// [`Pipeline::run`], additionally returning the phase's per-round load
    /// profile.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_profiled<P, F>(
        &mut self,
        name: &'static str,
        make: F,
    ) -> (Vec<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        let probe = self.net.probe();
        if probe.enabled() {
            probe.emit(Event::PhaseEnter { name: name.into() });
            self.pending = Some(name);
        }
        let (run, profile) = self.net.run_profiled_threaded(make);
        self.absorb(name, run.stats);
        (run.outputs, profile)
    }

    /// Verification hook: runs a boolean-verdict protocol phase and returns
    /// whether every node accepted. The verification rounds are charged to
    /// the pipeline like any other phase.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn verify<P, F>(&mut self, name: &'static str, make: F) -> bool
    where
        P: Protocol<Output = bool> + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run(name, make).iter().all(|&ok| ok)
    }

    /// Folds the stats of a nested driver (one that ran its own phases,
    /// e.g. a recursion level) into the pipeline as a named phase.
    ///
    /// With an enabled probe on the network this closes the phase's span:
    /// a `PhaseExit` event carrying the phase's stats, preceded by a
    /// `PhaseEnter` for phases absorbed without a [`Pipeline::run_profiled`]
    /// call (nested drivers emit balanced spans either way). Aggregate
    /// phases absorbed on top of their inner phases overlap them in a
    /// report — the report documents that — so no de-duplication happens
    /// here.
    pub fn absorb(&mut self, name: &'static str, stats: RunStats) {
        let probe = self.net.probe();
        if probe.enabled() {
            if self.pending.take() != Some(name) {
                probe.emit(Event::PhaseEnter { name: name.into() });
            }
            probe.emit(Event::PhaseExit { name: name.into(), stats: stats.into() });
        }
        self.stats += stats;
        self.phases.push(PhaseTrace { name, stats });
    }

    /// Total statistics over all phases so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The per-phase traces, in execution order.
    pub fn phases(&self) -> &[PhaseTrace] {
        &self.phases
    }

    /// Consumes the pipeline, returning the total statistics.
    pub fn into_stats(self) -> RunStats {
        self.stats
    }
}

/// Merges per-vertex replicated edge values into one value per edge.
///
/// Per-edge protocols output `Vec<(edge, value)>` at both endpoints;
/// this folds them into a per-edge vector, asserting (a) the endpoints
/// agree on every edge and (b) every one of the `m` edges was decided.
///
/// # Panics
///
/// Panics if replicas disagree or an edge is missing — both indicate a
/// protocol bug, never valid input.
pub fn merge_edge_replicas(m: usize, per_vertex: &[Vec<(EdgeIdx, u64)>], what: &str) -> Vec<u64> {
    let mut merged: Vec<Option<u64>> = vec![None; m];
    for outputs in per_vertex {
        for &(e, value) in outputs {
            match merged[e] {
                None => merged[e] = Some(value),
                Some(prior) => {
                    assert_eq!(prior, value, "endpoints disagree on {what}({e})");
                }
            }
        }
    }
    merged
        .into_iter()
        .enumerate()
        // INVARIANT: every stage must decide all edges before the pipeline advances; a missing value is a stage bug worth aborting on.
        .map(|(e, v)| v.unwrap_or_else(|| panic!("edge {e} carries no {what} value")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_local::Action;

    struct Ping(bool);
    impl Protocol for Ping {
        type Msg = u64;
        type Output = bool;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
            self.0 = !inbox.is_empty();
            Action::halt()
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> bool {
            self.0
        }
    }

    #[test]
    fn phases_accumulate_stats() {
        let g = generators::cycle(10);
        let net = Network::new(&g);
        let mut pl = Pipeline::new(&net);
        let a = pl.run("first", |_| Ping(false));
        assert!(a.iter().all(|&b| b));
        assert!(pl.verify("check", |_| Ping(false)));
        pl.absorb("external", RunStats { rounds: 3, ..RunStats::zero() });
        assert_eq!(pl.phases().len(), 3);
        assert_eq!(pl.stats().rounds, 1 + 1 + 3);
        let two_runs = pl.phases()[0].stats + pl.phases()[1].stats;
        assert_eq!(two_runs.messages, 2 * 2 * g.m());
        assert_eq!(pl.into_stats().rounds, 5);
    }

    /// Every edge reported from both endpoints with the edge id as value.
    struct EdgeEcho(Vec<(EdgeIdx, u64)>);
    impl Protocol for EdgeEcho {
        type Msg = ();
        type Output = Vec<(EdgeIdx, u64)>;
        fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(usize, ())> {
            Vec::new()
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(usize, ())]) -> Action<()> {
            Action::halt()
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
            self.0
        }
    }

    #[test]
    fn merge_checks_agreement() {
        let g = generators::path(4);
        let net = Network::new(&g);
        let mut pl = Pipeline::new(&net);
        let outs = pl.run("echo", |ctx| {
            EdgeEcho(g.incident(ctx.vertex).map(|(_, e)| (e, e as u64 * 7)).collect())
        });
        let merged = merge_edge_replicas(g.m(), &outs, "echo");
        assert_eq!(merged, vec![0, 7, 14]);
    }

    #[test]
    #[should_panic(expected = "endpoints disagree")]
    fn merge_rejects_disagreement() {
        let per_vertex = vec![vec![(0usize, 1u64)], vec![(0usize, 2u64)]];
        let _ = merge_edge_replicas(1, &per_vertex, "test");
    }

    #[test]
    #[should_panic(expected = "carries no")]
    fn merge_rejects_missing_edge() {
        let per_vertex = vec![vec![(0usize, 1u64)]];
        let _ = merge_edge_replicas(2, &per_vertex, "test");
    }

    #[test]
    fn probe_sees_balanced_phase_spans() {
        use deco_probe::{Event, RecordingProbe};
        use std::sync::Arc;
        let g = generators::cycle(10);
        let probe = Arc::new(RecordingProbe::new());
        let net = Network::new(&g).with_probe(probe.clone());
        let mut pl = Pipeline::new(&net);
        pl.run("first", |_| Ping(false));
        pl.absorb("external", RunStats { rounds: 3, node_rounds: 30, ..RunStats::zero() });
        let events = probe.events();
        let spans: Vec<(&str, &str)> = events
            .iter()
            .filter_map(|e| match e {
                Event::PhaseEnter { name } => Some(("enter", name.as_ref())),
                Event::PhaseExit { name, .. } => Some(("exit", name.as_ref())),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            [("enter", "first"), ("exit", "first"), ("enter", "external"), ("exit", "external")]
        );
        // The run's rounds were emitted inside the "first" span.
        let round_pos = events.iter().position(|e| matches!(e, Event::Round { .. })).unwrap();
        let exit_pos = events
            .iter()
            .position(|e| matches!(e, Event::PhaseExit { name, .. } if name == "first"))
            .unwrap();
        assert!(round_pos < exit_pos);
        // The absorbed phase's stats ride on its exit event.
        let Some(Event::PhaseExit { stats, .. }) = events.last() else {
            panic!("expected trailing PhaseExit");
        };
        assert_eq!((stats.rounds, stats.node_rounds), (3, 30));
    }

    #[test]
    fn merge_accepts_max_sentinel_free_values() {
        // u64::MAX is a legitimate value, not an in-band "missing" marker.
        let per_vertex = vec![vec![(0usize, u64::MAX)], vec![(0usize, u64::MAX)]];
        assert_eq!(merge_edge_replicas(1, &per_vertex, "test"), vec![u64::MAX]);
    }
}
