//! Reproduction of *Distributed Deterministic Edge Coloring using Bounded
//! Neighborhood Independence* (Barenboim & Elkin, PODC 2011) for the LOCAL
//! model of distributed computing.
//!
//! The paper's headline results, all implemented here as message-passing
//! protocols over the [`deco_local`] simulator:
//!
//! * **Algorithm 1 (Procedure Defective-Color)** — an `O(Δ/p)`-defective
//!   `p`-coloring of graphs with neighborhood independence bounded by `c`,
//!   in `O((b·p)² + log* n)` rounds ([`defective`]). Its defect × colors
//!   product is *linear* in Δ — the paper's main technical contribution.
//! * **Algorithm 2 (Procedure Legal-Color)** — legal `O(Δ)`- or
//!   `O(Δ^{1+ε})`-vertex-colorings of bounded-NI graphs in `O(Δ^ε) + log* n`
//!   or `O(log Δ) + log* n`-shaped time ([`legal`], Theorems 4.5/4.6/4.8).
//! * **Edge coloring of general graphs** (Section 5) — the native edge
//!   variants ([`edge`], Theorem 5.5) and the line-graph simulation
//!   (Theorem 5.3), since `I(L(G)) <= 2` for every `G` (Lemma 5.1).
//! * **Extensions** (Section 6) — the randomized `O(log log n)`-time variant
//!   ([`randomized`]) and the colors/time tradeoff ([`tradeoff`]).
//!
//! Subroutines from prior work that the paper builds on are implemented in
//! full: Linial's `O(Δ²)`-coloring ([`code_reduction`]), Kuhn's defective
//! colorings ([`math::kuhn_schedule`], [`edge::kuhn_labels`]), the
//! Kuhn–Wattenhofer color reduction ([`reduction`]), Cole–Vishkin 3-coloring
//! ([`cole_vishkin`]) and the Panconesi–Rizzi `(2Δ-1)`-edge-coloring
//! ([`edge::panconesi_rizzi`]). Baselines for the paper's comparison tables
//! live in [`baselines`].
//!
//! # Quickstart
//!
//! ```
//! use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
//! use deco_graph::generators;
//!
//! let g = generators::random_bounded_degree(200, 8, 42);
//! let run = edge_color(&g, edge_log_depth(1), MessageMode::Long)?;
//! assert!(run.coloring.is_proper(&g));
//! println!("{} colors in {} rounds", run.coloring.palette_size(), run.stats.rounds);
//! # Ok::<(), deco_core::params::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod code_reduction;
pub mod cole_vishkin;
pub mod defective;
pub mod edge;
pub mod hypergraph_color;
pub mod legal;
pub mod math;
pub mod msg;
pub mod orientation_color;
pub mod params;
pub mod pipeline;
pub mod randomized;
pub mod reduction;
pub mod tradeoff;
pub mod verify;

pub use deco_graph as graph;
pub use deco_local as local;
