//! Compact message encoding shared by the coloring protocols.

use deco_local::{bits_for_range, Message};

/// Fields of up to `INLINE_FIELDS` values live inline (no heap); longer
/// payloads (e.g. the Panconesi–Rizzi used-color lists) spill to a `Vec`.
/// Three is the largest count any fixed-layout protocol message uses, and
/// it keeps the struct at 40 bytes — the delivery arenas hold two
/// `Option<FieldMsg>` slots per directed edge, so every byte here is paid
/// `4m` times per network.
const INLINE_FIELDS: usize = 3;

#[derive(Debug, Clone)]
enum Repr {
    Inline { len: u8, vals: [u64; INLINE_FIELDS] },
    Heap(Vec<u64>),
}

/// A message consisting of a few bounded integer fields.
///
/// Each field is accounted at the bit width of its *domain* (not its value),
/// which is how the paper measures message size: a color from a palette of
/// `m` colors costs `⌈log₂ m⌉` bits regardless of its value.
///
/// Nearly every protocol message in this workspace has at most three
/// fields, which are stored inline: constructing and
/// cloning such a message allocates nothing, keeping the simulators'
/// per-message cost flat on the hot paths (millions of messages per run).
#[derive(Debug, Clone)]
pub struct FieldMsg {
    repr: Repr,
    /// Bit size of the wire encoding (`u32`: sizes are `O(Δ log n)`).
    bits: u32,
}

impl FieldMsg {
    /// Builds a message from `(value, domain_size)` pairs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a value lies outside its declared domain.
    pub fn new(fields: &[(u64, u64)]) -> FieldMsg {
        let mut bits = 0;
        let repr = if fields.len() <= INLINE_FIELDS {
            let mut vals = [0u64; INLINE_FIELDS];
            for (slot, &(value, domain)) in vals.iter_mut().zip(fields) {
                debug_assert!(value < domain.max(1), "field value {value} outside domain {domain}");
                bits += bits_for_range(domain);
                *slot = value;
            }
            Repr::Inline { len: fields.len() as u8, vals }
        } else {
            let mut values = Vec::with_capacity(fields.len());
            for &(value, domain) in fields {
                debug_assert!(value < domain.max(1), "field value {value} outside domain {domain}");
                bits += bits_for_range(domain);
                values.push(value);
            }
            Repr::Heap(values)
        };
        FieldMsg { repr, bits: bits.max(1) as u32 }
    }

    /// Builds a message with an explicit bit size, for payloads whose wire
    /// encoding is not a sequence of bounded integers (e.g. a used-color
    /// bitmap of `palette` bits carrying the listed values).
    pub fn with_bits(fields: Vec<u64>, bits: usize) -> FieldMsg {
        let repr = if fields.len() <= INLINE_FIELDS {
            let mut vals = [0u64; INLINE_FIELDS];
            vals[..fields.len()].copy_from_slice(&fields);
            Repr::Inline { len: fields.len() as u8, vals }
        } else {
            Repr::Heap(fields)
        };
        FieldMsg { repr, bits: bits.max(1) as u32 }
    }

    /// The `i`-th field value.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> u64 {
        self.fields()[i]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields().len()
    }

    /// Whether the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields().is_empty()
    }

    /// All field values.
    pub fn fields(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(values) => values,
        }
    }
}

impl PartialEq for FieldMsg {
    fn eq(&self, other: &FieldMsg) -> bool {
        self.bits == other.bits && self.fields() == other.fields()
    }
}

impl Eq for FieldMsg {}

impl Message for FieldMsg {
    fn size_bits(&self) -> usize {
        self.bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accounting_uses_domains() {
        let m = FieldMsg::new(&[(0, 1024), (3, 8)]);
        assert_eq!(m.size_bits(), 10 + 3);
        assert_eq!(m.field(0), 0);
        assert_eq!(m.fields(), &[0, 3]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let _ = FieldMsg::new(&[(9, 8)]);
    }

    #[test]
    fn minimum_one_bit() {
        assert_eq!(FieldMsg::new(&[]).size_bits(), 1);
    }

    #[test]
    fn long_payloads_spill_to_heap_and_compare_by_value() {
        // 6 fields exceed the inline capacity; accessors and equality are
        // representation-agnostic.
        let long = FieldMsg::new(&[(1, 2), (2, 4), (3, 4), (0, 2), (1, 2), (1, 2)]);
        assert_eq!(long.len(), 6);
        assert_eq!(long.fields(), &[1, 2, 3, 0, 1, 1]);
        assert_eq!(long.size_bits(), 1 + 2 + 2 + 1 + 1 + 1);
        let same = FieldMsg::with_bits(vec![1, 2, 3, 0, 1, 1], 8);
        assert_eq!(long, same);
        let inline = FieldMsg::with_bits(vec![1, 2], 3);
        assert_eq!(inline, FieldMsg::new(&[(1, 2), (2, 4)]));
    }
}
