//! Graph substrate for the reproduction of *Distributed Deterministic Edge
//! Coloring using Bounded Neighborhood Independence* (Barenboim & Elkin,
//! PODC 2011).
//!
//! This crate provides everything the distributed algorithms need to know
//! about graphs, but none of the distribution itself:
//!
//! * [`Graph`] — an immutable, deterministic CSR representation of a simple
//!   undirected graph with distinct vertex identifiers, plus explicit edge
//!   indices so edge-coloring algorithms can address edges directly.
//! * [`generators`] — deterministic and seeded-random graph families used by
//!   the paper's experiments: cliques, paths, random bounded-degree graphs,
//!   unit-disk graphs (bounded growth), the Figure 1 clique-plus-pendants
//!   graph, and random `r`-uniform hypergraphs.
//! * [`line_graph`] — line graphs of graphs and hypergraphs (Section 5 of the
//!   paper reduces edge coloring to vertex coloring of `L(G)`).
//! * [`properties`] — centralized oracles used by tests and benches:
//!   neighborhood independence `I(G)` (Definition 3.1), degeneracy, growth,
//!   claw-freeness.
//! * [`coloring`] — vertex/edge coloring containers with validity and defect
//!   checkers (an `m`-defective coloring allows up to `m` same-colored
//!   neighbors; Section 1.3).
//! * [`orientation`] — edge orientations with out-degree and acyclicity
//!   queries (Lemma 3.4 and Lemma 3.5 reason about acyclic orientations).
//! * [`MutableGraph`] + [`trace`] — batched topology mutation with atomic
//!   **delta-CSR commits** ([`Graph::patched`]: only touched adjacency is
//!   spliced, and the result is bit-identical to a from-scratch rebuild),
//!   plus the replayable plain-text churn-trace format (including the
//!   `shrink` compaction op) and seeded churn generator that feed the
//!   streaming recoloring engine.
//! * [`SegmentedGraph`] — the segmented-CSR mutable store: per-vertex
//!   extents behind a stable indirection table, stable edge ids, and
//!   epoch-tagged mirror slots, so a commit writes O(region) bytes instead
//!   of rewriting the whole snapshot. [`Graph::patched`] stays the
//!   bit-exact differential oracle.
//!
//! # Example
//!
//! ```
//! use deco_graph::{generators, properties};
//!
//! // The Figure 1 graph: every clique vertex gets a pendant neighbor.
//! let g = generators::clique_with_pendants(8);
//! assert_eq!(g.n(), 16);
//! // Its neighborhood independence is 2 even though it contains a clique.
//! assert_eq!(properties::neighborhood_independence(&g), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph_impl;
mod mutable;
mod segmented;

pub mod coloring;
pub mod generators;
pub mod hypergraph;
pub mod io;
pub mod line_graph;
pub mod orientation;
pub mod properties;
pub mod trace;

pub use error::GraphError;
pub use graph_impl::{Graph, GraphBuilder};
pub use mutable::{CommitDelta, MutableGraph};
pub use segmented::{SegCommitDelta, SegExtent, SegmentedGraph};

/// Vertex index in `0..n`. The distinct identifier of a vertex is
/// [`Graph::ident`], which is what the distributed algorithms use for
/// symmetry breaking.
pub type Vertex = usize;

/// Edge index in `0..m`, addressing the normalized edge list of a [`Graph`].
pub type EdgeIdx = usize;
