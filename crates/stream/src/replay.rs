//! Trace replay: drive any [`RegionRecolor`] engine from a parsed churn
//! trace.

use crate::config::RecolorConfig;
use crate::facade::RegionRecolor;
use crate::recolor::{CommitReport, Recolorer};
use deco_core::edge::legal::MessageMode;
use deco_core::params::{LegalParams, ParamError};
use deco_graph::trace::{Trace, TraceOp};
use deco_graph::GraphError;
use deco_probe::{Event, Probe};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
// tidy: allow(wall-clock) — replay reports per-commit wall time only as
// non-fatal Env probe events and ReplayRun timings; no deterministic
// counter reads the clock.
use std::time::{Duration, Instant};

/// Error from [`replay_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The parameters cannot contract.
    Params(ParamError),
    /// A trace operation was invalid for the evolving topology.
    Graph {
        /// 0-based commit index of the failing batch.
        commit: usize,
        /// The underlying graph error.
        error: GraphError,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Params(e) => write!(f, "invalid parameters: {e}"),
            ReplayError::Graph { commit, error } => write!(f, "commit {commit}: {error}"),
        }
    }
}

impl Error for ReplayError {}

impl From<ParamError> for ReplayError {
    fn from(e: ParamError) -> Self {
        ReplayError::Params(e)
    }
}

/// The outcome of replaying a whole trace.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// One report per commit, in order.
    pub reports: Vec<CommitReport>,
    /// Wall time of each commit (repair included), aligned with `reports`.
    /// Excluded from the determinism contract, obviously.
    pub wall: Vec<Duration>,
    /// The engine after the final commit (coloring, snapshot).
    pub recolorer: Recolorer,
}

/// The outcome of [`replay_trace_on`]: the caller keeps the engine, so
/// only the per-commit record comes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRun {
    /// One report per commit, in order.
    pub reports: Vec<CommitReport>,
    /// Wall time of each commit (repair included), aligned with `reports`.
    /// Excluded from the determinism contract, obviously.
    pub wall: Vec<Duration>,
}

/// Queues one trace operation on any engine (a thin forwarder to
/// [`RegionRecolor::queue_op`], kept for source compatibility — callers
/// holding a concrete [`Recolorer`] or
/// [`SegRecolorer`](crate::SegRecolorer) coerce here unchanged).
///
/// # Errors
///
/// Returns [`GraphError`] exactly when the underlying queueing call does.
pub fn queue_op(r: &mut dyn RegionRecolor, op: TraceOp) -> Result<(), GraphError> {
    r.queue_op(op)
}

/// Replays every committed batch of `trace` through a caller-supplied
/// engine — the representation-agnostic workhorse under [`replay_trace`],
/// the `deco-stream` CLI and the `deco-serve` tenants. Each commit's wall
/// time is additionally emitted as a non-deterministic `Env` event
/// (`commit_wall_micros`) when the engine's probe is enabled.
///
/// The engine need not be fresh; replaying onto a mid-life engine simply
/// continues its commit history.
///
/// # Errors
///
/// Returns [`ReplayError::Graph`] on an invalid batch; the engine is left
/// as of the last successful commit with the failing batch discarded.
pub fn replay_trace_on(
    engine: &mut dyn RegionRecolor,
    trace: &Trace,
) -> Result<ReplayRun, ReplayError> {
    let mut reports = Vec::new();
    let mut wall = Vec::new();
    for (commit, batch) in trace.batches().into_iter().enumerate() {
        // tidy: allow(wall-clock) — informational commit timing, emitted
        // as an Env event the probe digest skips.
        let t0 = Instant::now();
        for &op in batch {
            engine.queue_op(op).map_err(|error| ReplayError::Graph { commit, error })?;
        }
        let report = engine.commit().map_err(|error| ReplayError::Graph { commit, error })?;
        let elapsed = t0.elapsed();
        let probe = engine.probe();
        if probe.enabled() {
            probe.emit(Event::env("commit_wall_micros", elapsed.as_micros().to_string()));
        }
        wall.push(elapsed);
        reports.push(report);
    }
    Ok(ReplayRun { reports, wall })
}

/// Replays every committed batch of `trace` through a fresh [`Recolorer`],
/// collecting per-commit reports and wall times.
///
/// # Errors
///
/// Returns [`ReplayError`] on invalid parameters or an invalid batch.
pub fn replay_trace(
    trace: &Trace,
    params: LegalParams,
    mode: MessageMode,
    threshold_pct: u32,
) -> Result<ReplayOutcome, ReplayError> {
    replay_trace_probed(trace, params, mode, threshold_pct, deco_probe::null())
}

/// [`replay_trace`] with a structured event sink attached to the engine
/// (see [`RecolorConfig::with_probe`]): every commit's decision trail, phase
/// spans and round samples land in `probe`, plus one non-deterministic
/// `Env` event per commit carrying its wall time in microseconds
/// (`commit_wall_micros` — excluded from determinism digests like every
/// `Env` event, same policy as the bench gate's `environment` blocks).
///
/// # Errors
///
/// Returns [`ReplayError`] on invalid parameters or an invalid batch.
pub fn replay_trace_probed(
    trace: &Trace,
    params: LegalParams,
    mode: MessageMode,
    threshold_pct: u32,
    probe: Arc<dyn Probe>,
) -> Result<ReplayOutcome, ReplayError> {
    let cfg = RecolorConfig::default().with_repair_threshold(threshold_pct).with_probe(probe);
    let mut recolorer = Recolorer::new_with(trace.n0, params, mode, cfg)?;
    let run = replay_trace_on(&mut recolorer, trace)?;
    Ok(ReplayOutcome { reports: run.reports, wall: run.wall, recolorer })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recolor::RepairStrategy;
    use deco_core::edge::legal::edge_log_depth;
    use deco_graph::trace::{churn_trace, parse_trace};

    #[test]
    fn churn_trace_replays_clean() {
        let trace = churn_trace(120, 5, 4, 6, 0x5eed);
        let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
        assert_eq!(out.reports.len(), 5);
        assert_eq!(out.reports[0].strategy, RepairStrategy::FromScratch);
        let c = out.recolorer.coloring();
        assert!(c.is_proper(out.recolorer.graph()));
        for rep in &out.reports[1..] {
            assert!(rep.dirty <= 12, "1-commit churn of 6+6 edges, got {}", rep.dirty);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = churn_trace(80, 4, 3, 4, 7);
        let a = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
        let b = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.recolorer.coloring(), b.recolorer.coloring());
    }

    #[test]
    fn invalid_batch_reports_commit_index() {
        let trace = parse_trace("t 3\n+ 0 1\ncommit\n- 1 2\ncommit\n").unwrap();
        let err = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap_err();
        assert!(matches!(err, ReplayError::Graph { commit: 1, .. }));
        assert!(err.to_string().contains("commit 1"));
    }

    #[test]
    fn vertex_growth_and_idents_replay() {
        let trace = parse_trace("t 2\n+ 0 1\ncommit\nv 1\ni 2 9\n+ 1 2\ncommit\n").unwrap();
        let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
        let g = out.recolorer.graph();
        assert_eq!(g.n(), 3);
        assert_eq!(g.ident(2), 9);
        assert!(out.recolorer.coloring().is_proper(g));
    }
}
