//! **E11 — phase structure**: the per-round delivered-message profile of
//! one Defective-Color level of the edge algorithm.
//!
//! The while-loop of Algorithm 1 drains φ-classes in order: edges whose
//! smaller-φ incident edges have all decided pick their ψ and fall silent.
//! Profiling the simulator's deliveries per round makes the predicted decay
//! visible: heavy early epochs, then a long quiet tail driven by the few
//! longest φ-chains (Lemma 3.2's `R + φ(v)` bound).

use deco_bench::{banner, scale, Scale, Table};
use deco_core::edge::defective::{edge_defective_color_in_groups_profiled, MessageMode};
use deco_core::edge::legal::edge_log_depth;
use deco_graph::generators;
use deco_local::Network;

fn main() {
    banner("E11 / profile", "per-round load of one Defective-Color level");
    let params = edge_log_depth(1);
    let (n, extra) = match scale() {
        Scale::Quick => (300usize, 12u64),
        Scale::Full => (900, 40),
    };
    let g = generators::random_bounded_degree(n, (params.lambda + extra) as usize, 0xE11);
    let w = g.max_degree() as u64;
    println!(
        "workload: n = {}, m = {}, Δ = {w}; one level with b={}, p={}\n",
        g.n(),
        g.m(),
        params.b,
        params.p
    );

    let net = Network::new(&g);
    let groups = vec![0u64; g.m()];
    let (run, profile) = edge_defective_color_in_groups_profiled(
        &net,
        &groups,
        params.b,
        params.p,
        w,
        MessageMode::Long,
    );
    println!(
        "level: {} total rounds ({} in the ψ-selection loop), φ palette {}\n",
        run.stats.rounds,
        profile.len(),
        run.phi_palette
    );

    let table = Table::new(
        &["epoch rounds", "avg msgs/round", "max msgs", "avg bits/round"],
        &[14, 14, 10, 14],
    );
    let chunk = profile.len().div_ceil(10).max(1);
    for (i, block) in profile.chunks(chunk).enumerate() {
        let msgs: usize = block.iter().map(|r| r.messages).sum();
        let bits: usize = block.iter().map(|r| r.bits).sum();
        let peak = block.iter().map(|r| r.messages).max().unwrap_or(0);
        table.row(&[
            format!("{}..{}", i * chunk + 1, i * chunk + block.len()),
            (msgs / block.len()).to_string(),
            peak.to_string(),
            (bits / block.len()).to_string(),
        ]);
    }

    let first = profile.first().map(|r| r.messages).unwrap_or(0);
    let last_busy = profile.iter().rev().find(|r| r.messages > 0).map(|r| r.messages);
    println!(
        "\nshape check: deliveries decay from {} msgs in round 1 to {:?} in the\n\
         last busy round — the while-loop drains φ-classes in order, so traffic\n\
         tracks the undecided-edge count, exactly Lemma 3.2's schedule.",
        first, last_busy
    );
}
