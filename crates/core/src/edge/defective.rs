//! The edge variant of **Algorithm 1 — Procedure Defective-Color**
//! (Section 5).
//!
//! Both endpoints of every edge maintain the edge's state. Step 1 uses the
//! `O(1)`-round labeling of Corollary 5.4 ([`crate::edge::kuhn_labels`])
//! instead of a `log* n`-round defective coloring — this is why the edge
//! recursion has no per-level `log*` term. The re-coloring while-loop runs
//! over edges: an edge `e = (u, w)` needs the counts
//! `N_e(k) = N_{e,u}(k) + N_{e,w}(k)` of incident smaller-φ edges that chose
//! ψ-color `k`; each endpoint computes its own counts locally and sends them
//! across `e`, so both endpoints decide ψ(e) identically with no extra
//! announcements.
//!
//! Message policy (Theorem 5.5's discussion):
//! * [`MessageMode::Long`] — all `p` counts in one `O(p·log Δ)`-bit message,
//!   one round per φ-class epoch;
//! * [`MessageMode::Short`] — one count per `O(log n)`-bit message, `p`
//!   rounds per epoch (total `O(b²·p³)` instead of `O(b²·p²)` rounds).

use crate::edge::kuhn_labels::{corollary_5_4_defect, kuhn_defective_edge_coloring};
use crate::msg::FieldMsg;
use crate::pipeline::{merge_edge_replicas, Pipeline};
use deco_graph::{EdgeIdx, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

/// Message-size policy for the edge algorithms (Theorem 5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageMode {
    /// `O(p·log Δ)`-bit messages, one round per epoch.
    Long,
    /// `O(log n)`-bit messages, `p` rounds per epoch.
    Short,
}

/// Result of the grouped edge Defective-Color.
#[derive(Debug, Clone)]
pub struct EdgeDefectiveRun {
    /// ψ-color per edge, in `0..p`.
    pub psi: Vec<u64>,
    /// φ palette size (bounds the number of epochs).
    pub phi_palette: u64,
    /// φ defect bound within groups (Corollary 5.4).
    pub phi_defect: u64,
    /// Combined statistics of both phases.
    pub stats: RunStats,
}

#[derive(Debug)]
struct Ledge {
    nbr: Vertex,
    eid: EdgeIdx,
    group: u64,
    phi: u64,
    psi: Option<u64>,
    /// Same-group incident edges with smaller φ whose ψ is still undecided.
    /// The edge's counts are *ready* exactly when this hits zero.
    pending_smaller: u32,
    /// Incrementally maintained ψ-counts over the decided same-group
    /// smaller-φ incident edges — what [`PsiSelectEdges::snapshot`] used to
    /// recompute from scratch every epoch.
    counts: Vec<u64>,
    sent_ready: bool,
    sent_counts: Vec<u64>,
    recv_ready: bool,
    recv_counts: Vec<u64>,
    recv_chunks: usize,
}

#[derive(Debug)]
struct PsiSelectEdges {
    p: u64,
    chunks: usize,
    w_domain: u64,
    edges: Vec<Ledge>,
    /// Reusable buffer for [`PsiSelectEdges::chunk_msg`]: long-mode rounds
    /// send one `p`-count message per undecided edge, and rebuilding the
    /// field list in place keeps that per-message cost allocation-free
    /// (the payload itself lives in the message's pooled spill span).
    field_scratch: Vec<(u64, u64)>,
}

impl PsiSelectEdges {
    /// Wires up the incremental count state: one `O(deg²)` pass at
    /// construction (the cost the old code paid *per epoch*).
    fn new(p: u64, chunks: usize, w_domain: u64, mut edges: Vec<Ledge>) -> PsiSelectEdges {
        for i in 0..edges.len() {
            let pending = edges
                .iter()
                .enumerate()
                .filter(|&(j, f)| j != i && f.group == edges[i].group && f.phi < edges[i].phi)
                .count();
            edges[i].pending_smaller = pending as u32;
        }
        PsiSelectEdges { p, chunks, w_domain, edges, field_scratch: Vec::new() }
    }

    /// Reference recomputation of edge `i`'s readiness and counts, the
    /// pre-PR 3 per-epoch path. Kept as the oracle the incremental state is
    /// checked against (debug builds assert agreement at every snapshot, so
    /// the whole test battery pins bit-identity of the two paths).
    #[cfg(debug_assertions)]
    fn snapshot_reference(&self, i: usize) -> (bool, Vec<u64>) {
        let e = &self.edges[i];
        let mut ready = true;
        let mut counts = vec![0u64; self.p as usize];
        for (j, f) in self.edges.iter().enumerate() {
            if j == i || f.group != e.group || f.phi >= e.phi {
                continue;
            }
            match f.psi {
                Some(k) => counts[k as usize] += 1,
                None => ready = false,
            }
        }
        (ready, counts)
    }

    /// Folds an epoch's fresh ψ decisions into the incremental counts of
    /// the still-undecided edges: `O(deg)` per decision, so the total
    /// maintenance cost over the whole run is one `O(deg²)` — instead of
    /// `O(deg²)` per epoch.
    fn apply_decisions(&mut self, decided: &[(usize, u64)]) {
        for &(j, k) in decided {
            let (group, phi) = (self.edges[j].group, self.edges[j].phi);
            for (i, e) in self.edges.iter_mut().enumerate() {
                if i != j && e.psi.is_none() && e.group == group && e.phi > phi {
                    e.counts[k as usize] += 1;
                    e.pending_smaller -= 1;
                }
            }
        }
    }

    fn take_snapshots_and_chunk0(&mut self) -> Vec<(Vertex, FieldMsg)> {
        let mut out = Vec::new();
        for i in 0..self.edges.len() {
            if self.edges[i].psi.is_some() {
                continue;
            }
            #[cfg(debug_assertions)]
            {
                let (ready, counts) = self.snapshot_reference(i);
                debug_assert_eq!(
                    (ready, &counts),
                    (self.edges[i].pending_smaller == 0, &self.edges[i].counts),
                    "incremental ψ-counts diverged from the reference snapshot"
                );
            }
            let e = &mut self.edges[i];
            e.sent_ready = e.pending_smaller == 0;
            e.sent_counts.copy_from_slice(&e.counts);
            e.recv_chunks = 0;
            let nbr = e.nbr;
            out.push((nbr, self.chunk_msg(i, 0)));
        }
        out
    }

    /// The chunk `c` message for edge `i`: the ready flag plus either all
    /// counts (long mode) or the single count `c` (short mode).
    fn chunk_msg(&mut self, i: usize, c: usize) -> FieldMsg {
        let e = &self.edges[i];
        self.field_scratch.clear();
        self.field_scratch.push((u64::from(e.sent_ready), 2));
        if self.chunks == 1 {
            for &count in &e.sent_counts {
                self.field_scratch.push((count, self.w_domain));
            }
        } else {
            self.field_scratch.push((e.sent_counts[c], self.w_domain));
        }
        FieldMsg::new(&self.field_scratch)
    }
}

impl Protocol for PsiSelectEdges {
    type Msg = FieldMsg;
    type Output = Vec<(EdgeIdx, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        self.take_snapshots_and_chunk0()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        // Receive the partner chunk for each undecided edge.
        for (sender, m) in inbox {
            let i = self
                .edges
                .iter()
                .position(|e| e.nbr == *sender)
                // INVARIANT: the transport delivers only along host edges, so the sender is always incident.
                .expect("message from non-incident sender");
            let e = &mut self.edges[i];
            e.recv_ready = m.field(0) == 1;
            if self.chunks == 1 {
                for k in 0..self.p as usize {
                    e.recv_counts[k] = m.field(1 + k);
                }
            } else {
                let k = (ctx.round - 1) % self.chunks;
                e.recv_counts[k] = m.field(1);
            }
            e.recv_chunks += 1;
        }
        let in_epoch = ctx.round % self.chunks;
        if in_epoch != 0 {
            // Mid-epoch: send the next chunk of the current snapshot.
            let mut out = Vec::new();
            for i in 0..self.edges.len() {
                if self.edges[i].psi.is_none() {
                    let nbr = self.edges[i].nbr;
                    out.push((nbr, self.chunk_msg(i, in_epoch)));
                }
            }
            return Action::Continue(out);
        }
        // Epoch boundary: decide, then snapshot and send chunk 0. Fresh
        // decisions dirty the counts of their still-undecided same-group
        // larger-φ siblings, which is the only way counts ever change.
        let mut decided: Vec<(usize, u64)> = Vec::new();
        for (i, e) in self.edges.iter_mut().enumerate() {
            if e.psi.is_some() || e.recv_chunks < self.chunks {
                continue;
            }
            if e.sent_ready && e.recv_ready {
                // Both endpoints hold (sent, recv) count pairs of the same
                // epoch, so they compute the same argmin.
                let (k, _) = e
                    .sent_counts
                    .iter()
                    .zip(&e.recv_counts)
                    .map(|(a, b)| a + b)
                    .enumerate()
                    .min_by_key(|&(k, total)| (total, k))
                    // INVARIANT: the palette size p is validated >= 1 at construction, so the minimum over p entries exists.
                    .expect("p >= 1");
                e.psi = Some(k as u64);
                decided.push((i, k as u64));
            }
        }
        self.apply_decisions(&decided);
        if self.edges.iter().all(|e| e.psi.is_some()) {
            return Action::halt();
        }
        Action::Continue(self.take_snapshots_and_chunk0())
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
        self.edges
            .into_iter()
            // INVARIANT: the run loop halts only once every element is decided, so the Option is always Some.
            .map(|e| (e.eid, e.psi.expect("all edges decided before halting")))
            .collect()
    }
}

/// Runs the edge variant of Procedure Defective-Color on every group of an
/// edge partition simultaneously.
///
/// * `edge_groups` — group label per edge;
/// * `b`, `p` — Algorithm 1 parameters;
/// * `w_cap` — bound on the number of same-group edges at any vertex (the
///   vertex-degree analogue of Λ; the line-graph degree bound is
///   `2·w_cap - 2`).
///
/// The result is a `p`-coloring of every group with defect (in the
/// line-graph sense, within groups) at most
/// `(4⌈W/(b·p)⌉ + ⌊(2W-2)/p⌋)·2 + 2` — Theorem 3.7 with `c = 2` and the
/// Corollary 5.4 defect for φ.
pub fn edge_defective_color_in_groups(
    net: &Network<'_>,
    edge_groups: &[u64],
    b: u64,
    p: u64,
    w_cap: u64,
    mode: MessageMode,
) -> EdgeDefectiveRun {
    edge_defective_color_in_groups_profiled(net, edge_groups, b, p, w_cap, mode).0
}

/// [`edge_defective_color_in_groups`] plus the per-round delivered-load
/// profile of the ψ-selection phase (the while-loop epochs) — used by the
/// phase-structure bench.
pub fn edge_defective_color_in_groups_profiled(
    net: &Network<'_>,
    edge_groups: &[u64],
    b: u64,
    p: u64,
    w_cap: u64,
    mode: MessageMode,
) -> (EdgeDefectiveRun, Vec<deco_local::RoundLoad>) {
    let g = net.graph();
    assert!(b >= 1 && p >= 1, "need b, p >= 1");
    let mut pl = Pipeline::new(net);
    let (phi, phi_palette, stats1) = kuhn_defective_edge_coloring(net, edge_groups, b * p, w_cap);
    pl.absorb("phi/kuhn-labels", stats1);
    let chunks = match mode {
        MessageMode::Long => 1,
        MessageMode::Short => p as usize,
    };
    let (outputs, profile) = pl.run_profiled("psi-select-edges", |ctx| {
        let edges: Vec<Ledge> = g
            .incident(ctx.vertex)
            .map(|(nbr, e)| Ledge {
                nbr,
                eid: e,
                group: edge_groups[e],
                phi: phi[e],
                psi: None,
                pending_smaller: 0,
                counts: vec![0; p as usize],
                sent_ready: false,
                sent_counts: vec![0; p as usize],
                recv_ready: false,
                recv_counts: vec![0; p as usize],
                recv_chunks: 0,
            })
            .collect();
        PsiSelectEdges::new(p, chunks, 2 * w_cap + 1, edges)
    });
    let psi = merge_edge_replicas(g.m(), &outputs, "ψ");
    (
        EdgeDefectiveRun {
            psi,
            phi_palette,
            phi_defect: corollary_5_4_defect(w_cap, b * p),
            stats: pl.into_stats(),
        },
        profile,
    )
}

/// Theorem 3.7 defect bound for the edge variant, in the line-graph sense:
/// `(D' + ⌊Λ_L/p⌋)·c + c` with `c = 2`, `D' = 4⌈W/(b·p)⌉` and
/// `Λ_L = 2W - 2`.
pub fn edge_defect_bound(b: u64, p: u64, w_cap: u64) -> u64 {
    let d_phi = corollary_5_4_defect(w_cap, b * p);
    let lambda_l = (2 * w_cap).saturating_sub(2);
    (d_phi + lambda_l / p) * 2 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;
    use deco_graph::Graph;

    fn line_defect(g: &Graph, groups: &[u64], psi: &[u64], e: EdgeIdx) -> usize {
        let (u, v) = g.endpoints(e);
        let count = |w: Vertex| {
            g.incident(w)
                .filter(|&(_, f)| f != e && groups[f] == groups[e] && psi[f] == psi[e])
                .count()
        };
        count(u) + count(v)
    }

    fn check(g: &Graph, b: u64, p: u64, mode: MessageMode) -> EdgeDefectiveRun {
        let net = Network::new(g);
        let groups = vec![0u64; g.m()];
        let w = g.max_degree() as u64;
        let run = edge_defective_color_in_groups(&net, &groups, b, p, w, mode);
        assert!(run.psi.iter().all(|&k| k < p));
        let bound = edge_defect_bound(b, p, w) as usize;
        for e in 0..g.m() {
            let d = line_defect(g, &groups, &run.psi, e);
            assert!(d <= bound, "edge {e}: defect {d} > bound {bound} (b={b}, p={p})");
        }
        run
    }

    #[test]
    fn defect_bound_holds_long_mode() {
        let g = generators::random_bounded_degree(70, 9, 19);
        for (b, p) in [(1, 2), (1, 4), (2, 3)] {
            check(&g, b, p, MessageMode::Long);
        }
    }

    #[test]
    fn short_mode_matches_long_decisions() {
        let g = generators::random_bounded_degree(50, 7, 23);
        let long = check(&g, 1, 3, MessageMode::Long);
        let short = check(&g, 1, 3, MessageMode::Short);
        assert_eq!(long.psi, short.psi, "modes must compute identical ψ");
        // Short mode trades rounds for message size.
        assert!(short.stats.rounds >= long.stats.rounds);
        assert!(short.stats.max_message_bits <= long.stats.max_message_bits);
    }

    #[test]
    fn epochs_bounded_by_phi_palette() {
        let g = generators::random_bounded_degree(80, 8, 29);
        let run = check(&g, 1, 3, MessageMode::Long);
        assert!(
            run.stats.rounds <= run.phi_palette as usize + 4,
            "rounds {} vs φ palette {}",
            run.stats.rounds,
            run.phi_palette
        );
    }

    #[test]
    fn grouped_partition_respected() {
        let g = generators::complete(10);
        let net = Network::new(&g);
        let groups: Vec<u64> = (0..g.m()).map(|e| (e % 3) as u64).collect();
        let w = g.max_degree() as u64;
        let run = edge_defective_color_in_groups(&net, &groups, 1, 2, w, MessageMode::Long);
        let bound = edge_defect_bound(1, 2, w) as usize;
        for e in 0..g.m() {
            assert!(line_defect(&g, &groups, &run.psi, e) <= bound);
        }
    }

    #[test]
    fn star_all_edges_incident() {
        let g = generators::star(9);
        let run = check(&g, 2, 2, MessageMode::Long);
        // In a star every pair of edges is incident; ψ splits them into two
        // classes of bounded size.
        let ones = run.psi.iter().filter(|&&k| k == 1).count();
        let zeros = run.psi.len() - ones;
        let bound = edge_defect_bound(2, 2, 8) as usize;
        assert!(zeros.saturating_sub(1) <= bound && ones.saturating_sub(1) <= bound);
    }
}
