//! **E2 — Table 2**: deterministic vs randomized edge coloring in the range
//! `Δ ≈ log^{1-δ} n`, sweeping `n`.
//!
//! Paper's claim (Table 2): for `ω(log* n) <= Δ <= log^{1-δ} n`, the new
//! *deterministic* algorithm outperforms all previous algorithms including
//! randomized ones, whose round counts grow with `n`. Measured shape: the
//! randomized-trial baseline and the forest-decomposition baseline grow
//! with `log n`; Panconesi–Rizzi and ours stay flat (Δ is small and fixed
//! per row, and the additive term is `log* n`).

use deco_bench::{banner, scale, Scale, Table};
use deco_core::baselines::forest_decomposition::forest_decomposition_edge_coloring;
use deco_core::baselines::randomized_trial::randomized_trial_edge_color;
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::randomized::randomized_edge_color;
use deco_graph::generators;

fn main() {
    banner("E2 / Table 2", "deterministic vs randomized: rounds vs n at Δ ≈ log^0.8 n");
    let ns: Vec<usize> = match scale() {
        Scale::Quick => vec![256, 1024, 4096],
        Scale::Full => vec![256, 1024, 4096, 16384, 65536],
    };
    let table = Table::new(&["n", "Δ", "algorithm", "colors", "rounds"], &[7, 4, 36, 7, 7]);
    for &n in &ns {
        let delta = ((n as f64).log2().powf(0.8)).ceil() as usize;
        let g = generators::random_bounded_degree(n, delta, 0xE2);
        let d = g.max_degree();

        let (pr, pr_stats) = pr_edge_color(&g);
        table.row(&[
            n.to_string(),
            d.to_string(),
            "Panconesi–Rizzi (det.) [24]".into(),
            pr.palette_size().to_string(),
            pr_stats.rounds.to_string(),
        ]);

        let (rt, rt_stats) = randomized_trial_edge_color(&g, 0xE2);
        assert!(rt.is_proper(&g));
        table.row(&[
            n.to_string(),
            d.to_string(),
            "randomized trials [29]-style".into(),
            rt.palette_size().to_string(),
            rt_stats.rounds.to_string(),
        ]);

        if n <= 4096 {
            let (fd, fd_stats, _) = forest_decomposition_edge_coloring(&g);
            assert!(fd.is_proper(&g));
            table.row(&[
                n.to_string(),
                d.to_string(),
                "forest decomposition [5]-style".into(),
                fd.palette_size().to_string(),
                fd_stats.rounds.to_string(),
            ]);
        }

        let run = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.coloring.is_proper(&g));
        table.row(&[
            n.to_string(),
            d.to_string(),
            "ours (deterministic)".into(),
            run.coloring.palette_size().to_string(),
            run.stats.rounds.to_string(),
        ]);

        let rand = randomized_edge_color(&g, edge_log_depth(1), MessageMode::Long, 0xE2).unwrap();
        assert!(rand.inner.coloring.is_proper(&g));
        table.row(&[
            n.to_string(),
            d.to_string(),
            "ours randomized (§6.1)".into(),
            rand.inner.coloring.palette_size().to_string(),
            rand.stats.rounds.to_string(),
        ]);
        table.rule();
    }
    println!(
        "shape check: the randomized-trial and forest-decomposition rows grow\n\
         with log n; the deterministic rows are flat in n (additive log* n only),\n\
         reproducing the paper's claim that in this Δ range its deterministic\n\
         algorithm beats the randomized state of the art.\n"
    );

    // Worst-case family for the [5]-style route: 4-ary trees peel one leaf
    // layer per round, so the forest-decomposition rounds are Θ(log n) —
    // the Ω(log n / log a) lower bound of [3] the paper invokes to argue
    // the log n factor is inherent to that approach.
    println!("peeling worst case: complete 4-ary trees (Δ = 5, a = 1)\n");
    let table = Table::new(&["n", "algorithm", "colors", "rounds"], &[7, 36, 7, 7]);
    let depths: Vec<u32> = match scale() {
        Scale::Quick => vec![3, 5, 7],
        Scale::Full => vec![3, 5, 7, 9],
    };
    for &depth in &depths {
        let g = generators::kary_tree(4, depth);
        let (fd, fd_stats, _) = forest_decomposition_edge_coloring(&g);
        assert!(fd.is_proper(&g));
        table.row(&[
            g.n().to_string(),
            "forest decomposition [5]-style".into(),
            fd.palette_size().to_string(),
            fd_stats.rounds.to_string(),
        ]);
        let run = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.coloring.is_proper(&g));
        table.row(&[
            g.n().to_string(),
            "ours (deterministic)".into(),
            run.coloring.palette_size().to_string(),
            run.stats.rounds.to_string(),
        ]);
        table.rule();
    }
    println!(
        "shape check: forest-decomposition rounds grow by ~2 per extra tree\n\
         level (Θ(log n)); ours are flat — the paper's exponential separation\n\
         for 2^Ω(log* n) <= Δ <= polylog(n)."
    );
}
