//! The pre-refactor delivery engine, kept as a reference implementation.
//!
//! This is the simulator's original hot path: per-round `Vec<Vec<_>>` inbox
//! allocation, a stable sort of every inbox by sender, and a binary-search
//! neighbor validation per posted message. It exists for two reasons:
//!
//! 1. **Differential testing** — the slot-arena engine in [`crate::network`]
//!    must produce bit-identical outputs, [`RunStats`] and [`RoundLoad`]
//!    profiles; the integration tests run both engines on the same
//!    workloads and compare.
//! 2. **Benchmark baseline** — the perf suites report the slot engine's
//!    speedup against this engine, measured in the same harness.
//!
//! Semantics differ from the slot engine in exactly one deliberate way:
//! this engine tolerates several messages to the same neighbor in one round
//! (they all arrive, sender-sorted stably), while the slot engine enforces
//! the LOCAL model's one-message-per-edge rule with a panic. No protocol in
//! this workspace sends duplicates.

use crate::message::Message;
use crate::network::{Action, Network, NodeCtx, Protocol, RoundLoad, Run, RunError};
use crate::stats::RunStats;
use crate::transport::Fate;
use deco_graph::Vertex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A transport-deferred message in the naive engine, ordered by
/// `(arrival, seq)` exactly like the slot engine's pending queue — the two
/// engines assign sequence numbers in the same (vertex, outbox) posting
/// order, so their injection schedules are identical.
struct Late<M> {
    arrival: usize,
    seq: u64,
    slot: usize,
    from: Vertex,
    msg: M,
}

impl<M> PartialEq for Late<M> {
    fn eq(&self, other: &Late<M>) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}

impl<M> Eq for Late<M> {}

impl<M> PartialOrd for Late<M> {
    fn partial_cmp(&self, other: &Late<M>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Late<M> {
    fn cmp(&self, other: &Late<M>) -> std::cmp::Ordering {
        (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
    }
}

/// Fault-injection state for a naive-engine run under a non-perfect
/// transport (`None` on the perfect default).
struct NaiveFaults<M> {
    pending: BinaryHeap<Reverse<Late<M>>>,
    seq: u64,
    /// Per directed-edge slot: the round in which the slot's in-flight
    /// message is due, mirroring the slot engine's arena occupancy (a late
    /// message postpones rather than displace a fresher one).
    busy: Vec<usize>,
    /// Transport drops in the current step phase (reset per phase; the
    /// profile reports them one phase behind, like sent counts).
    dropped_msgs: usize,
    dropped_bits: usize,
}

impl<M> NaiveFaults<M> {
    /// Takes and resets the phase's drop counters.
    fn take_dropped(&mut self) -> (usize, usize) {
        let taken = (self.dropped_msgs, self.dropped_bits);
        self.dropped_msgs = 0;
        self.dropped_bits = 0;
        taken
    }
}

impl Network<'_> {
    /// [`Network::run`] on the naive reference engine.
    ///
    /// # Panics
    ///
    /// Panics if a node addresses a message to a non-neighbor or the round
    /// cap is exceeded.
    pub fn run_naive<P, F>(&self, make: F) -> Run<P::Output>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled_naive(make).0
    }

    /// [`Network::run_profiled`] on the naive reference engine.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run_naive`].
    pub fn run_profiled_naive<P, F>(&self, make: F) -> (Run<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        // INVARIANT: the infallible wrapper re-raises errors from the fallible variant; callers choosing it accept the panic.
        self.try_run_profiled_naive(make).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Network::run_profiled_naive`]: an exceeded round cap
    /// comes back as [`RunError::RoundCapExceeded`] instead of a panic.
    ///
    /// Honors the configured [`Transport`](crate::Transport) with fault
    /// semantics bit-identical to the slot engine's — the differential
    /// contract extends to faulty runs.
    pub fn try_run_profiled_naive<P, F>(
        &self,
        mut make: F,
    ) -> Result<(Run<P::Output>, Vec<RoundLoad>), RunError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        let g = self.graph();
        let n = g.n();
        let mut stats = RunStats::zero();
        let mut profile: Vec<RoundLoad> = Vec::new();

        let mut nodes: Vec<P> = Vec::with_capacity(n);
        let mut halted = vec![false; n];
        // inboxes[v] collects (sender, msg) for the next delivery.
        let mut inboxes: Vec<Vec<(Vertex, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut faults: Option<NaiveFaults<P::Msg>> =
            (!self.transport().is_perfect()).then(|| NaiveFaults {
                pending: BinaryHeap::new(),
                seq: 0,
                busy: vec![0; g.slot_count()],
                dropped_msgs: 0,
                dropped_bits: 0,
            });

        // Round 0: start.
        let msgs_at_start = stats.messages;
        let bits_at_start = stats.total_message_bits;
        for v in 0..n {
            let ctx = self.ctx_for(v, 0);
            let mut p = make(&ctx);
            let out = p.start(&ctx);
            self.post(v, out, 0, &mut inboxes, &mut stats, &mut faults);
            nodes.push(p);
        }
        let mut sent_prev_msgs = stats.messages - msgs_at_start;
        let mut sent_prev_bits = stats.total_message_bits - bits_at_start;
        let (mut fault_prev_msgs, mut fault_prev_bits) =
            faults.as_mut().map_or((0, 0), NaiveFaults::take_dropped);

        let mut round = 0usize;
        loop {
            if halted.iter().all(|&h| h) {
                break;
            }
            round += 1;
            if round > self.round_cap() {
                stats.rounds = round - 1;
                return Err(RunError::RoundCapExceeded {
                    cap: self.round_cap(),
                    live: halted.iter().filter(|&&h| !h).count(),
                    stats,
                });
            }
            let live = halted.iter().filter(|&&h| !h).count();
            stats.node_rounds += live;
            // Sent-vs-delivered accounting: the deltas of the step phase
            // below are this round's sends, reported in the *next* round's
            // profile entry (they are due for delivery then).
            let (msgs_before, bits_before) = (stats.messages, stats.total_message_bits);
            // Swap out inboxes for this round's delivery.
            let mut delivered: Vec<Vec<(Vertex, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            std::mem::swap(&mut delivered, &mut inboxes);
            // Inject transport-deferred messages due this round (the same
            // schedule as the slot engine: arrival order, then posting
            // order; an occupied slot postpones, a halted receiver drops).
            if let Some(f) = faults.as_mut() {
                while f.pending.peek().is_some_and(|Reverse(p)| p.arrival <= round) {
                    // INVARIANT: extraction follows a successful peek on the same source.
                    let Reverse(p) = f.pending.pop().expect("peeked entry");
                    let to = g.slot_neighbor(p.slot);
                    if halted[to] {
                        continue;
                    }
                    if f.busy[p.slot] == round {
                        f.pending.push(Reverse(Late { arrival: round + 1, ..p }));
                        continue;
                    }
                    f.busy[p.slot] = round;
                    delivered[to].push((p.from, p.msg));
                }
            }
            let mut delivered_msgs = 0usize;
            let mut delivered_bits = 0usize;
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let mut inbox = std::mem::take(&mut delivered[v]);
                inbox.sort_by_key(|&(s, _)| s);
                delivered_msgs += inbox.len();
                delivered_bits += inbox.iter().map(|(_, m)| m.size_bits()).sum::<usize>();
                let ctx = self.ctx_for(v, round);
                match nodes[v].round(&ctx, &inbox) {
                    Action::Continue(out) => {
                        self.post(v, out, round, &mut inboxes, &mut stats, &mut faults)
                    }
                    Action::Broadcast(msg) => self.post(
                        v,
                        ctx.broadcast(msg),
                        round,
                        &mut inboxes,
                        &mut stats,
                        &mut faults,
                    ),
                    Action::Halt(out) => {
                        self.post(v, out, round, &mut inboxes, &mut stats, &mut faults);
                        halted[v] = true;
                    }
                }
            }
            profile.push(RoundLoad {
                messages: delivered_msgs,
                bits: delivered_bits,
                live_nodes: live,
                sent_messages: sent_prev_msgs,
                sent_bits: sent_prev_bits,
                transport_dropped: fault_prev_msgs,
                transport_dropped_bits: fault_prev_bits,
            });
            sent_prev_msgs = stats.messages - msgs_before;
            sent_prev_bits = stats.total_message_bits - bits_before;
            (fault_prev_msgs, fault_prev_bits) =
                faults.as_mut().map_or((0, 0), NaiveFaults::take_dropped);
        }
        stats.rounds = round;

        let mut outputs = Vec::with_capacity(n);
        for (v, p) in nodes.into_iter().enumerate() {
            let ctx = self.ctx_for(v, round);
            outputs.push(p.finish(&ctx));
        }
        // The determinism contract makes this profile bit-identical to the
        // slot engine's, so the probe's Round events match across engines.
        self.emit_run(&profile, &[]);
        Ok((Run { outputs, stats }, profile))
    }

    fn post<M: Message>(
        &self,
        from: Vertex,
        out: Vec<(Vertex, M)>,
        round: usize,
        inboxes: &mut [Vec<(Vertex, M)>],
        stats: &mut RunStats,
        faults: &mut Option<NaiveFaults<M>>,
    ) {
        let neighbors = self.neighbors_of(from);
        let slot_base = self.graph().slots_of(from).start;
        for (to, msg) in out {
            let i = neighbors
                .binary_search(&to)
                // INVARIANT: the LOCAL model permits sends only along incident edges; anything else is a protocol bug worth aborting on.
                .unwrap_or_else(|_| panic!("node {from} addressed a message to non-neighbor {to}"));
            let bits = msg.size_bits();
            stats.record_message(bits);
            match faults {
                None => inboxes[to].push((from, msg)),
                Some(f) => {
                    // Same fate key as the slot engine: (sender-side slot,
                    // posting round) — the two engines decide identically.
                    let slot = slot_base + i;
                    match self.transport().fate(slot, round) {
                        Fate::Deliver => {
                            f.busy[slot] = round + 1;
                            inboxes[to].push((from, msg));
                        }
                        Fate::Drop => {
                            stats.transport_dropped += 1;
                            f.dropped_msgs += 1;
                            f.dropped_bits += bits;
                        }
                        Fate::Delay(k) => {
                            f.pending.push(Reverse(Late {
                                arrival: round + 1 + k.max(1) as usize,
                                seq: f.seq,
                                slot,
                                from,
                                msg,
                            }));
                            f.seq += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{Action, Network, NodeCtx, Protocol};
    use deco_graph::generators;
    use deco_graph::Vertex;

    /// A protocol with staggered halts, broadcasts, list sends and silent
    /// rounds — a workout for both engines.
    struct Mixed;
    impl Protocol for Mixed {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            let acc: u64 = inbox.iter().map(|&(s, m)| m ^ s as u64).sum();
            match (ctx.vertex + ctx.round) % 4 {
                0 => Action::Broadcast(acc % 997),
                1 => Action::Continue(
                    ctx.neighbors.iter().filter(|&&u| u % 2 == 0).map(|&u| (u, acc)).collect(),
                ),
                2 => Action::idle(),
                _ if ctx.round >= 3 => Action::Halt(ctx.broadcast(acc % 31)),
                _ => Action::Broadcast(acc % 13),
            }
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn naive_and_slot_engines_agree() {
        let g = generators::random_graph(400, 1500, 42);
        let net = Network::new(&g);
        let fast = net.run_profiled(|_| Mixed);
        let naive = net.run_profiled_naive(|_| Mixed);
        assert_eq!(fast.0.outputs, naive.0.outputs);
        assert_eq!(fast.0.stats, naive.0.stats);
        assert_eq!(fast.1, naive.1);
    }

    #[test]
    fn engine_selector_routes_run_profiled() {
        use crate::network::Engine;
        let g = generators::random_graph(120, 400, 5);
        let slot = Network::new(&g).run_profiled(|_| Mixed);
        let via_selector = Network::new(&g).with_engine(Engine::Naive).run_profiled(|_| Mixed);
        assert_eq!(slot.0.outputs, via_selector.0.outputs);
        assert_eq!(slot.0.stats, via_selector.0.stats);
        assert_eq!(slot.1, via_selector.1);
    }

    #[test]
    fn engines_agree_under_faulty_transport() {
        // The determinism contract extends to faults: both engines consult
        // the transport with the same (slot, round) keys and inject late
        // messages on the same (arrival, seq) schedule, so a faulty run is
        // bit-identical across engines.
        use crate::transport::FaultyTransport;
        use std::sync::Arc;
        let g = generators::random_graph(200, 700, 11);
        for seed in [1u64, 2, 3] {
            let t = FaultyTransport::new(seed)
                .with_drop(120_000)
                .with_delay(150_000, 3)
                .with_reorder(100_000);
            let slot = Network::new(&g).with_transport(Arc::new(t.clone())).run_profiled(|_| Mixed);
            let naive = Network::new(&g).with_transport(Arc::new(t)).run_profiled_naive(|_| Mixed);
            assert_eq!(slot.0.outputs, naive.0.outputs, "seed {seed}");
            assert_eq!(slot.0.stats, naive.0.stats, "seed {seed}");
            assert_eq!(slot.1, naive.1, "seed {seed}");
            assert!(slot.0.stats.transport_dropped > 0, "seed {seed} dropped nothing");
        }
    }

    #[test]
    fn naive_profile_sent_accounting() {
        let g = generators::cycle(12);
        struct TwoRounds;
        impl Protocol for TwoRounds {
            type Msg = u64;
            type Output = ();
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                ctx.broadcast(1)
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, _: &[(Vertex, u64)]) -> Action<u64> {
                if ctx.round >= 2 {
                    Action::halt()
                } else {
                    Action::Broadcast(2)
                }
            }
            fn finish(self, _: &NodeCtx<'_>) {}
        }
        let (run, profile) = Network::new(&g).run_profiled_naive(|_| TwoRounds);
        assert_eq!(run.stats.rounds, 2);
        assert_eq!(profile[0].sent_messages, 24); // the start broadcasts
        assert_eq!(profile[0].messages, 24);
        assert_eq!(profile[1].sent_messages, 24); // round 1 re-broadcasts
        assert_eq!(profile[1].messages, 24);
    }
}
