//! Deterministic and seeded-random graph generators.
//!
//! Every randomized generator takes an explicit `seed` and uses a fixed RNG
//! (`rand::rngs::StdRng`), so workloads are reproducible across runs — a
//! requirement for regenerating the paper's tables.

use crate::hypergraph::Hypergraph;
use crate::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A path on `n` vertices (`n - 1` edges).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one vertex");
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// A cycle on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three vertices");
    let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    edges.push((n - 1, 0));
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// A star `K_{1, n-1}`: vertex 0 is the center.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least one vertex");
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("star edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("clique edges are valid")
}

/// The complete bipartite graph `K_{a,b}`; the left side is `0..a`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(a + b, &edges).expect("bipartite edges are valid")
}

/// A `w × h` grid graph.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid needs positive dimensions");
    let at = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((at(x, y), at(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((at(x, y), at(x, y + 1)));
            }
        }
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(w * h, &edges).expect("grid edges are valid")
}

/// A `w × h` torus (wraparound grid); requires `w, h >= 3` so the graph
/// stays simple.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs dimensions at least 3");
    let at = |x: usize, y: usize| y * w + x;
    let mut b = Graph::builder(w * h);
    for y in 0..h {
        for x in 0..w {
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge_dedup(at(x, y), at((x + 1) % w, y)).expect("valid");
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge_dedup(at(x, y), at(x, (y + 1) % h)).expect("valid");
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    b.build().expect("deduplicated")
}

/// A complete binary tree on `n` vertices (vertex 0 is the root; children of
/// `v` are `2v+1`, `2v+2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n > 0, "tree needs at least one vertex");
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push(((v - 1) / 2, v));
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// A complete `arity`-ary tree of the given `depth` (`depth = 0` is a
/// single vertex). Vertex 0 is the root; children of `v` are
/// `arity*v + 1, ..., arity*v + arity`.
///
/// With `arity >= 4` this family is the worst case for degree-threshold
/// peeling (H-partitions): internal vertices keep degree `arity + 1` until
/// all their children are removed, so peeling takes exactly `depth + 1`
/// rounds = `Θ(log n)` — the family that exhibits the `Ω(log n)` lower
/// bound \[3\] the paper cites against forest-decomposition approaches.
///
/// # Panics
///
/// Panics if `arity == 0` or the tree would exceed `2^32` vertices.
pub fn kary_tree(arity: usize, depth: u32) -> Graph {
    assert!(arity >= 1, "arity must be positive");
    let mut n: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        // INVARIANT: overflow means the requested graph exceeds usize; panicking with a clear message is the intended guard.
        level = level.checked_mul(arity).expect("tree too large");
        // INVARIANT: overflow means the requested graph exceeds usize; panicking with a clear message is the intended guard.
        n = n.checked_add(level).expect("tree too large");
    }
    assert!(n < (1usize << 32), "tree too large");
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        edges.push(((v - 1) / arity, v));
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// The Petersen graph (10 vertices, 3-regular, girth 5).
pub fn petersen() -> Graph {
    let mut edges = Vec::new();
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, 5 + i)); // spokes
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(10, &edges).expect("petersen edges are valid")
}

/// The friendship (windmill) graph `F_k`: `k` triangles sharing one common
/// vertex. The center can pick one independent neighbor per triangle, so
/// `I(F_k) = k`: a useful *high*-independence contrast family for the
/// bounded-NI algorithms (their color bounds degrade as `c` grows).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn friendship(k: usize) -> Graph {
    assert!(k > 0, "need at least one triangle");
    let mut edges = Vec::with_capacity(3 * k);
    for i in 0..k {
        let (a, b) = (1 + 2 * i, 2 + 2 * i);
        edges.push((0, a));
        edges.push((0, b));
        edges.push((a, b));
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(2 * k + 1, &edges).expect("windmill edges are valid")
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` vertices, `d`-regular).
///
/// # Panics
///
/// Panics if `d >= 28` (size guard).
pub fn hypercube(d: u32) -> Graph {
    assert!(d < 28, "hypercube too large");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                edges.push((v, u));
            }
        }
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("hypercube edges are valid")
}

/// A barbell: two `k`-cliques joined by a path of `bridge` vertices.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2, "cliques need at least two vertices");
    let n = 2 * k + bridge;
    let mut b = Graph::builder(n);
    for u in 0..k {
        for v in u + 1..k {
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge(u, v).expect("in range");
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge(k + bridge + u, k + bridge + v).expect("in range");
        }
    }
    // Chain: clique-1 vertex k-1 -> bridge -> clique-2 vertex k+bridge.
    let mut prev = k - 1;
    for i in 0..bridge {
        // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
        b.add_edge(prev, k + i).expect("in range");
        prev = k + i;
    }
    // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
    b.add_edge(prev, k + bridge).expect("in range");
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    b.build().expect("barbell has no duplicate edges")
}

/// A random bipartite graph: sides of size `a` and `b`, `m` distinct edges.
///
/// # Panics
///
/// Panics if `m > a·b`.
pub fn random_bipartite(a: usize, b: usize, m: usize, seed: u64) -> Graph {
    assert!(m <= a * b, "too many edges for a bipartite graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = Graph::builder(a + b);
    // tidy: allow(hash-iter) — rejection-sampling membership set; edges
    // are emitted in seeded-RNG draw order, never in set order.
    let mut seen = std::collections::HashSet::new();
    while seen.len() < m {
        let u = rng.gen_range(0..a);
        let v = a + rng.gen_range(0..b);
        if seen.insert((u, v)) {
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            builder.add_edge(u, v).expect("in range");
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    builder.build().expect("edges deduplicated via set")
}

/// The Figure 1 graph: a `k`-clique in which every clique vertex is attached
/// to its own pendant vertex. Vertices `0..k` form the clique; vertex `k + i`
/// is the pendant of clique vertex `i`.
///
/// This graph has neighborhood independence `I(G) = 2` (for `k >= 2`) while a
/// clique vertex has `k` pairwise-independent vertices within distance 2 —
/// bounded neighborhood independence but unbounded growth.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn clique_with_pendants(k: usize) -> Graph {
    assert!(k > 0, "clique needs at least one vertex");
    let mut edges = Vec::new();
    for u in 0..k {
        for v in u + 1..k {
            edges.push((u, v));
        }
        edges.push((u, k + u));
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(2 * k, &edges).expect("figure 1 edges are valid")
}

/// A uniformly random tree on `n` vertices (random attachment).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((rng.gen_range(0..v), v));
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// An Erdős–Rényi-style `G(n, m)` simple graph: `m` distinct edges chosen
/// uniformly (by rejection).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges.
pub fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "too many edges requested: {m} > {possible}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    let mut added = 0usize;
    // tidy: allow(hash-iter) — rejection-sampling membership set; edges
    // are emitted in seeded-RNG draw order, never in set order.
    let mut seen = std::collections::HashSet::new();
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge(key.0, key.1).expect("in range");
            added += 1;
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    b.build().expect("edges deduplicated via set")
}

/// A random graph with maximum degree at most `delta_cap`, aiming for most
/// vertices near the cap: repeatedly samples vertex pairs with residual
/// capacity. Deterministic for a fixed seed.
///
/// The result's Δ is `<= delta_cap`; for `n >> delta_cap` it is almost
/// always exactly `delta_cap`. This is the Table 1 workload (sweep Δ at
/// fixed `n`).
///
/// # Panics
///
/// Panics if `delta_cap >= n`.
pub fn random_bounded_degree(n: usize, delta_cap: usize, seed: u64) -> Graph {
    assert!(delta_cap < n, "degree cap must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Graph::builder(n);
    let mut deg = vec![0usize; n];
    // tidy: allow(hash-iter) — rejection-sampling membership set; edges
    // are emitted in seeded-RNG draw order, never in set order.
    let mut exists = std::collections::HashSet::new();
    // Standard pairing heuristic: a pool of vertex "stubs", shuffled, paired.
    // Rejected pairs (loops/duplicates/full) are dropped; a few extra passes
    // top up residual capacity.
    for _pass in 0..4 {
        let mut stubs: Vec<Vertex> = Vec::new();
        for (v, &d) in deg.iter().enumerate() {
            for _ in d..delta_cap {
                stubs.push(v);
            }
        }
        stubs.shuffle(&mut rng);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || deg[u] >= delta_cap || deg[v] >= delta_cap {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if exists.insert(key) {
                // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
                b.add_edge(key.0, key.1).expect("in range");
                deg[u] += 1;
                deg[v] += 1;
            }
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    b.build().expect("edges deduplicated via set")
}

/// A seeded random graph with a power-law degree profile: vertex `v`
/// targets degree `clamp(d_max · (v+1)^{-3/4}, 1, d_max)`, so a handful of
/// low-index hubs sit at (or near) Δ = `d_max` while the tail stays
/// sparse. The hub core is wired deterministically (vertex 0 to the
/// `d_max` lowest-index vertices, guaranteeing realized Δ = `d_max`);
/// the remaining capacity is filled by stub pairing as in
/// [`random_bounded_degree`], with the per-vertex caps above.
///
/// This is the heavy-tailed workload the streaming engine's long-mode and
/// spill paths need: with `d_max` above the palette-depth cutoff λ = 48,
/// repair regions around hubs exercise the code paths that bounded-degree
/// churn (Δ ≤ 8) never reaches.
///
/// # Panics
///
/// Panics if `d_max == 0` or `d_max >= n`.
pub fn random_power_law(n: usize, d_max: usize, seed: u64) -> Graph {
    assert!(d_max >= 1, "degree cap must be positive");
    assert!(d_max < n, "degree cap must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let cap: Vec<usize> = (0..n)
        .map(|v| {
            let t = d_max as f64 * ((v + 1) as f64).powf(-0.75);
            (t.round() as usize).clamp(1, d_max)
        })
        .collect();
    let mut b = Graph::builder(n);
    let mut deg = vec![0usize; n];
    // tidy: allow(hash-iter) — rejection-sampling membership set; edges
    // are emitted in seeded-RNG draw order, never in set order.
    let mut exists = std::collections::HashSet::new();
    // tidy: allow(hash-iter) — the closure only probes/updates the same
    // membership set; nothing enumerates it.
    let add = |b: &mut crate::GraphBuilder,
               deg: &mut Vec<usize>,
               exists: &mut std::collections::HashSet<(Vertex, Vertex)>,
               u: Vertex,
               v: Vertex|
     -> bool {
        if u == v || deg[u] >= cap[u] || deg[v] >= cap[v] {
            return false;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !exists.insert(key) {
            return false;
        }
        // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
        b.add_edge(key.0, key.1).expect("in range");
        deg[u] += 1;
        deg[v] += 1;
        true
    };
    // Wire the hub core first: vertex 0 takes the d_max lowest-index
    // partners (all of which have capacity for it under the power-law
    // profile), so the realized Δ equals d_max by construction rather than
    // by pairing luck.
    for v in 1..=d_max {
        add(&mut b, &mut deg, &mut exists, 0, v);
    }
    for _pass in 0..4 {
        let mut stubs: Vec<Vertex> = Vec::new();
        for (v, &d) in deg.iter().enumerate() {
            for _ in d..cap[v] {
                stubs.push(v);
            }
        }
        stubs.shuffle(&mut rng);
        for pair in stubs.chunks_exact(2) {
            add(&mut b, &mut deg, &mut exists, pair[0], pair[1]);
        }
    }
    // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
    b.build().expect("edges deduplicated via set")
}

/// A random `d`-regular graph via the pairing model with retries. Falls back
/// to a near-regular graph (Δ <= d) if `n·d` pairings keep colliding, which
/// for the sizes used in benches essentially never happens.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(n * d % 2 == 0, "n*d must be even");
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for attempt in 0..64 {
        let mut stubs: Vec<Vertex> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
        stubs.shuffle(&mut rng);
        let mut b = Graph::builder(n);
        // tidy: allow(hash-iter) — rejection-sampling membership set; the
        // emitted pairing follows the shuffled stub order.
        let mut exists = std::collections::HashSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !exists.insert(key) {
                continue 'attempt;
            }
            // INVARIANT: endpoint indices are computed in [0, n), so insertion cannot fail.
            b.add_edge(key.0, key.1).expect("in range");
        }
        let _ = attempt;
        // INVARIANT: edges were deduplicated before insertion, so build cannot report duplicates.
        return b.build().expect("deduplicated");
    }
    // Fallback: bounded-degree graph with cap d.
    random_bounded_degree(n, d, seed ^ 0x5eed)
}

/// A unit-disk graph: `n` points uniform in the unit square, connected when
/// within Euclidean distance `radius`. Unit-disk graphs have bounded growth
/// and neighborhood independence at most 5 (at most five pairwise-independent
/// neighbors fit in a disk), making them a natural bounded-NI workload.
pub fn unit_disk(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                edges.push((u, v));
            }
        }
    }
    // INVARIANT: endpoints are generated in [0, n) with distinct ends, so validation cannot fail.
    Graph::from_edges(n, &edges).expect("disk edges are valid")
}

/// A random `rank`-uniform hypergraph: `m` hyperedges, each a uniformly
/// random `rank`-subset of the `n` vertices (duplicates between hyperedges
/// allowed, as in a multiset of constraints; each hyperedge's vertices are
/// distinct).
///
/// # Panics
///
/// Panics if `rank == 0 || rank > n`.
pub fn random_hypergraph(n: usize, m: usize, rank: usize, seed: u64) -> Hypergraph {
    assert!(rank > 0 && rank <= n, "rank must be in 1..=n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut pool: Vec<Vertex> = (0..n).collect();
    for _ in 0..m {
        pool.shuffle(&mut rng);
        let mut e = pool[..rank].to_vec();
        e.sort_unstable();
        edges.push(e);
    }
    // INVARIANT: sampled vertex indices are reduced into [0, n) before insertion.
    Hypergraph::new(n, edges).expect("sampled vertices are in range")
}

/// Returns a copy of `g` whose identifiers are a seeded random permutation
/// of `{1, ..., n}`. Useful to check that algorithms do not depend on the
/// accidental alignment of identifiers with vertex indices.
pub fn shuffle_idents(g: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u64> = (1..=g.n() as u64).collect();
    ids.shuffle(&mut rng);
    // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
    g.clone().with_idents(ids).expect("permutation is distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_families_sizes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(complete_bipartite(2, 3).m(), 6);
        assert_eq!(grid(3, 4).n(), 12);
        assert_eq!(grid(3, 4).m(), 3 * 3 + 2 * 4);
        assert_eq!(torus(3, 3).m(), 18);
        assert_eq!(binary_tree(7).m(), 6);
        assert_eq!(petersen().m(), 15);
    }

    #[test]
    fn kary_tree_shape() {
        let g = kary_tree(4, 3);
        assert_eq!(g.n(), 1 + 4 + 16 + 64);
        assert_eq!(g.m(), g.n() - 1);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.component_count(), 1);
        let single = kary_tree(3, 0);
        assert_eq!(single.n(), 1);
        assert_eq!(single.m(), 0);
    }

    #[test]
    fn power_law_saturates_hubs_and_keeps_tail_sparse() {
        let g = random_power_law(4096, 64, 11);
        assert_eq!(g.max_degree(), 64, "hubs must reach d_max");
        assert_eq!(g.degree(0), 64, "the top-up pass saturates hub 0");
        // Δ > λ = 48: the long-mode threshold the workload exists for.
        assert!(g.max_degree() > 48);
        // The tail caps at degree 1 under the power-law profile.
        assert!((2048..4096).all(|v| g.degree(v) <= 1));
        // Deterministic for a fixed seed, distinct across seeds.
        assert_eq!(g, random_power_law(4096, 64, 11));
        assert_ne!(g, random_power_law(4096, 64, 12));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!((0..g.n()).all(|v| g.degree(v) == 4));
    }

    #[test]
    fn clique_with_pendants_shape() {
        let g = clique_with_pendants(6);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 15 + 6);
        assert_eq!(g.max_degree(), 6); // clique vertex: 5 clique nbrs + pendant
        assert_eq!(g.degree(7), 1); // a pendant
    }

    #[test]
    fn friendship_graph_facts() {
        let g = friendship(6);
        assert_eq!(g.n(), 13);
        assert_eq!(g.m(), 18);
        assert_eq!(g.max_degree(), 12);
        // One independent neighbor per triangle: I(F_k) = k.
        assert_eq!(crate::properties::neighborhood_independence(&g), 6);
    }

    #[test]
    fn hypercube_is_regular() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3);
        assert_eq!(g.n(), 11);
        assert_eq!(g.m(), 2 * 6 + 4);
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn bipartite_has_no_odd_side_edges() {
        let g = random_bipartite(10, 15, 40, 3);
        assert_eq!(g.m(), 40);
        for (u, v) in g.edges() {
            assert!(u < 10 && v >= 10, "edge ({u},{v}) not across the cut");
        }
    }

    #[test]
    fn random_graph_deterministic() {
        let a = random_graph(40, 100, 7);
        let b = random_graph(40, 100, 7);
        assert_eq!(a, b);
        assert_eq!(a.m(), 100);
        let c = random_graph(40, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let g = random_bounded_degree(200, 7, 123);
        assert!(g.max_degree() <= 7);
        // The pairing passes should get most vertices close to the cap.
        let near = (0..g.n()).filter(|&v| g.degree(v) >= 6).count();
        assert!(near > 150, "only {near} vertices near the cap");
    }

    #[test]
    fn regular_graph_is_regular() {
        let g = random_regular(60, 4, 1);
        assert!((0..g.n()).all(|v| g.degree(v) == 4), "pairing fallback triggered");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn regular_rejects_odd() {
        let _ = random_regular(5, 3, 1);
    }

    #[test]
    fn tree_is_connected_acyclic() {
        let g = random_tree(50, 5);
        assert_eq!(g.m(), 49);
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn unit_disk_deterministic() {
        let a = unit_disk(80, 0.2, 3);
        let b = unit_disk(80, 0.2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn hypergraph_rank_respected() {
        let h = random_hypergraph(20, 15, 3, 11);
        assert_eq!(h.edge_count(), 15);
        assert!(h.rank() <= 3);
        assert!(h.edges().iter().all(|e| e.len() == 3));
    }

    #[test]
    fn shuffled_idents_are_permutation() {
        let g = shuffle_idents(&grid(4, 4), 17);
        let mut ids = g.idents().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (1..=16).collect::<Vec<u64>>());
    }
}
