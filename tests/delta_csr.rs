//! Property tests for the delta-CSR and segmented commit paths.
//!
//! The contract under test: after **arbitrary commit sequences** — random
//! insert/delete mixes, vertex growth, identifier overrides, shrink
//! compactions, invalid batches — the patched snapshot of
//! `MutableGraph::commit` is *structurally identical* to a from-scratch
//! `Graph::from_edges` rebuild of the same edge set: same adjacency, same
//! edge indices, same CSR slot and mirror-slot numbering, same identifiers
//! (`Graph` equality covers all of it, and the mirror involution is checked
//! explicitly on top). The rebuild oracle `MutableGraph::commit_rebuild`
//! must agree delta-for-delta and error-for-error, and the **segmented
//! engine** (`SegmentedGraph`, O(region) commits) must track both: same
//! accepted/rejected batches with the same errors, a materialization
//! (`to_graph`) bit-identical to the patched snapshot, internally
//! consistent segments/mirrors, and a per-edge carry (`freed_ids` /
//! `inserted_ids` / `edge_remap`) exactly equivalent to the oracle's
//! `edge_origin` map.
//!
//! Like `proptest_invariants.rs`, the offline build has no proptest crate:
//! cases sweep a deterministic seeded space, so every failure is
//! reproducible from its case index alone.

use deco_graph::line_graph::line_graph;
use deco_graph::{CommitDelta, Graph, MutableGraph, SegCommitDelta, SegmentedGraph, Vertex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 40;
const BATCHES_PER_CASE: usize = 6;

/// Drives one pseudo-random batch on all three engines and returns the
/// commit's deltas if the batch was valid (the engines must agree either
/// way — accepted set, errors, resulting snapshot).
fn random_batch(
    fast: &mut MutableGraph,
    slow: &mut MutableGraph,
    seg: &mut SegmentedGraph,
    rng: &mut StdRng,
) -> Option<(CommitDelta, SegCommitDelta)> {
    let ops = 1 + rng.gen_range(0..8usize);
    let mut had_shrink = false;
    for _ in 0..ops {
        match rng.gen_range(0..100u32) {
            // Insert a random pair (may collide with an existing edge: the
            // batch then fails at commit, which is part of the property).
            0..=44 => {
                let n = fast.next_n();
                if n >= 2 {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u != v {
                        let a = fast.insert_edge(u, v);
                        let b = slow.insert_edge(u, v);
                        let c = seg.insert_edge(u, v);
                        assert_eq!(a, b);
                        assert_eq!(a, c);
                    }
                }
            }
            // Delete a committed edge by index (may have been deleted
            // earlier in the batch — again a legal failure mode).
            45..=74 => {
                if fast.graph().m() > 0 {
                    let e = rng.gen_range(0..fast.graph().m());
                    let (u, v) = fast.graph().endpoints(e);
                    fast.delete_edge(u, v).unwrap();
                    slow.delete_edge(u, v).unwrap();
                    seg.delete_edge(u, v).unwrap();
                }
            }
            75..=84 => {
                let a = fast.add_vertex();
                let b = slow.add_vertex();
                let c = seg.add_vertex();
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
            85..=92 => {
                let n = fast.next_n();
                if n > 0 {
                    let v = rng.gen_range(0..n);
                    let ident = rng.gen_range(1..2 * n as u64 + 2);
                    let a = fast.set_ident(v, ident);
                    let b = slow.set_ident(v, ident);
                    let c = seg.set_ident(v, ident);
                    assert_eq!(a, b);
                    assert_eq!(a, c);
                }
            }
            _ => {
                fast.shrink_isolated();
                slow.shrink_isolated();
                seg.shrink_isolated();
                had_shrink = true;
            }
        }
    }
    let a = fast.commit();
    let b = slow.commit_rebuild();
    assert_eq!(a, b, "delta commit and rebuild oracle must agree");
    let c = seg.commit();
    match (&a, &c) {
        (Err(ea), Err(ec)) => assert_eq!(ea, ec, "segmented must reject with the same error"),
        (Ok(da), Ok(dc)) => {
            assert_eq!(da.inserted, dc.inserted);
            assert_eq!(da.deleted, dc.deleted);
            assert_eq!(da.added_vertices, dc.added_vertices);
            assert_eq!(da.removed_vertices, dc.removed_vertices);
            assert_eq!(da.vertex_map, dc.vertex_map);
            assert_eq!(dc.inserted_ids.len(), dc.inserted.len());
            assert_eq!(dc.freed_ids.len(), dc.deleted.len());
            // Shrink batches rebuild (and say so); ordinary commits keep
            // every surviving id in place and report no remap.
            assert_eq!(dc.edge_remap.is_some(), had_shrink);
        }
        _ => panic!("engines disagree on batch validity: oracle {a:?} vs segmented {c:?}"),
    }
    // The segmented store must be internally consistent and materialize to
    // the oracle snapshot bit for bit after *every* commit attempt
    // (including rejected batches, which must leave it untouched).
    seg.check_consistency();
    let (sg_graph, idmap) = seg.to_graph();
    assert_eq!(&sg_graph, fast.graph(), "segmented materialization diverged");
    for (lex, &id) in idmap.iter().enumerate() {
        assert_eq!(sg_graph.endpoints(lex), seg.endpoints(id as usize));
    }
    a.ok().zip(c.ok())
}

/// The from-scratch oracle: rebuild the committed snapshot from its own
/// edge list and identifiers; the patched snapshot must equal it bit for
/// bit (edge indices included, since both lists are lexicographic).
fn assert_structurally_identical(g: &Graph, ctx: &str) {
    let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    let rebuilt = Graph::from_edges(g.n(), &edges)
        .expect("snapshot edges are valid")
        .with_idents(g.idents().to_vec())
        .expect("snapshot idents are distinct");
    assert_eq!(g, &rebuilt, "{ctx}: patched snapshot differs from from_edges rebuild");
    // Mirror-slot invariants, explicitly: involution, ownership, edge
    // agreement — the properties the simulator's slot delivery relies on.
    for v in 0..g.n() {
        for s in g.slots_of(v) {
            let u = g.slot_neighbor(s);
            let back = g.mirror_slot(s);
            assert!(g.slots_of(u).contains(&back), "{ctx}: mirror {back} not owned by {u}");
            assert_eq!(g.slot_neighbor(back), v, "{ctx}");
            assert_eq!(g.mirror_slot(back), s, "{ctx}: mirror is an involution");
            assert_eq!(g.slot_edge(back), g.slot_edge(s), "{ctx}");
        }
    }
}

#[test]
fn patched_commits_match_rebuilds_under_arbitrary_churn() {
    for case in 0..CASES {
        let n0 = 2 + (case % 13) as usize;
        let mut rng = StdRng::seed_from_u64(0xDE17_AC58 ^ (case << 8));
        let mut fast = MutableGraph::new(n0);
        let mut slow = MutableGraph::new(n0);
        let mut seg = SegmentedGraph::new(n0);
        for batch in 0..BATCHES_PER_CASE {
            let _ = random_batch(&mut fast, &mut slow, &mut seg, &mut rng);
            assert_eq!(fast.graph(), slow.graph(), "case {case}, batch {batch}");
            assert_structurally_identical(fast.graph(), &format!("case {case}, batch {batch}"));
        }
    }
}

#[test]
fn patched_line_graphs_match_rebuild_line_graphs() {
    // Downstream structures derived from the CSR (the line graph the edge
    // coloring pipeline runs on) agree too — edge indices being identical
    // is what makes this hold, on the segmented materialization included.
    let mut rng = StdRng::seed_from_u64(0x11E);
    let mut mg = MutableGraph::new(9);
    let mut seg = SegmentedGraph::new(9);
    for _ in 0..8 {
        let mut shadow = mg.clone();
        if random_batch(&mut mg, &mut shadow, &mut seg, &mut rng).is_some() {
            let g = mg.graph();
            let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
            let rebuilt =
                Graph::from_edges(g.n(), &edges).unwrap().with_idents(g.idents().to_vec()).unwrap();
            assert_eq!(line_graph(g), line_graph(&rebuilt));
            assert_eq!(line_graph(&seg.to_graph().0), line_graph(g));
        }
    }
}

#[test]
fn edge_origin_tracks_survivors_exactly() {
    // The stable-slot carry map: `origin_of(e)` is exactly the old edge
    // with the same endpoints (mapped back through the shrink renumbering
    // when one happened), and `None` exactly for fresh pairs. Delete-then-
    // reinsert within a batch keeps the old identity (net-noop semantics).
    let mut committed = 0usize;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x000E_1D6E ^ case);
        let n0 = 4 + (case % 9) as usize;
        let mut fast = MutableGraph::new(n0);
        let mut slow = MutableGraph::new(n0);
        let mut seg = SegmentedGraph::new(n0);
        for batch in 0..4 {
            let old = fast.graph().clone();
            let Some((delta, _segd)) = random_batch(&mut fast, &mut slow, &mut seg, &mut rng)
            else {
                continue;
            };
            committed += 1;
            let g = fast.graph();
            let map_back = |v: Vertex| -> Option<Vertex> {
                match &delta.vertex_map {
                    Some(map) => map[v],
                    None => Some(v), // out-of-range (added) handled below
                }
            };
            for e in 0..g.m() {
                let (u, v) = g.endpoints(e);
                let expected = match (map_back(u), map_back(v)) {
                    (Some(a), Some(b)) => old.edge_between(a, b),
                    _ => None,
                };
                assert_eq!(delta.origin_of(e), expected, "case {case}, batch {batch}, edge {e}");
            }
        }
    }
    assert!(committed > CASES as usize, "sweep must exercise plenty of valid commits");
}

#[test]
fn segmented_carry_matches_edge_origin() {
    // The segmented carry vocabulary (`inserted_ids` / `freed_ids` /
    // `edge_remap`) must let a client move per-edge payloads across commits
    // with exactly the outcome of the oracle's `edge_origin` map: survivors
    // keep their payload, fresh pairs get fresh ones, and the two engines
    // agree edge for edge. Payloads here are serial tags, allocated in the
    // shared `inserted` order so both sides mint identical values.
    let mut carried = 0usize;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x05E6_CA44 ^ (case << 4));
        let n0 = 4 + (case % 9) as usize;
        let mut fast = MutableGraph::new(n0);
        let mut slow = MutableGraph::new(n0);
        let mut seg = SegmentedGraph::new(n0);
        let mut lex_store: Vec<u64> = Vec::new();
        let mut id_store: Vec<u64> = Vec::new();
        let mut serial = 0u64;
        for batch in 0..5 {
            let Some((delta, segd)) = random_batch(&mut fast, &mut slow, &mut seg, &mut rng) else {
                continue;
            };
            let g = fast.graph();
            // Oracle carry: lexicographic store rebuilt through `origin_of`.
            let mut next = vec![u64::MAX; g.m()];
            for (e, tag) in next.iter_mut().enumerate() {
                *tag = match delta.origin_of(e) {
                    Some(o) => lex_store[o],
                    None => {
                        let (u, v) = g.endpoints(e);
                        let i = delta
                            .inserted
                            .binary_search(&(u.min(v), u.max(v)))
                            .expect("fresh edge must appear in the inserted list");
                        serial + i as u64
                    }
                };
            }
            lex_store = next;
            // Segmented carry: stable-id store patched in place (or remapped
            // through `edge_remap` when the batch rebuilt).
            if let Some(remap) = &segd.edge_remap {
                let mut next = vec![u64::MAX; seg.edge_bound()];
                for (old_id, &new_id) in remap.iter().enumerate() {
                    if new_id != Graph::NO_EDGE_ORIGIN {
                        next[new_id as usize] = id_store[old_id];
                    }
                }
                id_store = next;
            } else {
                id_store.resize(seg.edge_bound(), u64::MAX);
                for &fid in &segd.freed_ids {
                    id_store[fid as usize] = u64::MAX;
                }
            }
            for (i, &id) in segd.inserted_ids.iter().enumerate() {
                id_store[id as usize] = serial + i as u64;
            }
            serial += delta.inserted.len() as u64;
            // Same payload on every live edge, in both coordinate systems.
            let idmap = seg.lex_edge_ids();
            assert_eq!(idmap.len(), g.m());
            for e in 0..g.m() {
                assert_ne!(lex_store[e], u64::MAX, "case {case}, batch {batch}: untagged edge {e}");
                assert_eq!(
                    lex_store[e], id_store[idmap[e] as usize],
                    "case {case}, batch {batch}, edge {e}: carry diverged"
                );
            }
            carried += 1;
        }
    }
    assert!(carried > CASES as usize, "sweep must exercise plenty of valid commits");
}
