//! Run statistics: the quantities the paper's tables report.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Accounting for one simulated run (or a sequential composition of runs).
///
/// * `rounds` — synchronous communication rounds, the paper's notion of
///   running time;
/// * `node_rounds` — stepped node-rounds: the sum over delivery rounds of
///   the nodes still live, i.e. how many `Protocol::round` calls the
///   simulator actually made (the start phase is not counted). This is the
///   simulator's own cost model — a protocol whose nodes halt early costs
///   proportionally fewer node-rounds even when the round *count* barely
///   moves;
/// * `messages` — total messages delivered;
/// * `max_message_bits` — the largest single message, the paper's message
///   size measure;
/// * `total_message_bits` — aggregate traffic;
/// * `transport_dropped` — messages destroyed by a faulty
///   [`Transport`](crate::Transport) (zero on the default in-process
///   transport). Dropped messages are counted as sent but not delivered,
///   so they appear here and *not* in `messages`;
/// * `commit_bytes` — bytes the commit machinery wrote into the committed
///   graph representation (zero for runs with no topology commit). Counted
///   identically by the segmented and full-rewrite commit paths, which is
///   what makes the O(region)-vs-O(m) comparison a deterministic counter
///   rather than a wall measurement.
///
/// Sequential phase composition adds stats with `+`: rounds add (phases are
/// separated by globally known round barriers), message maxima take the max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of synchronous rounds.
    pub rounds: usize,
    /// Stepped node-rounds (live nodes summed over delivery rounds).
    pub node_rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Size in bits of the largest message delivered.
    pub max_message_bits: usize,
    /// Total bits delivered.
    pub total_message_bits: usize,
    /// Messages destroyed in flight by the transport (never delivered).
    pub transport_dropped: usize,
    /// Bytes written into the committed graph representation.
    pub commit_bytes: usize,
}

impl RunStats {
    /// Stats of a run that exchanged nothing.
    pub fn zero() -> RunStats {
        RunStats::default()
    }

    /// Records one delivered message of the given size.
    pub fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.max_message_bits = self.max_message_bits.max(bits);
        self.total_message_bits += bits;
    }

    /// Signed field-by-field delta against a baseline (`self - baseline`),
    /// for "this run vs. that run" output without hand-formatting each
    /// field at every call site.
    pub fn diff(&self, baseline: &RunStats) -> StatsDiff {
        fn d(new: usize, old: usize) -> i64 {
            new as i64 - old as i64
        }
        StatsDiff {
            rounds: d(self.rounds, baseline.rounds),
            node_rounds: d(self.node_rounds, baseline.node_rounds),
            messages: d(self.messages, baseline.messages),
            max_message_bits: d(self.max_message_bits, baseline.max_message_bits),
            total_message_bits: d(self.total_message_bits, baseline.total_message_bits),
            transport_dropped: d(self.transport_dropped, baseline.transport_dropped),
            commit_bytes: d(self.commit_bytes, baseline.commit_bytes),
        }
    }
}

/// Signed per-field difference of two [`RunStats`], from
/// [`RunStats::diff`]. `Display` mirrors the `RunStats` format with
/// explicit signs, omitting the same conditional fields when both sides
/// agree at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsDiff {
    /// Delta in synchronous rounds.
    pub rounds: i64,
    /// Delta in stepped node-rounds.
    pub node_rounds: i64,
    /// Delta in delivered messages.
    pub messages: i64,
    /// Delta in the largest-message size.
    pub max_message_bits: i64,
    /// Delta in aggregate delivered bits.
    pub total_message_bits: i64,
    /// Delta in transport-dropped messages.
    pub transport_dropped: i64,
    /// Delta in committed bytes.
    pub commit_bytes: i64,
}

impl StatsDiff {
    /// Whether every field is unchanged.
    pub fn is_zero(&self) -> bool {
        *self == StatsDiff::default()
    }
}

impl fmt::Display for StatsDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:+} rounds ({:+} node-rounds), {:+} msgs, {:+} max msg bits, {:+} total bits",
            self.rounds,
            self.node_rounds,
            self.messages,
            self.max_message_bits,
            self.total_message_bits
        )?;
        if self.transport_dropped != 0 {
            write!(f, ", {:+} dropped in transit", self.transport_dropped)?;
        }
        if self.commit_bytes != 0 {
            write!(f, ", {:+} commit bytes", self.commit_bytes)?;
        }
        Ok(())
    }
}

impl From<RunStats> for deco_probe::Counters {
    fn from(s: RunStats) -> deco_probe::Counters {
        deco_probe::Counters {
            rounds: s.rounds as u64,
            node_rounds: s.node_rounds as u64,
            messages: s.messages as u64,
            max_message_bits: s.max_message_bits as u64,
            total_message_bits: s.total_message_bits as u64,
            transport_dropped: s.transport_dropped as u64,
            commit_bytes: s.commit_bytes as u64,
        }
    }
}

impl Add for RunStats {
    type Output = RunStats;

    fn add(self, rhs: RunStats) -> RunStats {
        RunStats {
            rounds: self.rounds + rhs.rounds,
            node_rounds: self.node_rounds + rhs.node_rounds,
            messages: self.messages + rhs.messages,
            max_message_bits: self.max_message_bits.max(rhs.max_message_bits),
            total_message_bits: self.total_message_bits + rhs.total_message_bits,
            transport_dropped: self.transport_dropped + rhs.transport_dropped,
            commit_bytes: self.commit_bytes + rhs.commit_bytes,
        }
    }
}

impl AddAssign for RunStats {
    fn add_assign(&mut self, rhs: RunStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds ({} node-rounds), {} msgs, max msg {} bits, total {} bits",
            self.rounds,
            self.node_rounds,
            self.messages,
            self.max_message_bits,
            self.total_message_bits
        )?;
        if self.transport_dropped > 0 {
            write!(f, ", {} dropped in transit", self.transport_dropped)?;
        }
        if self.commit_bytes > 0 {
            write!(f, ", {} commit bytes", self.commit_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_combines_phases() {
        let mut a = RunStats::zero();
        a.rounds = 3;
        a.record_message(8);
        a.record_message(16);
        let mut b = RunStats::zero();
        b.rounds = 2;
        b.record_message(12);
        let c = a + b;
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 3);
        assert_eq!(c.max_message_bits, 16);
        assert_eq!(c.total_message_bits, 36);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = RunStats {
            rounds: 1,
            node_rounds: 4,
            messages: 2,
            max_message_bits: 3,
            total_message_bits: 6,
            transport_dropped: 1,
            commit_bytes: 32,
        };
        let b = a;
        a += b;
        assert_eq!(a, b + b);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RunStats::zero().to_string().is_empty());
    }

    #[test]
    fn diff_is_signed_and_displayable() {
        let a = RunStats { rounds: 5, node_rounds: 50, messages: 20, ..RunStats::zero() };
        let b = RunStats { rounds: 7, node_rounds: 40, messages: 20, ..RunStats::zero() };
        let d = a.diff(&b);
        assert_eq!(d.rounds, -2);
        assert_eq!(d.node_rounds, 10);
        assert_eq!(d.messages, 0);
        assert!(!d.is_zero());
        assert!(a.diff(&a).is_zero());
        let text = d.to_string();
        assert!(text.starts_with("-2 rounds (+10 node-rounds), +0 msgs"), "{text}");
        assert!(!text.contains("commit bytes"), "{text}");
    }

    #[test]
    fn counters_conversion_is_field_exact() {
        let s = RunStats {
            rounds: 1,
            node_rounds: 2,
            messages: 3,
            max_message_bits: 4,
            total_message_bits: 5,
            transport_dropped: 6,
            commit_bytes: 7,
        };
        let c = deco_probe::Counters::from(s);
        assert_eq!((c.rounds, c.node_rounds, c.messages, c.max_message_bits), (1, 2, 3, 4));
        assert_eq!((c.total_message_bits, c.transport_dropped, c.commit_bytes), (5, 6, 7));
    }
}
