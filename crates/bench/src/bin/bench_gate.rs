//! `bench_gate` — the deterministic bench gate CLI (see `deco_bench::gate`).
//!
//! ```text
//! bench_gate write <baseline.json> <BENCH_*.json> ...
//!     Record the given bench outputs as the committed baseline.
//!
//! bench_gate check <baseline.json> <BENCH_*.json> ... [--diff <report.txt>]
//!     Diff fresh bench outputs against the baseline. Deterministic-counter
//!     regressions and scenario changes fail (exit 1); wall-clock deltas
//!     are reported but never fatal. The report is printed and, with
//!     --diff, also written to a file for the CI artifact.
//! ```
//!
//! Benches are matched by their `"bench"` field, so argument order does not
//! matter; a baseline entry with no matching input fails the check (the
//! trajectory must never silently lose coverage).

use deco_bench::gate;
use deco_bench::json::{self, Obj, Value};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate write <baseline.json> <bench.json>...\n       \
         bench_gate check <baseline.json> <bench.json>... [--diff <report.txt>]"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn bench_name(v: &Value, path: &str) -> Result<String, String> {
    v.get("bench")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{path}: missing \"bench\" field"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match args.split_first() {
        Some((m, rest)) if (m == "write" || m == "check") && rest.len() >= 2 => (m.clone(), rest),
        _ => return usage(),
    };
    let baseline_path = &rest[0];
    let mut inputs = Vec::new();
    let mut diff_path: Option<String> = None;
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        if arg == "--diff" {
            match it.next() {
                Some(p) => diff_path = Some(p.clone()),
                None => return usage(),
            }
        } else {
            inputs.push(arg.clone());
        }
    }
    if inputs.is_empty() {
        return usage();
    }
    let mut loaded: Vec<(String, Value)> = Vec::new();
    for path in &inputs {
        match load(path).and_then(|v| bench_name(&v, path).map(|n| (n, v))) {
            Ok(entry) => loaded.push(entry),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if mode == "write" {
        let mut benches = Obj::new();
        for (name, v) in loaded {
            benches = benches.field(&name, v);
        }
        let doc = Obj::new()
            .field(
                "comment",
                "Deterministic bench baseline: counters (rounds, messages, regions, \
                 hashes) must not regress; wall-clock, acceptance and environment \
                 fields are informational. Regenerate deliberately with `cargo run \
                 -p deco-bench --bin bench_gate -- write BENCH_baseline.json \
                 BENCH_pr1.json .. BENCH_pr8.json PROFILE_report.json` and say why \
                 in CHANGES.md.",
            )
            .field("benches", benches.build())
            .build();
        if let Err(e) = std::fs::write(baseline_path, json::to_string(&doc)) {
            eprintln!("cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {baseline_path}");
        return ExitCode::SUCCESS;
    }

    let baseline = match load(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Value::Object(entries)) = baseline.get("benches").cloned() else {
        eprintln!("{baseline_path}: missing \"benches\" object");
        return ExitCode::FAILURE;
    };
    let mut all = String::new();
    let mut ok = true;
    for (name, base_v) in &entries {
        match loaded.iter().find(|(n, _)| n == name) {
            Some((_, fresh)) => {
                let report = gate::check(base_v, fresh);
                ok &= report.passed();
                all.push_str(&report.render(name));
            }
            None => {
                ok = false;
                all.push_str(&format!("== {name}: FAIL (no fresh bench output supplied)\n"));
            }
        }
    }
    for (name, _) in &loaded {
        if !entries.iter().any(|(n, _)| n == name) {
            all.push_str(&format!("== {name}: note: not in baseline (re-baseline to track)\n"));
        }
    }
    print!("{all}");
    if let Some(path) = diff_path {
        if let Err(e) = std::fs::write(&path, &all) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if ok {
        println!("bench gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("bench gate: FAIL (deterministic counter regression or scenario drift)");
        ExitCode::FAILURE
    }
}
