//! Workspace walker: finds the files the lints apply to and runs the
//! whole-tree pass ([`check_workspace`]).

use crate::lints::{lint_manifest, lint_readme, lint_rust_source};
use crate::{Diagnostic, Report};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Runs every lint over the workspace rooted at `root` (the directory
/// holding the workspace `Cargo.toml`). The current PR number for
/// `deprecated-expiry` is derived from `CHANGES.md` (one line per shipped
/// PR, so current = lines + 1; a missing file means PR 1).
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut violations: Vec<Diagnostic> = Vec::new();
    let mut files_scanned = 0usize;

    let current_pr = fs::read_to_string(root.join("CHANGES.md"))
        .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count() as u32 + 1)
        .unwrap_or(1);

    // Rust sources: crates/**, tests/**, examples/**.
    let mut rust_files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rust(&dir, &mut rust_files)?;
        }
    }
    rust_files.sort();
    for path in &rust_files {
        let rel = rel_path(root, path);
        let text = fs::read_to_string(path)?;
        violations.extend(lint_rust_source(&rel, &text, current_pr));
        files_scanned += 1;
    }

    // Manifests: root + every crate.
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    for path in &manifests {
        let rel = rel_path(root, path);
        let text = fs::read_to_string(path)?;
        violations.extend(lint_manifest(&rel, &text));
        files_scanned += 1;
    }

    // README workspace-layout coverage.
    let crate_dirs = crate_dir_names(root)?;
    let readme = fs::read_to_string(root.join("README.md")).unwrap_or_default();
    violations.extend(lint_readme(&readme, &crate_dirs));
    files_scanned += 1;

    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(Report { violations, files_scanned })
}

/// The `crates/<name>` directory names, sorted.
fn crate_dir_names(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            if e.path().is_dir() {
                if let Some(name) = e.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rust(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            let skip = name.to_str().is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                collect_rust(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with unix separators (diagnostics + allowlist
/// keys are stable across platforms).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
