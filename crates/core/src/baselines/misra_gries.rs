//! The Misra–Gries constructive Vizing coloring: a **centralized**
//! `(Δ+1)`-edge-coloring in polynomial time.
//!
//! Vizing's theorem (cited in Section 1.1 of the paper) says `Δ+1` colors
//! always suffice; Misra & Gries (1992) made it constructive with fans and
//! alternating-path inversions. This is the strongest color-quality
//! reference for the benches: the distributed algorithms' palettes are
//! reported relative to it.
//!
//! Not a distributed algorithm — a quality oracle only.

use deco_graph::coloring::EdgeColoring;
use deco_graph::{EdgeIdx, Graph, Vertex};

const UNCOLORED: u64 = u64::MAX;

struct State<'g> {
    g: &'g Graph,
    color: Vec<u64>,
    palette: u64,
}

impl State<'_> {
    /// The color of edge (u, v), if colored.
    fn color_between(&self, u: Vertex, v: Vertex) -> u64 {
        // INVARIANT: fan vertices are neighbors of u by construction, so the host edge exists.
        let e = self.g.edge_between(u, v).expect("fan edges exist");
        self.color[e]
    }

    /// Whether color `c` is free (unused) at vertex `x`.
    fn is_free(&self, x: Vertex, c: u64) -> bool {
        self.g.incident(x).all(|(_, e)| self.color[e] != c)
    }

    /// The smallest color free at `x`.
    fn free_color(&self, x: Vertex) -> u64 {
        (0..self.palette)
            .find(|&c| self.is_free(x, c))
            // INVARIANT: u has at most deg(u) <= max_degree incident colors, so a (max_degree+1)-palette always retains a free one.
            .expect("degree <= Δ leaves a free color in a (Δ+1)-palette")
    }

    /// A maximal fan of `u` starting at `v`: a sequence of distinct
    /// neighbors `f_0 = v, f_1, ...` where the color of `(u, f_{i+1})` is
    /// free at `f_i`.
    fn maximal_fan(&self, u: Vertex, v: Vertex) -> Vec<Vertex> {
        let mut fan = vec![v];
        let mut used = vec![false; self.g.n()];
        used[v] = true;
        loop {
            // INVARIANT: the fan is seeded with its first vertex before this loop, so it is never empty.
            let last = *fan.last().expect("fan is nonempty");
            let next = self.g.incident(u).find(|&(w, e)| {
                !used[w] && self.color[e] != UNCOLORED && self.is_free(last, self.color[e])
            });
            match next {
                Some((w, _)) => {
                    used[w] = true;
                    fan.push(w);
                }
                None => return fan,
            }
        }
    }

    /// Inverts the maximal `c`/`d`-alternating path starting at `x` (whose
    /// first edge is colored `d`): swaps the two colors along it. The path
    /// is collected first and flipped afterwards, so the walk never follows
    /// its own recolored edges.
    fn invert_cd_path(&mut self, x: Vertex, c: u64, d: u64) {
        let mut path: Vec<EdgeIdx> = Vec::new();
        let mut at = x;
        let mut prev_edge: Option<EdgeIdx> = None;
        let mut want = d;
        loop {
            let next =
                self.g.incident(at).find(|&(_, e)| Some(e) != prev_edge && self.color[e] == want);
            match next {
                Some((w, e)) => {
                    path.push(e);
                    prev_edge = Some(e);
                    at = w;
                    want = if want == d { c } else { d };
                }
                None => break,
            }
        }
        for e in path {
            self.color[e] = if self.color[e] == c { d } else { c };
        }
    }

    /// Rotates the fan prefix `fan[0..=j]`: each `(u, f_i)` takes the color
    /// of `(u, f_{i+1})`, and `(u, f_j)` becomes uncolored.
    fn rotate_fan(&mut self, u: Vertex, fan: &[Vertex]) {
        for i in 0..fan.len() - 1 {
            // INVARIANT: fan vertices are neighbors of u by construction, so the host edge exists.
            let e_i = self.g.edge_between(u, fan[i]).expect("fan edge");
            // INVARIANT: fan vertices are neighbors of u by construction, so the host edge exists.
            let e_next = self.g.edge_between(u, fan[i + 1]).expect("fan edge");
            self.color[e_i] = self.color[e_next];
        }
        // INVARIANT: fan vertices are neighbors of u by construction, so the host edge exists.
        let last = self.g.edge_between(u, *fan.last().expect("nonempty")).expect("fan edge");
        self.color[last] = UNCOLORED;
    }
}

/// The Misra–Gries `(Δ+1)`-edge-coloring (centralized; Vizing's bound).
///
/// # Example
///
/// ```
/// use deco_core::baselines::misra_gries::misra_gries_edge_color;
/// use deco_graph::generators;
///
/// let g = generators::petersen();
/// let coloring = misra_gries_edge_color(&g);
/// assert!(coloring.is_proper(&g));
/// assert!(coloring.palette_size() <= g.max_degree() + 1);
/// ```
pub fn misra_gries_edge_color(g: &Graph) -> EdgeColoring {
    let palette = g.max_degree() as u64 + 1;
    let mut st = State { g, color: vec![UNCOLORED; g.m()], palette };
    for e in 0..g.m() {
        let (u, v) = g.endpoints(e);
        // Build a maximal fan of u starting at v.
        let fan = st.maximal_fan(u, v);
        let c = st.free_color(u);
        // INVARIANT: the fan was built to end at v, so last() exists.
        let last = *fan.last().expect("fan contains v");
        let d = st.free_color(last);
        if c != d {
            st.invert_cd_path(u, c, d);
        }
        // After inversion d is free at u. Find w in the fan such that d is
        // free at w and the prefix fan[..=w] is *still* a fan with the
        // post-inversion colors (the inversion may have recolored a fan
        // edge). Misra & Gries prove such a w always exists.
        let mut w_index = None;
        for j in 0..fan.len() {
            if j > 0 {
                let col = st.color_between(u, fan[j]);
                if col == UNCOLORED || !st.is_free(fan[j - 1], col) {
                    break; // the prefix stops being a fan here
                }
            }
            if st.is_free(fan[j], d) {
                w_index = Some(j);
                break;
            }
        }
        // INVARIANT: guaranteed by the Misra-Gries lemma: fan construction halts only in a state with a rotatable prefix.
        let j = w_index.expect("Misra–Gries lemma: a rotatable fan prefix exists");
        let prefix = &fan[..=j];
        st.rotate_fan(u, prefix);
        // INVARIANT: fan vertices are neighbors of u by construction, so the host edge exists.
        let e_w = g.edge_between(u, prefix[prefix.len() - 1]).expect("fan edge");
        debug_assert!(st.is_free(u, d) && st.color[e_w] == UNCOLORED);
        st.color[e_w] = d;
    }
    EdgeColoring::new(st.color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    fn check(g: &Graph) {
        let c = misra_gries_edge_color(g);
        assert!(c.is_proper(g), "Misra–Gries must be proper");
        assert!(
            c.palette_size() <= g.max_degree() + 1,
            "palette {} exceeds Vizing bound Δ+1 = {}",
            c.palette_size(),
            g.max_degree() + 1
        );
    }

    #[test]
    fn vizing_bound_on_families() {
        check(&generators::petersen());
        check(&generators::complete(7));
        check(&generators::complete(8));
        check(&generators::star(12));
        check(&generators::cycle(9));
        check(&generators::grid(6, 7));
        check(&generators::clique_with_pendants(7));
        check(&generators::complete_bipartite(5, 7));
    }

    #[test]
    fn vizing_bound_on_random_graphs() {
        for seed in 0..12 {
            let g = generators::random_bounded_degree(60, 3 + (seed as usize % 9), seed);
            if g.m() > 0 {
                check(&g);
            }
        }
    }

    #[test]
    fn odd_clique_needs_delta_plus_one() {
        // K_5 is class 2: χ'(K_5) = 5 = Δ+1; the algorithm must still fit.
        let g = generators::complete(5);
        let c = misra_gries_edge_color(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.palette_size(), 5);
    }

    #[test]
    fn within_one_of_exact_chromatic_index() {
        // χ'(G) ∈ {Δ, Δ+1}; Misra–Gries guarantees Δ+1, so it is at most
        // one color above the exact optimum on every graph.
        use deco_graph::properties::chromatic_index_exact;
        for g in [
            generators::petersen(),
            generators::complete(5),
            generators::complete(6),
            generators::cycle(7),
            generators::grid(3, 4),
            generators::random_graph(12, 20, 3),
        ] {
            let exact = chromatic_index_exact(&g);
            let mg = misra_gries_edge_color(&g).palette_size();
            assert!(mg <= exact + 1, "MG {mg} vs exact {exact}");
            assert!(mg >= exact.min(g.max_degree()));
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(misra_gries_edge_color(&Graph::empty(3)).is_empty());
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(misra_gries_edge_color(&g).palette_size(), 1);
    }
}
