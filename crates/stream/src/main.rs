//! The `deco-stream` front end: replay a churn trace, or generate one.
//!
//! ```text
//! deco-stream <trace-file> [threshold_pct] [--profile <out.jsonl>]
//!             [--engine legacy|segmented]
//!     Replay a trace, printing one row per commit (repaired edges, region
//!     size, strategy, simulator rounds/messages, wall time) and totals.
//!     With --profile, the full structured event stream of the run —
//!     commit decisions, phase spans, per-round samples — is written as
//!     JSONL for `deco-probe report`. --engine picks the commit
//!     representation (default: legacy delta-CSR; segmented = stable edge
//!     ids, O(region) commit traffic) — both are driven through the same
//!     `RegionRecolor` facade and produce identical colorings.
//!
//! deco-stream --gen <n> <delta_cap> <commits> <churn> <seed> [out-file]
//!     Generate the canonical seeded churn trace; write it to the file, or
//!     to stdout when no file is given.
//! ```

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace, parse_trace, to_text};
use deco_probe::JsonlProbe;
use deco_stream::{replay_trace_on, RecolorConfig, Recolorer, RegionRecolor, SegRecolorer};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deco-stream <trace-file> [threshold_pct] [--profile <out.jsonl>] \
         [--engine legacy|segmented]\n       \
         deco-stream --gen <n> <delta_cap> <commits> <churn> <seed> [out-file]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--gen") => generate(&args[1..]),
        Some(path) if !path.starts_with('-') => replay(path, &args[1..]),
        _ => usage(),
    }
}

fn generate(args: &[String]) -> ExitCode {
    let nums: Vec<u64> = args.iter().take(5).filter_map(|a| a.parse().ok()).collect();
    let [n, delta_cap, commits, churn, seed] = nums[..] else {
        return usage();
    };
    let trace = churn_trace(n as usize, delta_cap as usize, commits as usize, churn as usize, seed);
    let text = to_text(&trace);
    match args.get(5) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: n={n} Δ≤{delta_cap}, {} commits ({commits} churn × {churn} edges)",
                trace.commit_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn replay(path: &str, rest: &[String]) -> ExitCode {
    let mut threshold_pct: u32 = 25;
    let mut profile_path: Option<&str> = None;
    let mut segmented = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--profile" {
            match it.next() {
                Some(p) => profile_path = Some(p),
                None => return usage(),
            }
        } else if arg == "--engine" {
            match it.next().map(String::as_str) {
                Some("legacy") => segmented = false,
                Some("segmented") => segmented = true,
                _ => return usage(),
            }
        } else {
            match arg.parse() {
                Ok(pct) => threshold_pct = pct,
                Err(_) => return usage(),
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match parse_trace(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let probe: Arc<dyn deco_probe::Probe> = match profile_path {
        Some(p) => match JsonlProbe::create(p) {
            Ok(j) => Arc::new(j),
            Err(e) => {
                eprintln!("cannot create {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => deco_probe::null(),
    };
    println!(
        "replaying {path}: n0={}, {} commits, repair threshold {threshold_pct}% of m{}",
        trace.n0,
        trace.commit_count(),
        if segmented { ", segmented engine" } else { "" }
    );
    let cfg = RecolorConfig::default().with_repair_threshold(threshold_pct).with_probe(probe);
    let (params, mode) = (edge_log_depth(1), MessageMode::Long);
    let engine: Result<Box<dyn RegionRecolor>, _> = if segmented {
        SegRecolorer::new_with(trace.n0, params, mode, cfg)
            .map(|e| Box::new(e) as Box<dyn RegionRecolor>)
    } else {
        Recolorer::new_with(trace.n0, params, mode, cfg)
            .map(|e| Box::new(e) as Box<dyn RegionRecolor>)
    };
    let mut engine = match engine {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{path}: invalid parameters: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match replay_trace_on(engine.as_mut(), &trace) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "\n{:>6} {:>5} {:>5} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9}",
        "commit", "+e", "-e", "m", "dirty", "region", "strategy", "rounds", "msgs", "wall ms"
    );
    let mut totals = deco_local::RunStats::zero();
    for (rep, wall) in out.reports.iter().zip(&out.wall) {
        totals += rep.stats;
        println!(
            "{:>6} {:>5} {:>5} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9.2}",
            rep.commit,
            rep.inserted,
            rep.deleted,
            rep.m,
            rep.dirty,
            rep.region_vertices,
            rep.strategy.to_string(),
            rep.stats.rounds,
            rep.stats.messages,
            wall.as_secs_f64() * 1e3,
        );
    }
    let g = engine.snapshot();
    let coloring = engine.coloring();
    assert!(coloring.is_proper(&g), "final coloring must be proper");
    println!(
        "\nfinal: n={} m={} Δ={}; {} colors in use (bound {}); coloring verified proper",
        g.n(),
        g.m(),
        g.max_degree(),
        coloring.palette_size(),
        engine.color_bound()
    );
    println!("totals: {totals}");
    // The steady-state trend at a glance: how the last commit's cost moved
    // against the first post-build commit (commit 0 is the from-scratch
    // initial coloring, a different regime).
    if out.reports.len() >= 3 {
        let first = &out.reports[1];
        // INVARIANT: guarded by the len() >= 3 check above.
        let last = out.reports.last().expect("non-empty");
        println!("last commit vs commit {}: {}", first.commit, last.stats.diff(&first.stats));
    }
    if let Some(p) = profile_path {
        eprintln!("profile events written to {p} (summarize with: deco-probe report {p})");
    }
    ExitCode::SUCCESS
}
